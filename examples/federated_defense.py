#!/usr/bin/env python
"""Federation (§6): two FastFlex domains collaborating against one botnet.

Domain A is hit by a Crossfire LFA, detects it, and publishes a threat
advisory — salted source hashes only, no raw addresses — to its trusted
peer.  When the same botnet turns to domain B, B's watchlist flags the
flows immediately, so mitigation engages without waiting out B's own
detection thresholds.

Run:  python examples/federated_defense.py
"""

from repro.attacks import CrossfireAttacker
from repro.boosters import build_figure2_defense
from repro.core import FederationPeer, apply_watchlist
from repro.netsim import (FlowSet, FluidNetwork, GBPS, Simulator,
                          figure2_topology, install_flow_route, make_flow)


def build_domain(sim, name):
    net = figure2_topology(sim, detour_capacity=2 * GBPS)
    # Rename nodes implicitly by keeping separate topologies; hosts keep
    # generic names because advisories travel as hashes of the *source
    # identity*, which the botnet shares across domains.
    flows = FlowSet()
    for index, client in enumerate(net.client_hosts):
        flows.add(make_flow(client, net.victim, 1.5 * GBPS,
                            sport=11_000 + index))
    fluid = FluidNetwork(net.topo, flows)
    defense = build_figure2_defense(net, fluid)
    deployment = defense.setup(flows)
    for flow in flows:
        install_flow_route(net.topo, flow.path)
    fluid.start()
    return net, fluid, defense, deployment


def main() -> None:
    sim = Simulator(seed=12)
    net_a, fluid_a, defense_a, dep_a = build_domain(sim, "domain_a")
    net_b, fluid_b, defense_b, dep_b = build_domain(sim, "domain_b")

    peer_a = FederationPeer("domain_a", sim, inter_domain_delay_s=0.08)
    peer_b = FederationPeer("domain_b", sim, inter_domain_delay_s=0.08)
    peer_a.connect(peer_b)
    print("federated domains connected with mutual trust\n")

    # The botnet attacks domain A at t=3.
    attacker_a = CrossfireAttacker(
        net_a.topo, fluid_a, bots=net_a.bot_hosts,
        decoys=net_a.decoy_servers, victim=net_a.victim,
        connections_per_bot=200, per_connection_bps=10e6)
    attacker_a.map_then_attack(start_delay=2.0)

    # Domain A publishes an advisory as soon as its detector confirms.
    published = {"done": False}

    def a_publishes():
        if published["done"] or not defense_a.detector.detections:
            return
        detection = defense_a.detector.detections[0]
        sources = sorted({f.src for f in fluid_a.flows if f.suspicious})
        advisory = peer_a.publish("lfa", sources,
                                  evidence=detection.suspicious_flows)
        published["done"] = True
        print(f"t={sim.now:.2f}s  domain A publishes advisory "
              f"#{advisory.advisory_id}: {len(advisory.source_hashes)} "
              f"hashed sources, evidence={advisory.evidence}")

    sim.every(0.05, a_publishes)

    # The botnet turns to domain B at t=8.
    attacker_b = CrossfireAttacker(
        net_b.topo, fluid_b, bots=net_b.bot_hosts,
        decoys=net_b.decoy_servers, victim=net_b.victim,
        connections_per_bot=200, per_connection_bps=10e6)
    attacker_b.map_then_attack(start_delay=7.0)

    # Domain B consults its watchlist continuously.
    marked = {"at": None}

    def b_consults():
        if apply_watchlist(peer_b, fluid_b) and marked["at"] is None:
            marked["at"] = sim.now
            print(f"t={sim.now:.2f}s  domain B: watchlist flags the "
                  f"arriving flows (no local threshold wait)")

    sim.every(0.05, b_consults)
    sim.run(until=20.0)

    print()
    a_detect = defense_a.detector.detections[0].time
    print(f"domain A detected locally at t={a_detect:.2f}s "
          f"(its own thresholds)")
    if defense_b.detector.detections:
        b_detect = defense_b.detector.detections[0].time
        b_attack_start = min(f.start_time for f in fluid_b.flows.malicious())
        print(f"domain B flows arrived at t={b_attack_start:.2f}s; "
              f"federation flagged them at t={marked['at']:.2f}s; "
              f"B's own detector confirmed at t={b_detect:.2f}s")
    print(f"domain B watchlist: {len(peer_b.watchlist)} hashed sources; "
          f"advisories accepted: {len(peer_b.advisories_accepted)}")
    print(f"domain B mitigation active: {defense_b.mitigation_active()}")


if __name__ == "__main__":
    main()
