#!/usr/bin/env python
"""Dynamic scaling: repurposing a switch at runtime (§3.4, Figure 1d).

A heavy-hitter detector on switch s1 runs hot; the operator repurposes
s1 to run a different program mix, shipping its detector state to s2
as FEC-protected state-carrying packets.  The sequence is the paper's:
neighbors are notified (fast reroute arms), the switch goes dark for the
Tofino-style reinstallation window, traffic flows around it, and the
state survives the move.  The same flow is then shown hitless
(Trident-style).

Run:  python examples/switch_repurposing.py
"""

from repro.boosters import HeavyHitterBooster
from repro.core import ScalingManager, StateTransferService
from repro.netsim import (Packet, Simulator, figure2_topology,
                          install_fast_reroute_alternates,
                          install_host_routes, install_switch_routes)


def main() -> None:
    sim = Simulator(seed=6)
    net = figure2_topology(sim)
    topo = net.topo
    install_host_routes(topo)
    install_switch_routes(topo)
    install_fast_reroute_alternates(topo)
    # Pin the demo traffic through s1 so the repurposing is on-path.
    topo.switch("sL").flow_routes[("client0", "victim")] = "s1"

    # A loaded booster instance on s1.
    booster = HeavyHitterBooster()
    detector = booster._make_detector(topo.switch("s1"))
    topo.switch("s1").install_program(detector)
    for index in range(2000):
        detector.pipe.update(f"src{index % 40}", 1500)
    top = detector.pipe.top_k(3)
    print(f"s1 heavy-hitter state before repurposing: top3 = {top}")

    service = StateTransferService(topo, group_size=4)
    service.install_agents()
    manager = ScalingManager(topo, service, reconfig_seconds=2.0)

    # Probe traffic across s1 throughout.
    probes = []

    def probe():
        pkt = Packet(src="client0", dst="victim", size_bytes=200)
        topo.host("client0").originate(pkt)
        probes.append(pkt)

    probe_proc = sim.every(0.1, probe, start=0.5)

    record = manager.repurpose(
        "s1",
        remove=[detector.name],
        install=[lambda: booster._make_detector(topo.switch("s1"))],
        transfer_state_to="s2",
        on_complete=lambda rec: print(
            f"t={sim.now:.2f}s  repurposing complete "
            f"(downtime {rec.downtime_s:.1f}s, installed "
            f"{rec.installed})"))
    print(f"t={record.started_at:.2f}s  repurposing s1 "
          f"(notify neighbors -> transfer state -> "
          f"{record.downtime_s:.1f}s dark window)")

    sim.schedule(1.2, lambda: print(
        f"t={sim.now:.2f}s  mid-window: s1 reconfiguring="
        f"{topo.switch('s1').reconfiguring}, sL avoids "
        f"{sorted(topo.switch('sL').avoid_neighbors)}"))
    sim.run(until=5.0)
    probe_proc.stop()

    delivered = topo.host("victim").received_count()
    lost = sum(1 for p in probes if p.dropped)
    print(f"\nprobe traffic during the operation: {delivered}/"
          f"{len(probes)} delivered, {lost} lost "
          f"(fast reroute around the dark switch)")
    print(f"state transfer: id={record.state_transfer_id}, "
          f"arrived intact: {record.state_transfer_ok}")
    stored = topo.switch("s2").scratch.get("replica_store")
    transfer = next((r for r in service.results
                     if r.transfer_id == record.state_transfer_id), None)
    if transfer is not None and transfer.success:
        fresh = booster._make_detector(topo.switch("s4"))
        fresh.import_state(transfer.payload[detector.name])
        print(f"restored state elsewhere: top3 = {fresh.pipe.top_k(3)}")
    del stored

    # The Trident-style alternative: no dark window at all.
    before = topo.host("victim").received_count()
    probes.clear()
    probe_proc = sim.every(0.1, probe, start=0.1)
    manager.repurpose("s2", hitless=True)
    sim.run(until=sim.now + 2.0)
    probe_proc.stop()
    print(f"\nhitless variant on s2: "
          f"{topo.host('victim').received_count() - before}/"
          f"{len(probes)} probes delivered with zero downtime")


if __name__ == "__main__":
    main()
