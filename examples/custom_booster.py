#!/usr/bin/env python
"""Writing your own booster: a SYN-flood guard in ~80 lines.

The FastFlex platform promise: a defense author declares (1) a PPM
dataflow graph for the analyzer/scheduler, (2) the modes it
participates in, and (3) mode-gated runtime switch programs — and the
platform handles sharing, placement, and distributed activation.

This example builds a complete SYN-flood booster from scratch: a
count-min sketch of SYN rates per source (always on), a mode-gated
blocker, and a periodic trigger that initiates the mode change through
the local agent.  It is then deployed and exercised packet by packet.

Run:  python examples/custom_booster.py
"""

from repro.boosters import logic_ppm, parser_ppm, sketch_ppm
from repro.core import (Booster, DataflowGraph, FastFlexController,
                        GatedProgram, ModeSpec, PpmRole)
from repro.dataplane import CountMinSketch, ResourceVector
from repro.netsim import (Drop, FlowSet, PacketKind, Simulator, TcpFlags,
                          figure2_topology)
from repro.netsim.sources import PacketSource, ThroughputMeter


class SynGuardProgram(GatedProgram):
    """Counts SYNs per source; blocks flagged sources when gated on."""

    def __init__(self, booster, name):
        super().__init__(booster.name, name,
                         ResourceVector(stages=4, sram_mb=0.1, alus=4))
        self.booster = booster
        self.sketch = CountMinSketch(name, width=512, depth=4)

    def process(self, switch, packet):
        if packet.kind != PacketKind.DATA:
            return None
        if packet.tcp_flags & TcpFlags.SYN:
            self.sketch.update(packet.src)
        if packet.src in self.booster.blocked and self.enabled_on(switch):
            return Drop("syn_flood_guard")
        return None

    def export_state(self):
        return self.sketch.export_state()

    def import_state(self, state):
        self.sketch.import_state(state)


class SynFloodBooster(Booster):
    """SYN-flood detection (always counting) + mode-gated blocking."""

    name = "syn_guard"
    attack_types = ("syn_flood",)

    def __init__(self, syn_threshold=200, check_period_s=0.5):
        self.syn_threshold = syn_threshold
        self.check_period_s = check_period_s
        self.blocked = set()
        self.programs = {}

    def dataflow(self):
        graph = DataflowGraph(self.name)
        graph.add_ppm(parser_ppm(self.name, "parser",
                                 base=("src", "tcp_flags")))
        graph.add_ppm(sketch_ppm(self.name, "syn_counter", width=512,
                                 depth=4, factory=self._make_program))
        graph.add_ppm(logic_ppm(self.name, "blocker", PpmRole.MITIGATION,
                                ResourceVector(stages=1, alus=1)))
        graph.add_edge("parser", "syn_counter", weight=9)
        graph.add_edge("syn_counter", "blocker", weight=4)
        return graph

    def modes(self):
        return [ModeSpec.of("syn_block", "syn_flood",
                            boosters_on=(self.name,))]

    def always_on(self):
        return False  # counting is unconditional; blocking is the mode

    def _make_program(self, switch):
        program = SynGuardProgram(self, f"{self.name}.syn_counter")
        self.programs[switch.name] = program
        return program

    def on_deployed(self, deployment):
        sim = deployment.topo.sim

        def check(switch_name):
            program = self.programs.get(switch_name)
            agent = deployment.mode_agents.get(switch_name)
            if program is None or agent is None:
                return
            offenders = {src for src in self._candidate_sources(deployment)
                         if program.sketch.estimate(src)
                         > self.syn_threshold}
            program.sketch.clear()
            if offenders:
                self.blocked |= offenders
                agent.initiate("syn_flood", "syn_block")

        for switch_name in sorted(self.programs):
            sim.every(self.check_period_s, check, switch_name,
                      start=self.check_period_s)

    @staticmethod
    def _candidate_sources(deployment):
        return deployment.topo.host_names


def main() -> None:
    sim = Simulator(seed=2)
    net = figure2_topology(sim)

    booster = SynFloodBooster(syn_threshold=100)
    controller = FastFlexController(net.topo, [booster])
    deployment = controller.setup(FlowSet())
    print(f"deployed syn_guard on "
          f"{len(deployment.placement.assignments)} switches "
          f"(verifier: clean)")

    meter = ThroughputMeter(net.topo, "victim", window_s=0.5)
    legit = PacketSource(net.topo, "client0", "victim", rate_pps=50,
                         size_bytes=600, tcp_flags=TcpFlags.ACK).start()
    flood = PacketSource(net.topo, "bot0", "victim", rate_pps=500,
                         size_bytes=60,
                         tcp_flags=TcpFlags.SYN).start(delay_s=2.0)

    sim.run(until=8.0)

    active = deployment.bus.switches_in_mode("syn_flood", "syn_block")
    first = deployment.bus.first_activation("syn_flood", "syn_block")
    print(f"\nflood started t=2.0s; syn_block mode initiated "
          f"t={first.time:.2f}s, active on {len(active)} switches")
    print(f"blocked sources: {sorted(booster.blocked)}")
    print(f"victim deliveries — legit client: "
          f"{meter.delivered('client0')}/{legit.packets_sent} sent; "
          f"SYN flood: {meter.delivered('bot0')}/{flood.packets_sent} "
          f"sent")
    drops = sum(
        net.topo.switch(s).stats.packets_dropped_by_program
        for s in net.topo.switch_names)
    print(f"packets dropped by the guard: {drops}")


if __name__ == "__main__":
    main()
