#!/usr/bin/env python
"""Mixed-vector attacks and co-existing region-scoped modes.

The Figure 2 caption claims the multimode abstraction generalizes:
"Mixed-vector attacks would trigger co-existing modes at different
regions of the network."  This example runs two simultaneous attacks on
an Abilene-like WAN — a link flood near the west coast and a volumetric
UDP flood near the east coast — and shows two *different* defense modes
holding in two different regions at the same time, each activated by
hop-scoped mode probes.

Run:  python examples/mixed_vector_defense.py
"""

from repro.core import (ModeEventBus, ModeRegistry, ModeSpec,
                        install_mode_agents)
from repro.netsim import (GBPS, FlowSet, FluidNetwork, Simulator,
                          abilene_like, install_host_routes,
                          install_switch_routes, make_flow, shortest_path)


def main() -> None:
    sim = Simulator(seed=9)
    topo = abilene_like(sim, hosts_per_city=1)
    install_host_routes(topo)
    install_switch_routes(topo)
    print(f"network: {topo}")

    # Background traffic coast to coast.
    flows = FlowSet()
    pairs = [("seattle0", "newyork0"), ("losangeles0", "washington0"),
             ("denver0", "atlanta0")]
    for index, (src, dst) in enumerate(pairs):
        flow = flows.add(make_flow(src, dst, 1 * GBPS, sport=100 + index))
        flow.set_path(shortest_path(topo, src, dst))
    fluid = FluidNetwork(topo, flows).start()

    # Two attack-specific modes, registered network-wide.
    registry = ModeRegistry()
    registry.register(ModeSpec.of(
        "lfa_mitigate", "lfa", boosters_on=("reroute", "obfuscation")))
    registry.register(ModeSpec.of(
        "ddos_filter", "ddos", boosters_on=("heavy_hitter.filter",)))
    bus = ModeEventBus()
    agents = install_mode_agents(topo, registry, bus=bus)

    # Attack 1: link flooding detected at Seattle -> LFA mode, scope 2.
    # Attack 2: volumetric flood detected at Washington -> DDoS filter
    # mode, scope 2.  Both propagate as data-plane probes.
    sim.schedule(1.0, agents["sw_seattle"].initiate,
                 "lfa", "lfa_mitigate", 2)
    sim.schedule(1.2, agents["sw_washington"].initiate,
                 "ddos", "ddos_filter", 2)
    sim.run(until=3.0)

    print("\nper-switch mode state (co-existing, region-scoped):")
    print(f"{'switch':<18}{'lfa mode':<16}{'ddos mode':<16}")
    for name in sorted(agents):
        table = agents[name].mode_table
        print(f"{name:<18}{table.mode_for('lfa'):<16}"
              f"{table.mode_for('ddos'):<16}")

    lfa_region = {n for n, a in agents.items()
                  if a.mode_table.mode_for("lfa") == "lfa_mitigate"}
    ddos_region = {n for n, a in agents.items()
                   if a.mode_table.mode_for("ddos") == "ddos_filter"}
    print(f"\nLFA region ({len(lfa_region)} switches): "
          f"{sorted(lfa_region)}")
    print(f"DDoS region ({len(ddos_region)} switches): "
          f"{sorted(ddos_region)}")
    both = lfa_region & ddos_region
    print(f"switches in both modes simultaneously: "
          f"{sorted(both) if both else 'none'}")

    # The attacks subside; each region returns to default independently.
    sim.schedule(0.1, agents["sw_seattle"].initiate, "lfa", "default", 2)
    sim.run(until=4.0)
    still_lfa = {n for n, a in agents.items()
                 if a.mode_table.mode_for("lfa") == "lfa_mitigate"}
    print(f"\nafter the LFA subsides: LFA region = "
          f"{sorted(still_lfa) if still_lfa else 'empty'}; DDoS region "
          f"unchanged = "
          f"{sorted(n for n, a in agents.items() if a.mode_table.mode_for('ddos') == 'ddos_filter')}")


if __name__ == "__main__":
    main()
