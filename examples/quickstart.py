#!/usr/bin/env python
"""Quickstart: deploy FastFlex, attack it, watch it defend itself.

Builds the paper's Figure 2 network, deploys the four-booster LFA
defense through the FastFlex controller (compile -> analyze -> place ->
install), launches a Crossfire attacker, and prints a timeline of what
happened — detection, the distributed mode change, rerouting, policing,
and the throughput of the legitimate users throughout.

Run:  python examples/quickstart.py
"""

from repro.attacks import RollingAttacker
from repro.boosters import build_figure2_defense
from repro.netsim import (FlowSet, FluidNetwork, GBPS, Monitor, Simulator,
                          figure2_topology, install_flow_route, make_flow)


def main() -> None:
    # --- 1. The network: 8 switches, two critical links, two detours.
    sim = Simulator(seed=1)
    net = figure2_topology(sim, critical_capacity=10 * GBPS,
                           detour_capacity=2 * GBPS)
    print(f"network: {net.topo}")

    # --- 2. The legitimate workload: four clients pulling from the
    #        victim server at 1.5 Gbps each.
    flows = FlowSet()
    for index, client in enumerate(net.client_hosts):
        flows.add(make_flow(client, net.victim, 1.5 * GBPS,
                            sport=10_000 + index))
    fluid = FluidNetwork(net.topo, flows)

    # --- 3. Deploy FastFlex: the controller runs the Figure 1 pipeline
    #        (merge booster dataflow graphs, place PPMs, install) and
    #        computes default-mode TE.  After this, the controller is
    #        out of the loop: all reactions happen in the data plane.
    defense = build_figure2_defense(net, fluid)
    deployment = defense.setup(flows)
    for flow in flows:
        install_flow_route(net.topo, flow.path)
    report = deployment.merged.report
    print(f"deployed {report.total_ppms_after} merged modules "
          f"({report.total_ppms_before} before sharing) on "
          f"{len(deployment.placement.assignments)} switches; "
          f"TE max link utilization "
          f"{deployment.te.max_utilization:.2f}")

    fluid.start()
    monitor = Monitor(fluid, period=0.5)
    series = monitor.watch_normal_goodput(
        baseline_bps=sum(f.demand_bps for f in flows))
    monitor.start()

    # --- 4. The adversary: Crossfire mapping + rolling feedback loop.
    attacker = RollingAttacker(
        net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
        victim=net.victim, connections_per_bot=200,
        per_connection_bps=10e6)
    attacker.map_then_attack(start_delay=4.0)

    sim.run(until=30.0)

    # --- 5. The timeline.
    print("\ntimeline:")
    for event in attacker.events:
        print(f"  t={event.time:6.2f}s  attacker   {event.kind}: "
              f"{event.detail}")
    for detection in defense.detector.detections:
        print(f"  t={detection.time:6.2f}s  detector   LFA on link "
              f"{detection.link[0]}->{detection.link[1]} "
              f"(util {detection.utilization:.2f}, "
              f"{detection.suspicious_flows} suspicious flows)")
    first = deployment.bus.first_activation("lfa", "lfa_mitigate")
    if first is not None:
        switches = deployment.bus.switches_in_mode("lfa", "lfa_mitigate")
        print(f"  t={first.time:6.2f}s  mode probe  mitigation mode "
              f"reached {len(switches)} switches in-data-plane")
    print(f"  rerouted suspicious-flow placements: "
          f"{defense.reroute.reroutes_applied}; policed flows: "
          f"{defense.dropper.flows_policed}; forged traceroute "
          f"replies: "
          f"{sum(p.replies_forged for p in defense.obfuscation.programs.values())}")

    print("\nnormalized throughput of normal flows:")
    for t, value in series.samples:
        if t % 2 == 0:
            bar = "#" * int(value * 40)
            print(f"  t={t:5.1f}s {value:6.1%} {bar}")
    mean = series.mean_over(6.0, 30.0)
    print(f"\nmean throughput under attack: {mean:.1%} "
          f"(attacker rolls: {attacker.roll_count})")


if __name__ == "__main__":
    main()
