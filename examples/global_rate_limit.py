#!/usr/bin/env python
"""Distributed detection: a global rate limit no single switch can see.

§3.3's second detection class: "other problems, such as network-wide
heavy hitters or global rate limits, may require a network-wide
detection."  A tenant sends through two different ingress switches, each
below the limit locally; only the synchronized global view exceeds it.
The rate-limiter booster's sync agents exchange digests and enforcement
kicks in network-wide.

Run:  python examples/global_rate_limit.py
"""

from repro.boosters import GlobalRateLimiterBooster, TENANT_HEADER
from repro.core import FastFlexController
from repro.netsim import (FlowSet, Packet, Simulator, figure2_topology,
                          install_fast_reroute_alternates,
                          install_host_routes, install_switch_routes)

LIMIT_BPS = 2e6


def main() -> None:
    sim = Simulator(seed=4)
    net = figure2_topology(sim)
    topo = net.topo
    install_host_routes(topo)
    install_switch_routes(topo)
    install_fast_reroute_alternates(topo)

    booster = GlobalRateLimiterBooster(limits={"tenantA": LIMIT_BPS},
                                       window_s=1.0, sync_period_s=0.1)
    controller = FastFlexController(topo, [booster])
    controller.setup(FlowSet(), install_routes=False)
    print(f"rate limiter on {sorted(booster.programs)} with sync agents; "
          f"tenantA limit {LIMIT_BPS / 1e6:.0f} Mbps")

    sent = {"west": [], "east": []}

    def pump(host, dst, bucket, count):
        for index in range(count):
            pkt = Packet(src=host, dst=dst, size_bytes=1500,
                         sport=5000 + index,
                         headers={TENANT_HEADER: "tenantA"})
            topo.host(host).originate(pkt)
            sent[bucket].append(pkt)

    # Phase 1: one ingress alone, under the global limit.
    sim.schedule(0.5, pump, "client0", "victim", "west", 100)
    sim.run(until=1.0)
    west_rate = booster.programs["sL"].local_rates()["tenantA"]
    dropped = sum(1 for p in sent["west"] if p.dropped)
    print(f"\nphase 1 — single ingress: local rate "
          f"{west_rate / 1e6:.2f} Mbps, dropped {dropped}/100 "
          f"(limit not exceeded globally)")

    # Phase 2: a second ingress joins; each is below the limit locally,
    # together they exceed it.
    sim.schedule(0.1, pump, "victim", "client0", "east", 100)
    sim.schedule(0.4, pump, "client0", "victim", "west", 100)
    sim.run(until=2.0)
    program = booster.programs["sL"]
    local = program.local_rates().get("tenantA", 0.0)
    global_rate = program.global_rate("tenantA")
    dropped_late = sum(1 for p in sent["west"][100:] if p.dropped)
    print(f"\nphase 2 — two ingresses: sL local "
          f"{local / 1e6:.2f} Mbps, global view "
          f"{global_rate / 1e6:.2f} Mbps "
          f"(> limit: {global_rate > LIMIT_BPS})")
    print(f"enforcement: {dropped_late}/100 of the second wave dropped "
          f"proportionally at sL")
    total_sync_bytes = sum(a.stats.bytes_sent
                           for a in booster.sync_agents.values())
    print(f"synchronization overhead so far: {total_sync_bytes} bytes "
          f"of digests")


if __name__ == "__main__":
    main()
