#!/usr/bin/env python
"""Figure 3 end to end: FastFlex vs. the SDN-TE baseline.

Runs the paper's 120-second evaluation scenario against both systems and
prints the normalized-throughput time series side by side, with the
attacker's rolls and the baseline's TE reconfigurations annotated —
the textual rendering of Figure 3.

Run:  python examples/rolling_attack_comparison.py
"""

from repro.experiments.figure3 import (Figure3Config, format_report,
                                       run_baseline, run_fastflex)


def main() -> None:
    config = Figure3Config()
    print("running the SDN-TE baseline (30 s reconfiguration period)...")
    baseline = run_baseline(config)
    print("running FastFlex (all reactions in the data plane)...")
    fastflex = run_fastflex(config)

    print()
    print(format_report({"baseline_sdn": baseline,
                         "fastflex": fastflex}, config))

    print()
    print("annotations:")
    for record in baseline.te_reconfigs:
        print(f"  t={record.time:6.1f}s  baseline TE reconfiguration "
              f"(congested: {record.congested_links or 'none'}, "
              f"{record.flows_rerouted} flows moved)")
    for event in baseline.attack_events:
        if event.kind in ("roll", "launch"):
            print(f"  t={event.time:6.1f}s  attacker vs baseline: "
                  f"{event.kind} — {event.detail}")
    for detection in fastflex.detections:
        print(f"  t={detection.time:6.1f}s  FastFlex detection on "
              f"{detection.link[0]}->{detection.link[1]}")
    for event in fastflex.attack_events:
        if event.kind in ("launch", "perceived_success"):
            print(f"  t={event.time:6.1f}s  attacker vs FastFlex: "
                  f"{event.kind} — {event.detail}")


if __name__ == "__main__":
    main()
