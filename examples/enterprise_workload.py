#!/usr/bin/env python
"""Realistic background traffic: no false alarms, real alarms still fire.

Deploys the FastFlex LFA defense under an enterprise-style workload —
heavy-tailed elephant/mice demands with a diurnal swing — and shows
(1) a full demand cycle with **zero** detections or mode changes (the
legitimate elephants never look like Crossfire), then (2) a real attack
arriving on top of the same traffic and being caught anyway.

Run:  python examples/enterprise_workload.py
"""

from repro.attacks import CrossfireAttacker
from repro.boosters import build_figure2_defense
from repro.netsim import (FlowSet, FluidNetwork, GBPS, Simulator,
                          enterprise_workload, figure2_topology,
                          install_flow_route)


def main() -> None:
    sim = Simulator(seed=8)
    net = figure2_topology(sim, detour_capacity=2 * GBPS)

    # Enterprise mix: 4 client aggregates toward the victim server,
    # one elephant carrying 60% of ~6 Gbps, demand swinging +/-40% over
    # a (compressed) diurnal period.
    workload = enterprise_workload(
        sim, clients=net.client_hosts, servers=[net.victim],
        total_bps=6 * GBPS, elephant_fraction=0.25, elephant_share=0.6,
        diurnal_amplitude=0.4, period_s=30.0, update_interval_s=1.0)
    flows = FlowSet()
    for flow in workload.flows:
        flows.add(flow)
    fluid = FluidNetwork(net.topo, flows)

    defense = build_figure2_defense(net, fluid)
    deployment = defense.setup(flows)
    for flow in flows:
        install_flow_route(net.topo, flow.path)
    if workload.modulator is not None:
        workload.modulator.start()
    fluid.start()

    demands = sorted((f.demand_bps / 1e9 for f in flows), reverse=True)
    print(f"workload: demands {[f'{d:.2f}G' for d in demands]} "
          f"(elephant + mice), diurnal amplitude 40%")

    # --- Phase 1: one full demand cycle, no attack.
    sim.run(until=35.0)
    print(f"\nphase 1 (t=0..35s, no attack): detections="
          f"{len(defense.detector.detections)}, mode changes="
          f"{len(deployment.bus.events)}")
    assert not defense.detector.detections, "false positive!"

    # --- Phase 2: a Crossfire flood arrives on top of the same traffic.
    attacker = CrossfireAttacker(
        net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
        victim=net.victim, connections_per_bot=200,
        per_connection_bps=10e6)
    attacker.map_then_attack(start_delay=1.0)
    sim.run(until=60.0)

    print(f"\nphase 2 (attack at t≈36s):")
    for detection in defense.detector.detections:
        print(f"  t={detection.time:.2f}s detected LFA on "
              f"{detection.link[0]}->{detection.link[1]} "
              f"({detection.suspicious_flows} suspicious flows)")
    flagged = {f.src for f in fluid.flows if f.suspicious}
    legit = {f.src for f in flows.normal() if f.suspicious}
    print(f"  flagged sources: {sorted(flagged)}")
    print(f"  legitimate sources flagged: {sorted(legit) or 'none'}")
    goodput = fluid.normal_goodput() / workload.total_base_demand
    print(f"  normal goodput at t=60s: {goodput:.0%} of base demand")


if __name__ == "__main__":
    main()
