"""Shared fixtures for the FastFlex reproduction test suite."""

from __future__ import annotations

import pytest

from repro.netsim import (FlowSet, FluidNetwork, GBPS, Simulator,
                          figure2_topology, install_fast_reroute_alternates,
                          install_host_routes, install_switch_routes,
                          make_flow)


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture
def fig2(sim):
    """The paper's Figure 2 network with routes installed."""
    net = figure2_topology(sim)
    install_host_routes(net.topo)
    install_switch_routes(net.topo)
    install_fast_reroute_alternates(net.topo)
    return net


@pytest.fixture
def fig2_fluid(fig2):
    """Figure 2 network plus a fluid model with the client workload."""
    flows = FlowSet()
    for index, client in enumerate(fig2.client_hosts):
        flows.add(make_flow(client, fig2.victim, 1.5 * GBPS,
                            sport=40000 + index))
    fluid = FluidNetwork(fig2.topo, flows)
    return fig2, fluid, flows
