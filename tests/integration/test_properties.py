"""Cross-module property tests (hypothesis) on randomized networks.

These exercise whole subsystems together on generated topologies —
the invariants that must hold regardless of shape or seed.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (ModeEventBus, ModeRegistry, ModeSpec,
                        StateTransferService, install_mode_agents)
from repro.netsim import (Packet, Simulator, default_path_for,
                          install_host_routes, install_switch_routes,
                          random_topology)


def build_random_net(seed, n_switches=8, n_hosts=4, extra_edges=3):
    sim = Simulator(seed=seed)
    topo = random_topology(sim, n_switches=n_switches, n_hosts=n_hosts,
                           extra_edges=extra_edges)
    install_host_routes(topo)
    install_switch_routes(topo)
    return sim, topo


class TestModeProtocolProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           initiators=st.integers(1, 3))
    def test_concurrent_initiations_converge_network_wide(self, seed,
                                                          initiators):
        """Any set of concurrent same-mode initiations converges: every
        switch ends in the same mode with a consistent epoch."""
        sim, topo = build_random_net(seed)
        registry = ModeRegistry()
        registry.register(ModeSpec.of("mitigate", "lfa", ()))
        agents = install_mode_agents(topo, registry, bus=ModeEventBus())
        names = sorted(agents)
        rng = sim.rng
        for _ in range(initiators):
            origin = names[rng.randrange(len(names))]
            sim.schedule(rng.random() * 0.01,
                         agents[origin].initiate, "lfa", "mitigate")
        sim.run(until=2.0)
        modes = {agent.mode_table.mode_for("lfa")
                 for agent in agents.values()}
        assert modes == {"mitigate"}
        # Epochs are small: concurrent initiations collapse, they do
        # not escalate unboundedly.
        epochs = {agent.mode_table.epoch_for("lfa")
                  for agent in agents.values()}
        assert max(epochs) <= initiators

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_activate_then_deactivate_returns_to_default(self, seed):
        sim, topo = build_random_net(seed)
        registry = ModeRegistry()
        registry.register(ModeSpec.of("mitigate", "lfa", ()))
        agents = install_mode_agents(topo, registry)
        first = sorted(agents)[0]
        agents[first].initiate("lfa", "mitigate")
        sim.run(until=1.0)
        agents[first].initiate("lfa", "default")
        sim.run(until=2.0)
        assert all(agent.mode_table.mode_for("lfa") == "default"
                   for agent in agents.values())


class TestForwardingProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_packets_follow_the_computed_default_path(self, seed):
        """default_path_for is exactly what forwarding does — for every
        host pair on a random network."""
        sim, topo = build_random_net(seed)
        hosts = topo.host_names
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                expected = default_path_for(topo, src, dst)
                pkt = Packet(src=src, dst=dst)
                topo.host(src).originate(pkt)
                sim.run()
                assert tuple(pkt.path_taken) == expected.nodes
                assert pkt.dropped is None

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_ttl_suffices_for_any_delivered_path(self, seed):
        sim, topo = build_random_net(seed)
        hosts = topo.host_names
        src, dst = hosts[0], hosts[-1]
        pkt = Packet(src=src, dst=dst)
        topo.host(src).originate(pkt)
        sim.run()
        assert pkt.dropped is None
        assert pkt.ttl > 0


class TestFluidProperties:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), n_flows=st.integers(1, 10))
    def test_allocation_sound_on_random_networks(self, seed, n_flows):
        """Network-wide fluid invariants: elastic load never exceeds any
        link's capacity, rates are demand-bounded, goodput <= rate."""
        from repro.netsim import (FluidNetwork, FlowSet, make_flow,
                                  shortest_path)
        sim, topo = build_random_net(seed)
        hosts = topo.host_names
        rng = sim.rng
        flows = FlowSet()
        for index in range(n_flows):
            src, dst = rng.sample(hosts, 2)
            flow = make_flow(src, dst, rng.uniform(1e8, 2e10),
                             weight=rng.choice([1.0, 25.0]),
                             elastic=rng.random() < 0.8, sport=index)
            flow.set_path(shortest_path(topo, src, dst))
            flows.add(flow)
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.run(until=0.2)
        elastic_load = {key: 0.0 for key in topo.links}
        for flow in flows:
            assert 0 <= flow.rate_bps <= flow.demand_bps * (1 + 1e-9)
            assert flow.goodput_bps <= flow.rate_bps * (1 + 1e-9)
            if flow.elastic:
                for key in flow.path.links():
                    elastic_load[key] += flow.rate_bps
        for key, load in elastic_load.items():
            assert load <= topo.links[key].capacity_bps * (1 + 1e-6)


class TestStateTransferProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000),
           payload=st.dictionaries(st.text(max_size=8),
                                   st.integers(0, 2**30), max_size=30))
    def test_lossless_transfer_always_succeeds(self, seed, payload):
        sim, topo = build_random_net(seed)
        service = StateTransferService(topo)
        service.install_agents()
        switches = topo.switch_names
        src, dst = switches[0], switches[-1]
        if src == dst:
            return
        results = []
        service.send(src, dst, payload, on_complete=results.append)
        sim.run(until=2.0)
        assert len(results) == 1
        assert results[0].success
        assert results[0].payload == payload
