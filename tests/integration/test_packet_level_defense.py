"""Packet-level end-to-end defense (the paper's bmv2-style validation).

No fluid model here: hosts emit real packet streams through the switch
pipelines.  A volumetric UDP flood is detected by the always-on HashPipe
counter, the ddos_filter mode floods through the network, the filter
drops the attacker at the ingress, and the legitimate stream's delivery
recovers — all observable per packet.
"""

import pytest

from repro.boosters import HeavyHitterBooster
from repro.core import FastFlexController
from repro.netsim import FlowSet, Protocol
from repro.netsim.sources import PacketSource, ThroughputMeter


@pytest.fixture
def deployed(fig2, sim):
    booster = HeavyHitterBooster(byte_threshold=200_000,
                                 check_period_s=0.5, clear_after_s=2.0)
    controller = FastFlexController(fig2.topo, [booster])
    deployment = controller.setup(FlowSet(), install_routes=False)
    return fig2, booster, deployment


class TestVolumetricDefenseEndToEnd:
    def test_flood_detected_filtered_and_reverted(self, deployed, sim):
        fig2, booster, deployment = deployed
        meter = ThroughputMeter(fig2.topo, "victim", window_s=0.5)
        legit = PacketSource(fig2.topo, "client0", "victim",
                             rate_pps=100, size_bytes=400).start()
        # ~9.6 Mbps of flood: far above the 200 kB / 0.5 s threshold.
        flood = PacketSource(fig2.topo, "bot0", "victim",
                             rate_pps=800, size_bytes=1500,
                             proto=Protocol.UDP, dport=53)
        sim.schedule(2.0, lambda: flood.start())
        sim.run(until=6.0)

        # Detection fired and the filter mode propagated network-wide.
        assert booster.detection_events
        detect_time = booster.detection_events[0][0]
        assert 2.0 < detect_time < 3.5
        active = deployment.bus.switches_in_mode("ddos", "ddos_filter")
        assert len(active) == len(fig2.topo.switch_names)

        # The attacker is being dropped at its ingress; the victim's
        # delivered attack rate collapsed while legit flow is untouched.
        drops = sum(p.packets_dropped for p in booster.filters.values())
        assert drops > 0
        assert meter.rate_bps("bot0", last_n_windows=2) < 1e6
        legit_rate = meter.rate_bps("client0", last_n_windows=2)
        assert legit_rate == pytest.approx(100 * 400 * 8, rel=0.15)

        # The flood ends; the mode reverts and the flags clear.
        flood.stop()
        sim.run(until=12.0)
        agent = deployment.mode_agents[booster.detection_events[0][1]]
        assert agent.mode_table.mode_for("ddos") == "default"
        assert all(not p.flagged for p in booster.filters.values())

    def test_no_flood_no_mode_change(self, deployed, sim):
        fig2, booster, deployment = deployed
        legit = PacketSource(fig2.topo, "client0", "victim",
                             rate_pps=100, size_bytes=400).start()
        sim.run(until=5.0)
        assert booster.detection_events == []
        assert deployment.bus.events == []
        assert legit.packets_sent > 0

    def test_legit_traffic_never_filtered(self, deployed, sim):
        fig2, booster, deployment = deployed
        meter = ThroughputMeter(fig2.topo, "victim", window_s=0.5)
        legit = PacketSource(fig2.topo, "client0", "victim",
                             rate_pps=100, size_bytes=400).start()
        flood = PacketSource(fig2.topo, "bot0", "victim",
                             rate_pps=800, size_bytes=1500,
                             proto=Protocol.UDP).start(delay_s=1.0)
        sim.run(until=6.0)
        # Deliveries track the offered legit rate throughout: no
        # collateral damage from the filter.
        expected = legit.packets_sent
        assert meter.delivered("client0") >= expected - 110  # in flight


class TestSourcesAndMeters:
    def test_source_rate(self, fig2, sim):
        source = PacketSource(fig2.topo, "client0", "victim",
                              rate_pps=50).start()
        sim.run(until=2.0)
        assert source.packets_sent == pytest.approx(100, abs=2)

    def test_meter_windows(self, fig2, sim):
        meter = ThroughputMeter(fig2.topo, "victim", window_s=1.0)
        PacketSource(fig2.topo, "client0", "victim", rate_pps=10,
                     size_bytes=1000).start()
        sim.run(until=3.0)
        assert meter.delivered("client0") >= 28
        assert meter.rate_bps("client0") == pytest.approx(80_000,
                                                          rel=0.15)

    def test_validation(self, fig2):
        with pytest.raises(ValueError):
            PacketSource(fig2.topo, "client0", "victim", rate_pps=0)
        with pytest.raises(ValueError):
            ThroughputMeter(fig2.topo, "victim", window_s=0.0)
