"""The Figure 3 result must not be a property of one lucky seed.

Runs the shortened scenario across several seeds and asserts the
qualitative shape — FastFlex sustains, baseline collapses, the attacker
rolls against the baseline only — holds for each.
"""

import pytest

from repro.experiments.figure3 import (Figure3Config, run_baseline,
                                       run_fastflex)

SEEDS = [3, 11, 42]


@pytest.mark.parametrize("seed", SEEDS)
def test_shape_holds_across_seeds(seed):
    config = Figure3Config(duration_s=40.0, seed=seed)
    baseline = run_baseline(config)
    fastflex = run_fastflex(config)

    assert fastflex.mean_during_attack(config) > 0.9, (
        f"seed {seed}: FastFlex mean "
        f"{fastflex.mean_during_attack(config):.2f}")
    assert baseline.mean_during_attack(config) < 0.75, (
        f"seed {seed}: baseline mean "
        f"{baseline.mean_during_attack(config):.2f}")
    assert fastflex.rolls == 0
    assert baseline.rolls >= 1
    assert fastflex.detections, f"seed {seed}: no detection"


def test_identical_seed_identical_series():
    """Determinism: the same seed reproduces the run sample-for-sample."""
    config = Figure3Config(duration_s=25.0, seed=5)
    first = run_fastflex(config)
    second = run_fastflex(config)
    assert first.throughput.samples == second.throughput.samples
    assert [(d.time, d.switch, d.link) for d in first.detections] == \
        [(d.time, d.switch, d.link) for d in second.detections]
