"""Partial deployment: FastFlex alongside legacy fixed-function switches.

§2: "legacy elements can still be part of the default mode, while
programmable elements can enter and exit the defense modes dynamically."
These tests build networks where some switches are legacy and verify
that forwarding is unaffected, programs are refused, mode probes tunnel
through the legacy hardware, and the scheduler places only on
programmable switches.
"""

import pytest

from repro.core import (ModeEventBus, ModeRegistry, ModeSpec,
                        StateTransferService, install_mode_agents)
from repro.netsim import (GBPS, LegacySwitchError, Packet, SwitchProgram,
                          Topology, install_host_routes,
                          install_switch_routes)


@pytest.fixture
def mixed_chain(sim):
    """h1 - p1 - L1 - L2 - p2 - h2: two programmable switches separated
    by two legacy ones."""
    topo = Topology(sim)
    topo.add_switch("p1")
    topo.add_switch("L1", programmable=False)
    topo.add_switch("L2", programmable=False)
    topo.add_switch("p2")
    topo.add_duplex_link("p1", "L1", 10 * GBPS, 0.001)
    topo.add_duplex_link("L1", "L2", 10 * GBPS, 0.001)
    topo.add_duplex_link("L2", "p2", 10 * GBPS, 0.001)
    topo.attach_host("h1", "p1")
    topo.attach_host("h2", "p2")
    install_host_routes(topo)
    install_switch_routes(topo)
    return topo


class TestLegacySwitches:
    def test_forwarding_unaffected(self, mixed_chain, sim):
        pkt = Packet(src="h1", dst="h2")
        mixed_chain.host("h1").originate(pkt)
        sim.run()
        assert pkt.dropped is None
        assert pkt.path_taken == ["h1", "p1", "L1", "L2", "p2", "h2"]

    def test_program_installation_refused(self, mixed_chain):
        class Noop(SwitchProgram):
            def process(self, switch, packet):
                return None

        with pytest.raises(LegacySwitchError):
            mixed_chain.switch("L1").install_program(Noop("x"))

    def test_legacy_budget_is_zero(self, mixed_chain):
        from repro.dataplane import ResourceVector
        assert mixed_chain.switch("L1").ledger.budget == \
            ResourceVector.zero()

    def test_programmable_switch_names(self, mixed_chain):
        assert mixed_chain.programmable_switch_names == ["p1", "p2"]


class TestModeProbesTunnel:
    def test_agents_only_on_programmable(self, mixed_chain, sim):
        registry = ModeRegistry()
        registry.register(ModeSpec.of("mitigate", "lfa", ()))
        agents = install_mode_agents(mixed_chain, registry)
        assert set(agents) == {"p1", "p2"}
        assert not mixed_chain.switch("L1").programs

    def test_overlay_peers_cross_legacy_hardware(self, mixed_chain, sim):
        registry = ModeRegistry()
        registry.register(ModeSpec.of("mitigate", "lfa", ()))
        agents = install_mode_agents(mixed_chain, registry)
        assert agents["p1"].overlay_peers == ["p2"]
        assert agents["p2"].overlay_peers == ["p1"]

    def test_mode_change_propagates_through_legacy(self, mixed_chain,
                                                   sim):
        registry = ModeRegistry()
        registry.register(ModeSpec.of("mitigate", "lfa", ()))
        bus = ModeEventBus()
        agents = install_mode_agents(mixed_chain, registry, bus=bus)
        assert agents["p1"].initiate("lfa", "mitigate")
        sim.run(until=1.0)
        assert agents["p2"].mode_table.mode_for("lfa") == "mitigate"
        # The probe crossed two legacy hops; propagation is still ms.
        arrival = bus.first_activation("lfa", "mitigate")
        last = max(e.time for e in bus.events)
        assert last - arrival.time < 0.02

    def test_state_transfer_crosses_legacy(self, mixed_chain, sim):
        service = StateTransferService(mixed_chain)
        service.install_agents()
        assert set(service.agents) == {"p1", "p2"}
        results = []
        service.send("p1", "p2", {"x": 1}, on_complete=results.append)
        sim.run(until=1.0)
        assert results and results[0].success


class TestPartialPlacement:
    def test_scheduler_skips_legacy(self, sim):
        from repro.core import ProgramAnalyzer, Scheduler, \
            greedy_min_max_te
        from repro.netsim import make_flow
        from tests.core.test_scheduler import tiny_booster

        topo = Topology(sim)
        topo.add_switch("p1")
        topo.add_switch("L1", programmable=False)
        topo.add_switch("p2")
        topo.add_duplex_link("p1", "L1", 10 * GBPS, 0.001)
        topo.add_duplex_link("L1", "p2", 10 * GBPS, 0.001)
        topo.attach_host("h1", "p1")
        topo.attach_host("h2", "p2")
        flows = [make_flow("h1", "h2", GBPS)]
        te = greedy_min_max_te(topo, flows)
        merged = ProgramAnalyzer().merge([tiny_booster()])
        placement = Scheduler().place(
            merged, topo, [te.paths[f.flow_id] for f in flows])
        assert placement.feasible
        assert "L1" not in placement.assignments or \
            not placement.assignments["L1"]
        hosts = placement.switches_hosting("defense.detect")
        assert hosts and set(hosts) <= {"p1", "p2"}
