"""Integration: the Figure 3 experiment end to end (shortened horizon).

The full 120 s experiment lives in ``benchmarks/``; these tests run a
40 s version covering one baseline TE round and one attacker roll, and
assert the paper's qualitative claims.
"""

import pytest

from repro.experiments.figure3 import (Figure3Config, run_baseline,
                                       run_fastflex)

CONFIG = Figure3Config(duration_s=40.0)


@pytest.fixture(scope="module")
def baseline():
    return run_baseline(CONFIG)


@pytest.fixture(scope="module")
def fastflex():
    return run_fastflex(CONFIG)


class TestBaseline:
    def test_attack_collapses_throughput(self, baseline):
        # Before the attack: full throughput; during: a deep drop.
        pre = baseline.throughput.mean_over(0.0, 4.0)
        during = baseline.throughput.mean_over(10.0, 30.0)
        assert pre == pytest.approx(1.0, abs=0.02)
        assert during < 0.7

    def test_attacker_rolls_after_te_reconfig(self, baseline):
        assert baseline.rolls >= 1
        roll_times = [e.time for e in baseline.attack_events
                      if e.kind == "roll"]
        te_times = [r.time for r in baseline.te_reconfigs]
        assert te_times and roll_times
        # The roll follows the TE deploy by the attacker's reaction lag.
        assert roll_times[0] > te_times[0]
        assert roll_times[0] - te_times[0] < 5.0

    def test_roll_degrades_throughput_again(self, baseline):
        roll_time = next(e.time for e in baseline.attack_events
                         if e.kind == "roll")
        post_roll = baseline.throughput.min_over(roll_time,
                                                 roll_time + 5.0)
        # The rolled flood lands on whatever path now carries victim
        # traffic; the flows there starve again (never back to 100%).
        assert post_roll < 0.8


class TestFastFlex:
    def test_throughput_sustained(self, fastflex):
        during = fastflex.throughput.mean_over(10.0, 40.0)
        assert during > 0.9

    def test_detection_within_a_second(self, fastflex):
        assert fastflex.detections
        detection = fastflex.detections[0]
        # The attack starts at ~t=4 (mapping takes ~0.3 s); detection
        # needs only the sustain window (100 ms) plus a few check periods.
        assert detection.time < CONFIG.attack_start_s + 1.0

    def test_mode_change_reaches_all_switches_in_milliseconds(self,
                                                              fastflex):
        activations = {}
        for event in fastflex.mode_events:
            if event.new_mode == "lfa_mitigate":
                activations.setdefault(event.switch, event.time)
        assert len(activations) == 8
        spread = max(activations.values()) - min(activations.values())
        assert spread < 0.05

    def test_attacker_never_rolls(self, fastflex):
        assert fastflex.rolls == 0

    def test_attacker_perceives_success(self, fastflex):
        kinds = [e.kind for e in fastflex.attack_events]
        assert "perceived_success" in kinds
        assert "roll_detected" not in kinds


class TestComparison:
    def test_fastflex_beats_baseline(self, baseline, fastflex):
        assert fastflex.mean_during_attack(CONFIG) > \
            baseline.mean_during_attack(CONFIG) + 0.2

    def test_fastflex_worst_case_beats_baseline_average(self, baseline,
                                                        fastflex):
        assert fastflex.min_during_attack(CONFIG) > \
            baseline.mean_during_attack(CONFIG)


class TestRunBothMetricsIsolation:
    """run_both must keep the two systems' registry counters apart."""

    def test_per_system_snapshots_recoverable(self):
        from repro import telemetry
        from repro.experiments.figure3 import run_both
        from repro.telemetry import MetricsRegistry

        config = Figure3Config(duration_s=15.0)
        telemetry.reset()
        results = run_both(config)
        baseline_snap = results["baseline_sdn"].metrics
        fastflex_snap = results["fastflex"].metrics
        assert baseline_snap and fastflex_snap

        # Each snapshot covers exactly its own system: the fluid-model
        # work counters must match the per-result counters, not a sum.
        for name, result in results.items():
            snap = result.metrics
            assert snap["fluid_updates_total"]["value"] == \
                result.fluid_updates
            assert snap["fluid_allocation_passes_total"]["value"] == \
                result.fluid_allocation_passes
        # Only FastFlex sends mode probes; the baseline snapshot must
        # not have inherited them.
        assert fastflex_snap["mode_probes_sent_total"]["value"] > 0
        assert baseline_snap.get("mode_probes_sent_total",
                                 {"value": 0})["value"] == 0

        # The process registry ends as the merge of both systems.
        final = telemetry.metrics().snapshot()
        merged = MetricsRegistry().merge(baseline_snap,
                                         fastflex_snap).snapshot()
        assert final["fluid_updates_total"]["value"] == \
            merged["fluid_updates_total"]["value"]

    def test_pre_existing_metrics_survive_run_both(self):
        from repro import telemetry
        from repro.experiments.figure3 import run_both

        telemetry.reset()
        telemetry.metrics().counter("pre_existing_total").inc(7)
        run_both(Figure3Config(duration_s=8.0))
        snapshot = telemetry.metrics().snapshot()
        assert snapshot["pre_existing_total"]["value"] == 7

    def test_pre_existing_metrics_survive_failed_run(self, monkeypatch):
        # Even when a run raises, the registry must be restored to
        # pre-existing state + whatever the completed runs recorded —
        # not left in the mid-run reset state.
        import repro.experiments.figure3 as figure3
        from repro import telemetry

        def boom(config):
            telemetry.metrics().counter("partial_total").inc(3)
            raise RuntimeError("fastflex blew up")

        monkeypatch.setattr(figure3, "run_fastflex", boom)
        telemetry.reset()
        telemetry.metrics().counter("pre_existing_total").inc(7)
        with pytest.raises(RuntimeError, match="fastflex blew up"):
            figure3.run_both(Figure3Config(duration_s=8.0))
        snapshot = telemetry.metrics().snapshot()
        assert snapshot["pre_existing_total"]["value"] == 7
        # the baseline completed before the failure; its counters and
        # the failed run's partial state are merged back too
        assert snapshot["fluid_updates_total"]["value"] > 0
        assert snapshot["partial_total"]["value"] == 3
