"""Integration: the Figure 1 pipeline on the full booster catalog."""

import pytest

from repro.experiments.figure1 import (run_merge, run_placement,
                                       run_scaling_demo)


class TestMerge:
    def test_sharing_found_across_catalog(self):
        merged, summary = run_merge()
        assert summary.ppms_after < summary.ppms_before
        assert summary.shared_groups >= 1
        assert summary.sram_savings_fraction > 0

    def test_module_table_covers_merged_graph(self):
        merged, summary = run_merge()
        assert len(summary.module_table) == summary.ppms_after

    def test_strict_parser_mode_shares_less(self):
        _, loose = run_merge(merge_all_parsers=True)
        _, strict = run_merge(merge_all_parsers=False)
        assert strict.ppms_after >= loose.ppms_after


class TestPlacement:
    @pytest.mark.parametrize("topology", ["figure2", "abilene"])
    def test_full_catalog_placement_feasible(self, topology):
        summary = run_placement(topology)
        assert summary.feasible, summary.placement.infeasibility_reasons
        assert summary.path_coverage == 1.0
        assert summary.detector_switches >= 1

    def test_cover_only_uses_fewer_detectors(self):
        pervasive = run_placement("abilene", pervasive=True)
        minimal = run_placement("abilene", pervasive=False)
        assert minimal.detector_switches <= pervasive.detector_switches


class TestScaling:
    def test_scale_out_replicates_with_state(self):
        summary = run_scaling_demo()
        assert summary.instances_before == 1
        assert summary.instances_after == 2
        assert summary.state_seeded
        assert summary.seed_latency_s < 0.5
