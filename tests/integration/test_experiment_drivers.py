"""Tests for the experiment drivers' reporting machinery."""

import pytest

from repro.experiments.figure1 import booster_suite, run_merge
from repro.experiments.figure3 import (Figure3Config, Figure3Result,
                                       format_report, run_fastflex)
from repro.netsim import TimeSeries


class TestFigure3Config:
    def test_defaults_follow_the_paper(self):
        config = Figure3Config()
        assert config.duration_s == 120.0
        assert config.te_period_s == 30.0
        assert config.n_bots == 6

    def test_normal_demand_total(self):
        config = Figure3Config(n_clients=3, client_demand_bps=2e9)
        assert config.normal_demand_total == 6e9


class TestFormatReport:
    def make_result(self, name, values):
        series = TimeSeries("x")
        for index, value in enumerate(values):
            series.record(float(index), value)
        return Figure3Result(system=name, throughput=series, rolls=2)

    def test_report_contains_series_and_summary(self):
        config = Figure3Config(duration_s=4.0, attack_start_s=1.0)
        results = {
            "baseline_sdn": self.make_result("baseline_sdn",
                                             [1.0, 0.5, 0.5, 0.6]),
            "fastflex": self.make_result("fastflex",
                                         [1.0, 0.9, 1.0, 1.0]),
        }
        report = format_report(results, config)
        assert "baseline_sdn" in report and "fastflex" in report
        assert "mean under attack" in report
        assert "attacker rolls" in report
        # Every sample time appears as a row.
        for t in ("0.0", "1.0", "2.0", "3.0"):
            assert t in report

    def test_result_windows(self):
        config = Figure3Config(duration_s=4.0, attack_start_s=1.0)
        result = self.make_result("x", [1.0, 0.8, 0.4, 0.2])
        # Window starts at attack_start + 2.0 = 3.0.
        assert result.mean_during_attack(config) == pytest.approx(0.2)
        assert result.min_during_attack(config) == pytest.approx(0.2)


class TestBoosterSuite:
    def test_suite_is_fresh_per_call(self):
        first = booster_suite()
        second = booster_suite()
        assert first is not second
        assert {b.name for b in first} == {b.name for b in second}
        assert all(a is not b for a, b in zip(first, second))

    def test_suite_covers_the_paper_catalog(self):
        names = {b.name for b in booster_suite()}
        assert {"lfa_detector", "reroute", "dropper", "obfuscation",
                "heavy_hitter", "hop_count", "rate_limiter",
                "netwarden", "poise"} <= names

    def test_merge_is_deterministic(self):
        _, first = run_merge()
        _, second = run_merge()
        assert first.module_table == second.module_table
        assert first.ppms_after == second.ppms_after


class TestShortHorizonRun:
    def test_pre_attack_throughput_is_full(self):
        config = Figure3Config(duration_s=4.0, attack_start_s=10.0)
        result = run_fastflex(config)
        # The attack never starts inside the horizon.
        assert result.throughput.mean_over(0.0, 4.0) == pytest.approx(
            1.0, abs=0.01)
        assert result.detections == []
