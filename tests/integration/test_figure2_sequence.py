"""Integration: the Figure 2 multimode sequence and mixed vectors."""

import pytest

from repro.experiments.figure2 import run_mixed_vector, run_mode_sequence


@pytest.fixture(scope="module")
def sequence():
    return run_mode_sequence(duration_s=20.0)


class TestPanelA:
    def test_default_mode_gating(self, sequence):
        for switch, gating in sequence.default_mode_boosters.items():
            assert gating["lfa_detector"], f"{switch}: detector must be on"
            assert not gating["reroute"]
            assert not gating["dropper"]
            assert not gating["obfuscation"]


class TestPanelB:
    def test_all_switches_activated(self, sequence):
        assert len(sequence.activation_times) == 8

    def test_propagation_is_milliseconds(self, sequence):
        assert sequence.propagation_delay_s is not None
        assert sequence.propagation_delay_s < 0.05

    def test_detection_precedes_activations(self, sequence):
        assert sequence.detection_time is not None
        assert all(t >= sequence.detection_time
                   for t in sequence.activation_times.values())


class TestPanelC:
    def test_suspicious_rerouted(self, sequence):
        assert sequence.suspicious_total > 0
        assert sequence.suspicious_rerouted == sequence.suspicious_total

    def test_normal_pinned(self, sequence):
        assert sequence.normal_total > 0
        assert sequence.normal_pinned == sequence.normal_total

    def test_obfuscation_and_policing_engaged(self, sequence):
        assert sequence.forged_traceroute_replies > 0
        assert sequence.policed_flows > 0


class TestPanelD:
    def test_rolling_attacker_stuck(self, sequence):
        assert sequence.attacker_rolls == 0
        assert sequence.attacker_perceived_success

    def test_network_still_in_mitigation(self, sequence):
        assert set(sequence.final_modes.values()) == {"lfa_mitigate"}


class TestMixedVector:
    def test_coexisting_region_scoped_modes(self):
        result = run_mixed_vector()
        assert result.lfa_region and result.ddos_region
        # West-coast LFA response, east-coast DDoS response.
        assert "sw_seattle" in result.lfa_region
        assert "sw_washington" in result.ddos_region
        assert "sw_washington" not in result.lfa_region
        assert "sw_seattle" not in result.ddos_region
        # The scopes kept the regions from covering the whole WAN.
        assert len(result.lfa_region) < 11
        assert len(result.ddos_region) < 11
