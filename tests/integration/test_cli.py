"""Smoke tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_figure3_with_short_horizon(self, capsys):
        assert main(["figure3", "--duration", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "baseline_sdn" in out
        assert "fastflex" in out
        assert "mean under attack" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "module" in out
        assert "Figure 1d" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "multimode sequence" in out
        assert "mixed-vector" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])


class TestTelemetryFlags:
    def test_trace_and_metrics_files_written(self, tmp_path, capsys):
        trace_path = tmp_path / "f3.jsonl"
        metrics_path = tmp_path / "f3.json"
        assert main(["figure3", "--duration", "12", "--seed", "3",
                     "--trace", str(trace_path),
                     "--metrics", str(metrics_path)]) == 0
        err = capsys.readouterr().err
        assert "[telemetry]" in err

        events = [json.loads(line)
                  for line in trace_path.read_text().splitlines()]
        assert events
        kinds = {e["kind"] for e in events}
        assert "mode_transition" in kinds
        assert "allocation_pass" in kinds
        assert all("sim_time" in e and "wall_time" in e for e in events)
        # experiment context tag is merged into every event of each run
        assert {e.get("system") for e in events} <= {"baseline_sdn",
                                                     "fastflex"}

        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["fluid_fastpath_hits_total"]["value"] > 0
        assert snapshot["mode_probes_sent_total"]["value"] > 0

    def test_trace_disabled_after_run(self, tmp_path):
        from repro import telemetry
        assert main(["figure1", "--trace", str(tmp_path / "t.jsonl")]) == 0
        assert telemetry.trace().enabled is False

    def test_metrics_without_trace(self, tmp_path):
        metrics_path = tmp_path / "m.json"
        assert main(["figure1", "--metrics", str(metrics_path)]) == 0
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot  # figure1 is analytic; snapshot may be small


class TestControllerVerificationGate:
    def test_broken_catalog_refused(self, fig2):
        from repro.core import (Booster, DataflowGraph,
                                BoosterVerificationError,
                                FastFlexController)
        from repro.netsim import FlowSet

        class Broken(Booster):
            name = "broken"

            def dataflow(self):
                return DataflowGraph(self.name)  # no PPMs: error finding

        controller = FastFlexController(fig2.topo, [Broken()])
        with pytest.raises(BoosterVerificationError):
            controller.setup(FlowSet(), install_routes=False)

    def test_verification_can_be_skipped(self, fig2):
        from repro.boosters import logic_ppm
        from repro.core import (Booster, BoosterVerificationError,
                                DataflowGraph, FastFlexController,
                                PpmRole)
        from repro.dataplane import ResourceVector
        from repro.netsim import FlowSet

        class Cyclic(Booster):
            """Deployable mechanically, but fails verification (cycle)."""

            name = "cyclic"

            def dataflow(self):
                graph = DataflowGraph(self.name)
                graph.add_ppm(logic_ppm(self.name, "a", PpmRole.DETECTION,
                                        ResourceVector(stages=1)))
                graph.add_ppm(logic_ppm(self.name, "b",
                                        PpmRole.MITIGATION,
                                        ResourceVector(stages=1)))
                graph.add_edge("a", "b", weight=1)
                graph.add_edge("b", "a", weight=1)
                return graph

        controller = FastFlexController(fig2.topo, [Cyclic()])
        with pytest.raises(BoosterVerificationError):
            controller.setup(FlowSet(), install_routes=False)
        deployment = controller.setup(FlowSet(), install_routes=False,
                                      verify=False)
        assert deployment is not None
