"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_figure3_with_short_horizon(self, capsys):
        assert main(["figure3", "--duration", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "baseline_sdn" in out
        assert "fastflex" in out
        assert "mean under attack" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "module" in out
        assert "Figure 1d" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "multimode sequence" in out
        assert "mixed-vector" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])


class TestControllerVerificationGate:
    def test_broken_catalog_refused(self, fig2):
        from repro.core import (Booster, DataflowGraph,
                                BoosterVerificationError,
                                FastFlexController)
        from repro.netsim import FlowSet

        class Broken(Booster):
            name = "broken"

            def dataflow(self):
                return DataflowGraph(self.name)  # no PPMs: error finding

        controller = FastFlexController(fig2.topo, [Broken()])
        with pytest.raises(BoosterVerificationError):
            controller.setup(FlowSet(), install_routes=False)

    def test_verification_can_be_skipped(self, fig2):
        from repro.boosters import logic_ppm
        from repro.core import (Booster, BoosterVerificationError,
                                DataflowGraph, FastFlexController,
                                PpmRole)
        from repro.dataplane import ResourceVector
        from repro.netsim import FlowSet

        class Cyclic(Booster):
            """Deployable mechanically, but fails verification (cycle)."""

            name = "cyclic"

            def dataflow(self):
                graph = DataflowGraph(self.name)
                graph.add_ppm(logic_ppm(self.name, "a", PpmRole.DETECTION,
                                        ResourceVector(stages=1)))
                graph.add_ppm(logic_ppm(self.name, "b",
                                        PpmRole.MITIGATION,
                                        ResourceVector(stages=1)))
                graph.add_edge("a", "b", weight=1)
                graph.add_edge("b", "a", weight=1)
                return graph

        controller = FastFlexController(fig2.topo, [Cyclic()])
        with pytest.raises(BoosterVerificationError):
            controller.setup(FlowSet(), install_routes=False)
        deployment = controller.setup(FlowSet(), install_routes=False,
                                      verify=False)
        assert deployment is not None
