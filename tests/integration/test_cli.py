"""Smoke tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_figure3_with_short_horizon(self, capsys):
        assert main(["figure3", "--duration", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "baseline_sdn" in out
        assert "fastflex" in out
        assert "mean under attack" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "module" in out
        assert "Figure 1d" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "multimode sequence" in out
        assert "mixed-vector" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])

    @pytest.mark.parametrize("experiment", ["figure1", "figure2"])
    @pytest.mark.parametrize("flags", [["--seed", "3"],
                                       ["--duration", "10"],
                                       ["--seed", "3", "--duration", "10"]])
    def test_inapplicable_overrides_rejected(self, experiment, flags,
                                             capsys):
        # --seed/--duration only parameterize figure3; silently ignoring
        # them would report results the flags never influenced.
        with pytest.raises(SystemExit) as exc:
            main([experiment] + flags)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "only apply to figure3" in err

    def test_overrides_accepted_for_all(self, capsys):
        # 'all' includes figure3, so the overrides do apply there.
        assert main(["all", "--duration", "8", "--seed", "3"]) == 0
        assert "mean under attack" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_trace_and_metrics_files_written(self, tmp_path, capsys):
        trace_path = tmp_path / "f3.jsonl"
        metrics_path = tmp_path / "f3.json"
        assert main(["figure3", "--duration", "12", "--seed", "3",
                     "--trace", str(trace_path),
                     "--metrics", str(metrics_path)]) == 0
        err = capsys.readouterr().err
        assert "[telemetry]" in err

        events = [json.loads(line)
                  for line in trace_path.read_text().splitlines()]
        assert events
        kinds = {e["kind"] for e in events}
        assert "mode_transition" in kinds
        assert "allocation_pass" in kinds
        assert all("sim_time" in e and "wall_time" in e for e in events)
        # experiment context tag is merged into every event of each run
        assert {e.get("system") for e in events} <= {"baseline_sdn",
                                                     "fastflex"}

        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["fluid_fastpath_hits_total"]["value"] > 0
        assert snapshot["mode_probes_sent_total"]["value"] > 0

    def test_figure3_metrics_carry_per_system_sections(self, tmp_path):
        metrics_path = tmp_path / "f3.json"
        assert main(["figure3", "--duration", "12", "--seed", "3",
                     "--metrics", str(metrics_path)]) == 0
        snapshot = json.loads(metrics_path.read_text())
        per_system = snapshot["per_system"]
        assert set(per_system) == {"baseline_sdn", "fastflex"}
        # Summed totals at the top level, per-system numbers beneath —
        # and they must actually add up.
        total = snapshot["fluid_updates_total"]["value"]
        split = [per_system[name]["fluid_updates_total"]["value"]
                 for name in per_system]
        assert total == sum(split)
        assert all(value > 0 for value in split)

    def test_trace_disabled_after_run(self, tmp_path):
        from repro import telemetry
        assert main(["figure1", "--trace", str(tmp_path / "t.jsonl")]) == 0
        assert telemetry.trace().enabled is False

    def test_metrics_without_trace(self, tmp_path):
        metrics_path = tmp_path / "m.json"
        assert main(["figure1", "--metrics", str(metrics_path)]) == 0
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot  # figure1 is analytic; snapshot may be small


class TestSweepCli:
    def test_sweep_runs_and_writes_summary(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        assert main(["sweep", "figure3", "--seeds", "0:2",
                     "--set", "duration_s=10", "--out", str(out),
                     "--quiet"]) == 0
        assert "2 task(s) (2 executed" in capsys.readouterr().out
        summary = json.loads((out / "sweep_summary.json").read_text())
        assert summary["executed"] == 2
        assert len(list((out / "tasks").glob("*.json"))) == 2
        (group,) = summary["aggregates"].values()
        assert group["scalars"]["gap"]["n"] == 2

    def test_sweep_resume_skips_completed(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        argv = ["sweep", "figure3", "--seeds", "0:2",
                "--set", "duration_s=10", "--out", str(out), "--quiet"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        assert "(0 executed, 2 resumed)" in capsys.readouterr().out

    def test_sweep_merged_metrics_file(self, tmp_path):
        metrics_path = tmp_path / "merged.json"
        assert main(["sweep", "figure3", "--seeds", "0:2",
                     "--set", "duration_s=10",
                     "--out", str(tmp_path / "s"),
                     "--metrics", str(metrics_path), "--quiet"]) == 0
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["fluid_updates_total"]["value"] > 0

    def test_sweep_unknown_driver_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["sweep", "no_such_driver", "--seeds", "0:1",
                          "--out", str(tmp_path / "x"), "--quiet"])
        assert exit_code == 1
        assert "no sweep driver named" in capsys.readouterr().err

    def test_sweep_bad_seed_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "figure3", "--seeds", "nope",
                  "--out", str(tmp_path / "x")])


class TestControllerVerificationGate:
    def test_broken_catalog_refused(self, fig2):
        from repro.core import (Booster, DataflowGraph,
                                BoosterVerificationError,
                                FastFlexController)
        from repro.netsim import FlowSet

        class Broken(Booster):
            name = "broken"

            def dataflow(self):
                return DataflowGraph(self.name)  # no PPMs: error finding

        controller = FastFlexController(fig2.topo, [Broken()])
        with pytest.raises(BoosterVerificationError):
            controller.setup(FlowSet(), install_routes=False)

    def test_verification_can_be_skipped(self, fig2):
        from repro.boosters import logic_ppm
        from repro.core import (Booster, BoosterVerificationError,
                                DataflowGraph, FastFlexController,
                                PpmRole)
        from repro.dataplane import ResourceVector
        from repro.netsim import FlowSet

        class Cyclic(Booster):
            """Deployable mechanically, but fails verification (cycle)."""

            name = "cyclic"

            def dataflow(self):
                graph = DataflowGraph(self.name)
                graph.add_ppm(logic_ppm(self.name, "a", PpmRole.DETECTION,
                                        ResourceVector(stages=1)))
                graph.add_ppm(logic_ppm(self.name, "b",
                                        PpmRole.MITIGATION,
                                        ResourceVector(stages=1)))
                graph.add_edge("a", "b", weight=1)
                graph.add_edge("b", "a", weight=1)
                return graph

        controller = FastFlexController(fig2.topo, [Cyclic()])
        with pytest.raises(BoosterVerificationError):
            controller.setup(FlowSet(), install_routes=False)
        deployment = controller.setup(FlowSet(), install_routes=False,
                                      verify=False)
        assert deployment is not None
