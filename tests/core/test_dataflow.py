"""Tests for booster dataflow graphs."""

import pytest

from repro.core import DataflowGraph, PpmKind, PpmRole, PpmSpec
from repro.dataplane import ResourceVector


def make_spec(name, booster="b", stages=1):
    return PpmSpec(name=name, kind=PpmKind.LOGIC, role=PpmRole.DETECTION,
                   requirement=ResourceVector(stages=stages),
                   booster=booster)


def chain_graph():
    graph = DataflowGraph("g")
    for name in ("parser", "table", "logic"):
        graph.add_ppm(make_spec(name))
    graph.add_edge("parser", "table", weight=16)
    graph.add_edge("table", "logic", weight=64)
    return graph


class TestConstruction:
    def test_duplicate_ppm_rejected(self):
        graph = DataflowGraph("g")
        graph.add_ppm(make_spec("x"))
        with pytest.raises(ValueError):
            graph.add_ppm(make_spec("x"))

    def test_self_edge_rejected(self):
        graph = DataflowGraph("g")
        graph.add_ppm(make_spec("x"))
        with pytest.raises(ValueError):
            graph.add_edge("x", "x")

    def test_negative_weight_rejected(self):
        graph = chain_graph()
        with pytest.raises(ValueError):
            graph.add_edge("parser", "logic", weight=-1)

    def test_short_name_resolution(self):
        graph = chain_graph()
        assert graph.ppm("parser").qualified_name == "b.parser"
        assert "parser" in graph
        assert "ghost" not in graph

    def test_ambiguous_short_name_raises(self):
        graph = DataflowGraph("g")
        graph.add_ppm(make_spec("x", booster="one"))
        graph.add_ppm(make_spec("x", booster="two"))
        with pytest.raises(KeyError):
            graph.ppm("x")
        assert graph.ppm("one.x").booster == "one"


class TestQueries:
    def test_successors_predecessors(self):
        graph = chain_graph()
        assert graph.successors("parser") == ["b.table"]
        assert graph.predecessors("logic") == ["b.table"]

    def test_edge_lookup(self):
        graph = chain_graph()
        assert graph.edge("parser", "table").weight == 16
        assert graph.edge("logic", "parser") is None

    def test_total_requirement(self):
        graph = chain_graph()
        assert graph.total_requirement().stages == 3

    def test_topological_order_respects_edges(self):
        graph = chain_graph()
        order = graph.topological_order()
        assert order.index("b.parser") < order.index("b.table") \
            < order.index("b.logic")

    def test_cycle_detected(self):
        graph = chain_graph()
        graph.add_edge("logic", "parser", weight=1)
        with pytest.raises(ValueError):
            graph.topological_order()


class TestClustering:
    def heavy_light_graph(self):
        graph = DataflowGraph("g")
        for name in ("a", "b", "c", "d"):
            graph.add_ppm(make_spec(name))
        graph.add_edge("a", "b", weight=100)   # heavy: a-b together
        graph.add_edge("b", "c", weight=1)     # light: cut here
        graph.add_edge("c", "d", weight=100)   # heavy: c-d together
        return graph

    def test_clusters_split_on_light_edges(self):
        graph = self.heavy_light_graph()
        clusters = graph.clusters(weight_threshold=50)
        assert {frozenset(c) for c in clusters} == {
            frozenset({"b.a", "b.b"}), frozenset({"b.c", "b.d"})}

    def test_low_threshold_merges_everything(self):
        graph = self.heavy_light_graph()
        assert len(graph.clusters(weight_threshold=0.5)) == 1

    def test_cut_weight_counts_crossing_edges(self):
        graph = self.heavy_light_graph()
        partition = [{"b.a", "b.b"}, {"b.c", "b.d"}]
        assert graph.cut_weight(partition) == 1

    def test_cut_weight_validates_partition(self):
        graph = self.heavy_light_graph()
        with pytest.raises(ValueError):
            graph.cut_weight([{"b.a"}])  # misses PPMs
        with pytest.raises(ValueError):
            graph.cut_weight([{"b.a", "b.b", "b.c", "b.d"}, {"b.a"}])

    def test_heavy_clusters_minimize_cut(self):
        # The clustering the paper asks for: keeping heavy edges internal
        # costs less header-carrying than any split through them.
        graph = self.heavy_light_graph()
        good = graph.cut_weight([{"b.a", "b.b"}, {"b.c", "b.d"}])
        bad = graph.cut_weight([{"b.a"}, {"b.b", "b.c", "b.d"}])
        assert good < bad
