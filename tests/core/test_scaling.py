"""Tests for runtime switch repurposing and scale-out (§3.4, Fig. 1d)."""

import pytest

from repro.core import ScalingManager, StateTransferService
from repro.dataplane import CountMinSketch
from repro.netsim import Packet, SwitchProgram


class Stateful(SwitchProgram):
    def __init__(self, name="app"):
        super().__init__(name)
        self.sketch = CountMinSketch(name, width=16, depth=2)

    def process(self, switch, packet):
        return None

    def export_state(self):
        return self.sketch.export_state()

    def import_state(self, state):
        self.sketch.import_state(state)


@pytest.fixture
def manager(fig2):
    service = StateTransferService(fig2.topo)
    service.install_agents()
    return ScalingManager(fig2.topo, service, reconfig_seconds=1.0)


class TestRepurpose:
    def test_swap_installs_after_downtime(self, fig2, sim, manager):
        switch = fig2.topo.switch("s1")
        switch.install_program(Stateful("old_app"))
        done = []
        record = manager.repurpose(
            "s1", remove=["old_app"],
            install=[lambda: Stateful("new_app")],
            on_complete=done.append)
        sim.run(until=0.5)
        assert switch.reconfiguring  # mid-window
        assert not switch.has_program("old_app")
        sim.run(until=2.0)
        assert done and not switch.reconfiguring
        assert switch.has_program("new_app")
        assert record.completed_at == pytest.approx(1.0, abs=0.05)

    def test_neighbors_told_to_avoid_then_cleared(self, fig2, sim, manager):
        manager.repurpose("s1", remove=[], install=[])
        sim.run(until=0.5)
        assert "s1" in fig2.topo.switch("sL").avoid_neighbors
        sim.run(until=2.0)
        assert "s1" not in fig2.topo.switch("sL").avoid_neighbors

    def test_traffic_fast_reroutes_during_downtime(self, fig2, sim,
                                                   manager):
        manager.repurpose("s1", remove=[], install=[])
        sent = []

        def probe():
            pkt = Packet(src="client0", dst="victim")
            fig2.topo.host("client0").originate(pkt)
            sent.append(pkt)

        sim.schedule(0.5, probe)   # during the window
        sim.run(until=3.0)
        pkt = sent[0]
        assert pkt.dropped is None
        assert "s1" not in pkt.path_taken
        assert fig2.topo.host("victim").received_count() == 1

    def test_hitless_mode_keeps_forwarding(self, fig2, sim, manager):
        switch = fig2.topo.switch("s1")
        manager.repurpose("s1", remove=[], install=[], hitless=True)
        sim.run(until=0.1)
        assert not switch.reconfiguring

    def test_state_shipped_to_takeover_switch(self, fig2, sim, manager):
        switch = fig2.topo.switch("s1")
        program = Stateful("app")
        for i in range(30):
            program.sketch.update(i % 5)
        switch.install_program(program)
        record = manager.repurpose("s1", remove=["app"],
                                   transfer_state_to="s2")
        sim.run(until=3.0)
        assert record.state_transfer_id is not None
        assert record.state_transfer_ok is True

    def test_double_repurpose_rejected(self, fig2, sim, manager):
        manager.repurpose("s1")
        sim.run(until=0.05)
        with pytest.raises(RuntimeError):
            manager.repurpose("s1")

    def test_records_accumulate(self, fig2, sim, manager):
        manager.repurpose("s1")
        sim.run(until=3.0)
        manager.repurpose("s2", hitless=True)
        sim.run(until=6.0)
        assert [r.switch for r in manager.records] == ["s1", "s2"]
        assert manager.records[0].downtime_s == 1.0
        assert manager.records[1].downtime_s == 0.0


class TestScaleOut:
    def test_new_instance_with_copied_state(self, fig2, sim, manager):
        source = fig2.topo.switch("s1")
        program = Stateful("app")
        for _ in range(10):
            program.sketch.update("hot_key")
        source.install_program(program)

        ready = []
        manager.scale_out("app", "s1", "s2", factory=lambda: Stateful("app"),
                          on_ready=ready.append)
        sim.run(until=2.0)
        assert ready == [True]
        assert manager.instances_of("app") == ["s1", "s2"]
        replica = fig2.topo.switch("s2").get_program("app")
        assert replica.sketch.estimate("hot_key") == 10

    def test_scale_out_without_state_copy(self, fig2, sim, manager):
        fig2.topo.switch("s1").install_program(Stateful("app"))
        ready = []
        manager.scale_out("app", "s1", "s3",
                          factory=lambda: Stateful("app"),
                          copy_state=False, on_ready=ready.append)
        assert ready == [True]
        fresh = fig2.topo.switch("s3").get_program("app")
        assert fresh.sketch.total == 0

    def test_missing_source_program_raises(self, fig2, manager):
        with pytest.raises(KeyError):
            manager.scale_out("ghost", "s1", "s2",
                              factory=lambda: Stateful("ghost"))

    def test_validation(self, fig2):
        service = StateTransferService(fig2.topo)
        with pytest.raises(ValueError):
            ScalingManager(fig2.topo, service, reconfig_seconds=-1.0)
