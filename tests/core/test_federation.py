"""Tests for cross-domain federation (§6)."""

import pytest

from repro.core.federation import FederationPeer, apply_watchlist, hash_source
from repro.netsim import (FlowSet, FluidNetwork, Path, figure2_topology,
                          make_flow)


@pytest.fixture
def pair(sim):
    a = FederationPeer("domain_a", sim)
    b = FederationPeer("domain_b", sim)
    a.connect(b)
    return a, b


class TestAdvisories:
    def test_trusted_advisory_populates_watchlist(self, pair, sim):
        a, b = pair
        a.publish("lfa", ["bot0", "bot1"], evidence=5)
        sim.run()
        assert len(b.advisories_accepted) == 1
        assert b.is_watched("bot0") is not None
        assert b.is_watched("client0") is None

    def test_delivery_takes_inter_domain_delay(self, pair, sim):
        a, b = pair
        a.inter_domain_delay_s = 0.2
        a.publish("lfa", ["bot0"], evidence=5)
        sim.run(until=0.1)
        assert b.is_watched("bot0") is None
        sim.run(until=0.3)
        assert b.is_watched("bot0") is not None

    def test_untrusted_origin_rejected(self, sim):
        a = FederationPeer("domain_a", sim)
        b = FederationPeer("domain_b", sim)
        a.connect(b, mutual_trust=False)
        a.publish("lfa", ["bot0"], evidence=5)
        sim.run()
        assert b.advisories_accepted == []
        assert b.advisories_rejected[0][1] == "untrusted_origin"
        assert b.is_watched("bot0") is None

    def test_trust_revocation(self, pair, sim):
        a, b = pair
        b.revoke_trust("domain_a")
        a.publish("lfa", ["bot0"], evidence=5)
        sim.run()
        assert b.is_watched("bot0") is None

    def test_insufficient_evidence_rejected(self, pair, sim):
        a, b = pair
        b.min_evidence = 3
        a.publish("lfa", ["bot0"], evidence=1)
        sim.run()
        assert b.advisories_rejected[0][1] == "insufficient_evidence"

    def test_advisories_carry_hashes_not_addresses(self, pair, sim):
        a, b = pair
        advisory = a.publish("lfa", ["bot0"], evidence=5)
        # Privacy: no raw source identifier appears in the advisory.
        assert "bot0" not in repr(advisory.source_hashes)
        assert advisory.source_hashes == (hash_source("bot0"),)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            FederationPeer("x", sim, inter_domain_delay_s=-1.0)
        with pytest.raises(ValueError):
            FederationPeer("x", sim, min_evidence=0)


class TestWatchlistLifecycle:
    def test_entries_expire(self, pair, sim):
        a, b = pair
        b.watch_ttl_s = 1.0
        a.publish("lfa", ["bot0"], evidence=5)
        sim.run()
        assert b.is_watched("bot0") is not None
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert b.is_watched("bot0") is None

    def test_expire_stale_sweeps(self, pair, sim):
        a, b = pair
        b.watch_ttl_s = 0.5
        a.publish("lfa", ["bot0", "bot1"], evidence=5)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert b.expire_stale() == 2
        assert b.watchlist == {}

    def test_newer_advisory_extends_expiry(self, pair, sim):
        a, b = pair
        b.watch_ttl_s = 1.0
        a.publish("lfa", ["bot0"], evidence=5)
        sim.run()
        first = b.watchlist[hash_source("bot0")].expires_at
        sim.schedule(0.5, a.publish, "lfa", ["bot0"], 5)
        sim.run()
        assert b.watchlist[hash_source("bot0")].expires_at > first


class TestDefenseIntegration:
    def test_watchlist_marks_matching_flows(self, pair, sim):
        a, b = pair
        net = figure2_topology(sim)
        flows = FlowSet()
        attack = flows.add(make_flow(
            "bot0", "decoy0", 1e9, malicious=True,
            path=Path.of(["bot0", "sL", "s1", "sR", "decoy0"])))
        benign = flows.add(make_flow(
            "client0", "victim", 1e9,
            path=Path.of(["client0", "sL", "s1", "sR", "victim"])))
        fluid = FluidNetwork(net.topo, flows)

        a.publish("lfa", ["bot0"], evidence=5)
        sim.run()
        marked = apply_watchlist(b, fluid)
        assert marked == 1
        assert attack.suspicious and attack.suspicion_score >= 0.8
        assert not benign.suspicious

    def test_apply_is_idempotent(self, pair, sim):
        a, b = pair
        net = figure2_topology(sim)
        flows = FlowSet()
        flows.add(make_flow("bot0", "decoy0", 1e9, malicious=True,
                            path=Path.of(["bot0", "sL", "s1", "sR",
                                          "decoy0"])))
        fluid = FluidNetwork(net.topo, flows)
        a.publish("lfa", ["bot0"], evidence=5)
        sim.run()
        assert apply_watchlist(b, fluid) == 1
        assert apply_watchlist(b, fluid) == 0

    def test_cross_domain_attack_mitigated_faster(self, sim):
        """The collaborative scenario: the attack hits domain A first;
        domain B, pre-armed by A's advisory, flags the same bots the
        moment they show up — without waiting out its own thresholds."""
        peer_a = FederationPeer("domain_a", sim)
        peer_b = FederationPeer("domain_b", sim)
        peer_a.connect(peer_b)

        # Domain A confirms its attack at t=1 and publishes.
        sim.schedule(1.0, peer_a.publish, "lfa",
                     ["bot0", "bot1", "bot2"], 6)

        # Domain B's network sees the same bots from t=2.
        net_b = figure2_topology(sim)
        flows_b = FlowSet()
        for index in range(3):
            flows_b.add(make_flow(
                f"bot{index}", "decoy0", 2e9, malicious=True,
                start_time=2.0, sport=index,
                path=Path.of([f"bot{index}", "sL", "s1", "sR",
                              "decoy0"])))
        fluid_b = FluidNetwork(net_b.topo, flows_b)
        marked_at = {}

        def consult():
            if apply_watchlist(peer_b, fluid_b) and not marked_at:
                marked_at["t"] = sim.now

        sim.every(0.05, consult)
        sim.run(until=4.0)
        # Flagged within one consultation period of the flows appearing,
        # far faster than the local persistence threshold would allow.
        assert marked_at["t"] == pytest.approx(2.05, abs=0.06)
        assert all(f.suspicious for f in flows_b.malicious())
