"""Tests for the FastFlex controller and GatedProgram wiring."""

import pytest

from repro.boosters import build_figure2_defense
from repro.core import Booster, BoosterRegistry, GatedProgram
from repro.dataplane import ResourceVector
from repro.netsim import FlowSet, FluidNetwork, GBPS, make_flow


class TestSetup:
    def make_deployment(self, fig2):
        flows = FlowSet()
        for index, client in enumerate(fig2.client_hosts):
            flows.add(make_flow(client, fig2.victim, 1.5 * GBPS,
                                sport=50_000 + index))
        fluid = FluidNetwork(fig2.topo, flows)
        defense = build_figure2_defense(fig2, fluid)
        deployment = defense.setup(flows)
        return defense, deployment, flows

    def test_te_assigns_every_flow(self, fig2):
        defense, deployment, flows = self.make_deployment(fig2)
        assert all(f.path is not None for f in flows)
        assert deployment.te.max_utilization <= 1.0

    def test_mode_agents_on_every_switch(self, fig2):
        defense, deployment, flows = self.make_deployment(fig2)
        assert set(deployment.mode_agents) == set(fig2.topo.switch_names)
        for name in fig2.topo.switch_names:
            assert fig2.topo.switch(name).has_program("fastflex.mode_agent")

    def test_placement_instantiated_on_switches(self, fig2):
        defense, deployment, flows = self.make_deployment(fig2)
        for switch_name, specs in deployment.placement.assignments.items():
            switch = fig2.topo.switch(switch_name)
            for spec in specs:
                if spec.factory is not None:
                    assert switch.has_program(spec.qualified_name), (
                        f"{spec.qualified_name} missing on {switch_name}")

    def test_composite_mode_registered(self, fig2):
        defense, deployment, flows = self.make_deployment(fig2)
        spec = deployment.mode_registry.get("lfa", "lfa_mitigate")
        assert spec.boosters_on == frozenset({"reroute", "dropper",
                                              "obfuscation"})

    def test_detector_is_always_on(self, fig2):
        defense, deployment, flows = self.make_deployment(fig2)
        assert "lfa_detector" in deployment.mode_registry.always_on
        agent = deployment.agent("sL")
        assert agent.mode_table.booster_enabled("lfa_detector")
        assert not agent.mode_table.booster_enabled("reroute")

    def test_state_service_and_scaling_available(self, fig2):
        defense, deployment, flows = self.make_deployment(fig2)
        assert deployment.state_service is not None
        assert deployment.scaling is not None
        assert fig2.topo.switch("s3").has_program("fastflex.state_agent")

    def test_unknown_agent_lookup_raises(self, fig2):
        defense, deployment, flows = self.make_deployment(fig2)
        with pytest.raises(KeyError):
            deployment.agent("ghost")


class TestBoosterRegistry:
    class Dummy(Booster):
        name = "dummy"

        def dataflow(self):
            from repro.core import DataflowGraph
            return DataflowGraph(self.name)

    def test_register_and_get(self):
        registry = BoosterRegistry()
        booster = registry.register(self.Dummy())
        assert registry.get("dummy") is booster
        assert "dummy" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = BoosterRegistry()
        registry.register(self.Dummy())
        with pytest.raises(ValueError):
            registry.register(self.Dummy())

    def test_nameless_rejected(self):
        registry = BoosterRegistry()
        nameless = self.Dummy()
        nameless.name = ""
        with pytest.raises(ValueError):
            registry.register(nameless)

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            BoosterRegistry().get("ghost")


class TestGatedProgram:
    class Gate(GatedProgram):
        def __init__(self):
            super().__init__("some_booster", "gate",
                             ResourceVector.zero())
            self.hits = 0

        def process_enabled(self, switch, packet):
            self.hits += 1
            return None

    def test_enabled_without_mode_agent(self, fig2, sim):
        from repro.netsim import Packet
        gate = self.Gate()
        fig2.topo.switch("sL").install_program(gate)
        fig2.topo.host("client0").originate(
            Packet(src="client0", dst="victim"))
        sim.run()
        assert gate.hits == 1

    def test_gated_by_mode_table(self, fig2, sim):
        from repro.core import ModeRegistry, ModeSpec, install_mode_agents
        from repro.netsim import Packet
        registry = ModeRegistry()
        registry.register(ModeSpec.of("on_mode", "x",
                                      boosters_on=("some_booster",)))
        agents = install_mode_agents(fig2.topo, registry)
        gate = self.Gate()
        fig2.topo.switch("sL").install_program(gate)

        fig2.topo.host("client0").originate(
            Packet(src="client0", dst="victim"))
        sim.run()
        assert gate.hits == 0  # default mode: booster off

        agents["sL"].initiate("x", "on_mode")
        sim.run(until=sim.now + 0.5)
        fig2.topo.host("client0").originate(
            Packet(src="client0", dst="victim"))
        sim.run(until=sim.now + 0.5)
        assert gate.hits == 1
