"""Tests for the multimode abstraction: registry, tables, event bus."""

import pytest

from repro.core import (DEFAULT_MODE, ModeChangeEvent, ModeEventBus,
                        ModeRegistry, ModeSpec, ModeTable)


@pytest.fixture
def registry():
    reg = ModeRegistry()
    reg.register(ModeSpec.of("lfa_mitigate", "lfa",
                             boosters_on=("reroute", "dropper")))
    reg.register(ModeSpec.of("lfa_aggressive", "lfa",
                             boosters_on=("dropper",), priority=5))
    reg.register(ModeSpec.of("ddos_filter", "ddos",
                             boosters_on=("hh_filter",)))
    reg.always_on.add("detector")
    return reg


class TestRegistry:
    def test_duplicate_mode_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register(ModeSpec.of("lfa_mitigate", "lfa", ()))

    def test_default_mode_is_implicit(self, registry):
        with pytest.raises(ValueError):
            registry.register(ModeSpec.of(DEFAULT_MODE, "lfa", ()))
        spec = registry.get("lfa", DEFAULT_MODE)
        assert spec.boosters_on == frozenset()

    def test_unknown_mode_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get("lfa", "ghost_mode")

    def test_attack_types_listed(self, registry):
        assert registry.attack_types() == ["ddos", "lfa"]

    def test_modes_for_sorted_by_priority(self, registry):
        modes = registry.modes_for("lfa")
        assert [m.name for m in modes] == ["lfa_mitigate",
                                           "lfa_aggressive"]


class TestModeTable:
    def test_starts_in_default(self, registry):
        table = ModeTable(registry)
        assert table.mode_for("lfa") == DEFAULT_MODE
        assert table.epoch_for("lfa") == 0
        assert table.active_modes() == {}

    def test_apply_newer_epoch_wins(self, registry):
        table = ModeTable(registry)
        assert table.apply("lfa", "lfa_mitigate", 1)
        assert table.mode_for("lfa") == "lfa_mitigate"
        assert not table.apply("lfa", "lfa_mitigate", 1)  # duplicate
        assert not table.apply("lfa", DEFAULT_MODE, 0)    # stale

    def test_epochs_monotone(self, registry):
        table = ModeTable(registry)
        table.apply("lfa", "lfa_mitigate", 3)
        table.apply("lfa", DEFAULT_MODE, 7)
        assert table.epoch_for("lfa") == 7
        assert not table.apply("lfa", "lfa_mitigate", 5)
        assert table.mode_for("lfa") == DEFAULT_MODE

    def test_equal_epoch_resolved_by_priority(self, registry):
        a = ModeTable(registry)
        b = ModeTable(registry)
        # Two concurrent epoch-1 updates in opposite orders must converge.
        a.apply("lfa", "lfa_mitigate", 1)
        a.apply("lfa", "lfa_aggressive", 1)
        b.apply("lfa", "lfa_aggressive", 1)
        b.apply("lfa", "lfa_mitigate", 1)
        assert a.mode_for("lfa") == b.mode_for("lfa") == "lfa_aggressive"

    def test_attack_types_independent(self, registry):
        table = ModeTable(registry)
        table.apply("lfa", "lfa_mitigate", 1)
        table.apply("ddos", "ddos_filter", 1)
        assert table.active_modes() == {"lfa": "lfa_mitigate",
                                        "ddos": "ddos_filter"}

    def test_booster_gating(self, registry):
        table = ModeTable(registry)
        assert table.booster_enabled("detector")       # always on
        assert not table.booster_enabled("reroute")
        table.apply("lfa", "lfa_mitigate", 1)
        assert table.booster_enabled("reroute")
        assert table.booster_enabled("dropper")
        assert not table.booster_enabled("hh_filter")
        table.apply("lfa", DEFAULT_MODE, 2)
        assert not table.booster_enabled("reroute")

    def test_unknown_mode_rejected_on_apply(self, registry):
        table = ModeTable(registry)
        with pytest.raises(KeyError):
            table.apply("lfa", "nonexistent", 1)

    def test_listeners_see_transitions(self, registry):
        table = ModeTable(registry)
        events = []
        table.on_change(lambda *args: events.append(args))
        table.apply("lfa", "lfa_mitigate", 1)
        table.apply("lfa", DEFAULT_MODE, 2)
        assert events == [("lfa", DEFAULT_MODE, "lfa_mitigate", 1),
                          ("lfa", "lfa_mitigate", DEFAULT_MODE, 2)]

    def test_next_epoch(self, registry):
        table = ModeTable(registry)
        assert table.next_epoch("lfa") == 1
        table.apply("lfa", "lfa_mitigate", 4)
        assert table.next_epoch("lfa") == 5


class TestEventBus:
    def event(self, t, switch, mode, epoch=1, attack="lfa"):
        return ModeChangeEvent(time=t, switch=switch, attack_type=attack,
                               old_mode=DEFAULT_MODE, new_mode=mode,
                               epoch=epoch)

    def test_switches_in_mode_uses_latest(self):
        bus = ModeEventBus()
        bus.publish(self.event(1.0, "s1", "lfa_mitigate"))
        bus.publish(self.event(2.0, "s1", DEFAULT_MODE, epoch=2))
        bus.publish(self.event(1.5, "s2", "lfa_mitigate"))
        assert bus.switches_in_mode("lfa", "lfa_mitigate") == {"s2"}

    def test_first_activation(self):
        bus = ModeEventBus()
        bus.publish(self.event(1.0, "s1", "lfa_mitigate"))
        bus.publish(self.event(2.0, "s2", "lfa_mitigate"))
        first = bus.first_activation("lfa", "lfa_mitigate")
        assert first.switch == "s1"
        assert bus.first_activation("ddos", "x") is None

    def test_subscribers_notified(self):
        bus = ModeEventBus()
        seen = []
        bus.subscribe(seen.append)
        event = self.event(1.0, "s1", "lfa_mitigate")
        bus.publish(event)
        assert seen == [event]
