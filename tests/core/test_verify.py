"""Tests for the §6 booster verifier."""


from repro.boosters import logic_ppm, parser_ppm
from repro.core import Booster, DataflowGraph, ModeSpec, PpmRole
from repro.core.verify import (BoosterVerifier, Severity,
                               VerificationReport, verify_catalog)
from repro.dataplane import ResourceVector
from repro.experiments.figure1 import booster_suite


class MadeUpBooster(Booster):
    """Configurable test booster."""

    def __init__(self, name="made_up", graph=None, modes=(),
                 attack_types=("x",), always=False):
        self.name = name
        self.attack_types = tuple(attack_types)
        self._graph = graph
        self._modes = list(modes)
        self._always = always

    def dataflow(self):
        if self._graph is None:
            graph = DataflowGraph(self.name)
            graph.add_ppm(parser_ppm(self.name, "parser", base=("src",)))
            graph.add_ppm(logic_ppm(self.name, "detect",
                                    PpmRole.DETECTION,
                                    ResourceVector(stages=1)))
            graph.add_ppm(logic_ppm(self.name, "act", PpmRole.MITIGATION,
                                    ResourceVector(stages=1)))
            graph.add_edge("parser", "detect", weight=1)
            graph.add_edge("detect", "act", weight=1)
            return graph
        return self._graph

    def modes(self):
        return list(self._modes)

    def always_on(self):
        return self._always


class TestPerBooster:
    def test_well_formed_booster_is_clean(self):
        report = BoosterVerifier().verify_booster(MadeUpBooster())
        assert report.ok
        # Planning-only logic modules draw a runtime warning, nothing else.
        assert all(f.check == "runtime" for f in report.findings)

    def test_real_catalog_verifies_without_errors(self):
        report = verify_catalog(booster_suite(), n_switches=8)
        assert report.ok, str(report)

    def test_empty_dataflow_is_an_error(self):
        booster = MadeUpBooster(graph=DataflowGraph("empty"))
        report = BoosterVerifier().verify_booster(booster)
        assert not report.ok
        assert any(f.check == "dataflow" for f in report.errors)

    def test_cycle_is_an_error(self):
        graph = DataflowGraph("b")
        graph.add_ppm(logic_ppm("b", "x", PpmRole.DETECTION,
                                ResourceVector(stages=1)))
        graph.add_ppm(logic_ppm("b", "y", PpmRole.MITIGATION,
                                ResourceVector(stages=1)))
        graph.add_edge("x", "y", weight=1)
        graph.add_edge("y", "x", weight=1)
        report = BoosterVerifier().verify_booster(
            MadeUpBooster(name="b", graph=graph))
        assert not report.ok

    def test_unreachable_mitigation_warns(self):
        graph = DataflowGraph("b")
        graph.add_ppm(logic_ppm("b", "detect", PpmRole.DETECTION,
                                ResourceVector(stages=1)))
        graph.add_ppm(logic_ppm("b", "orphan", PpmRole.MITIGATION,
                                ResourceVector(stages=1)))
        report = BoosterVerifier().verify_booster(
            MadeUpBooster(name="b", graph=graph))
        assert report.ok  # warning, not error
        assert any(f.check == "reachability" for f in report.warnings)

    def test_oversized_module_is_an_error(self):
        graph = DataflowGraph("b")
        graph.add_ppm(logic_ppm("b", "huge", PpmRole.DETECTION,
                                ResourceVector(stages=1000)))
        report = BoosterVerifier().verify_booster(
            MadeUpBooster(name="b", graph=graph))
        assert any(f.check == "resources" for f in report.errors)

    def test_negative_requirement_is_an_error(self):
        graph = DataflowGraph("b")
        graph.add_ppm(logic_ppm("b", "neg", PpmRole.DETECTION,
                                ResourceVector(stages=-1)))
        report = BoosterVerifier().verify_booster(
            MadeUpBooster(name="b", graph=graph))
        assert not report.ok

    def test_defining_default_mode_is_an_error(self):
        booster = MadeUpBooster(
            modes=[ModeSpec.of("legit", "x", ("made_up",))])
        clean = BoosterVerifier().verify_booster(booster)
        assert clean.ok
        # ModeSpec.of refuses "default" at registration; simulate a
        # hand-rolled spec.
        from repro.core.modes import ModeSpec as RawSpec
        bad = MadeUpBooster(modes=[RawSpec("default", "x",
                                           frozenset({"made_up"}))])
        report = BoosterVerifier().verify_booster(bad)
        assert any(f.check == "modes" for f in report.errors)

    def test_raising_dataflow_reported(self):
        class Exploding(MadeUpBooster):
            def dataflow(self):
                raise RuntimeError("boom")

        report = BoosterVerifier().verify_booster(Exploding())
        assert not report.ok


class TestComposition:
    def test_duplicate_names_rejected(self):
        report = BoosterVerifier().verify_composition(
            [MadeUpBooster(), MadeUpBooster()])
        assert any(f.check == "composition" for f in report.errors)

    def test_duplicate_mode_across_boosters_rejected(self):
        a = MadeUpBooster(name="a",
                          modes=[ModeSpec.of("m", "x", ("a",))])
        b = MadeUpBooster(name="b",
                          modes=[ModeSpec.of("m", "x", ("b",))])
        report = BoosterVerifier().verify_composition([a, b])
        assert not report.ok

    def test_mode_gating_unknown_booster_rejected(self):
        a = MadeUpBooster(name="a",
                          modes=[ModeSpec.of("m", "x", ("ghost",))])
        report = BoosterVerifier().verify_composition([a])
        assert not report.ok

    def test_submodule_gates_resolve_to_owner(self):
        # heavy_hitter.filter gates a sub-program; the owner exists.
        from repro.boosters import HeavyHitterBooster
        report = BoosterVerifier().verify_composition(
            [HeavyHitterBooster()])
        assert report.ok, str(report)

    def test_capacity_warning_when_catalog_too_big(self):
        report = BoosterVerifier().verify_composition(booster_suite(),
                                                      n_switches=1)
        assert report.ok  # warnings only
        assert any(f.check == "capacity" for f in report.warnings)

    def test_report_formatting(self):
        report = VerificationReport()
        assert str(report) == "verification clean"
        report.add(Severity.WARNING, "b", "x", "msg")
        assert "warning" in str(report)
