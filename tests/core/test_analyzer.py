"""Tests for the joint program analyzer (Figure 1a -> 1b)."""

import pytest

from repro.boosters import logic_ppm, parser_ppm, sketch_ppm
from repro.core import DataflowGraph, PpmRole, ProgramAnalyzer
from repro.dataplane import ResourceVector


def booster_graph(booster, sketch_width=1024):
    graph = DataflowGraph(booster)
    graph.add_ppm(parser_ppm(booster, "parser", base=("src", "dst")))
    graph.add_ppm(sketch_ppm(booster, "sketch", width=sketch_width))
    graph.add_ppm(logic_ppm(booster, "verdict", PpmRole.MITIGATION,
                            ResourceVector(stages=1)))
    graph.add_edge("parser", "sketch", weight=13)
    graph.add_edge("sketch", "verdict", weight=32)
    return graph


class TestMerging:
    def test_equivalent_sketches_collapse(self):
        analyzer = ProgramAnalyzer()
        merged = analyzer.merge([booster_graph("a"), booster_graph("b")])
        # 6 PPMs in, 4 out: shared parser + shared sketch + 2 logics.
        assert merged.report.total_ppms_before == 6
        assert merged.report.total_ppms_after == 4
        assert merged.report.shared_groups == 2

    def test_different_sketches_stay_separate(self):
        analyzer = ProgramAnalyzer()
        merged = analyzer.merge([booster_graph("a", sketch_width=64),
                                 booster_graph("b", sketch_width=128)])
        names = {s.qualified_name for s in merged.merged.ppms()}
        assert "a.sketch" in names and "b.sketch" in names

    def test_mapping_points_members_to_shared_node(self):
        merged = ProgramAnalyzer().merge([booster_graph("a"),
                                          booster_graph("b")])
        shared_node = merged.merged_name("a.sketch")
        assert merged.merged_name("b.sketch") == shared_node
        assert shared_node.startswith("shared.")
        assert sorted(merged.members_of(shared_node)) == \
            ["a.sketch", "b.sketch"]

    def test_unknown_original_raises(self):
        merged = ProgramAnalyzer().merge([booster_graph("a")])
        with pytest.raises(KeyError):
            merged.merged_name("ghost.module")

    def test_edges_remapped_and_weights_summed(self):
        merged = ProgramAnalyzer().merge([booster_graph("a"),
                                          booster_graph("b")])
        parser_node = merged.merged_name("a.parser")
        sketch_node = merged.merged_name("a.sketch")
        edge = merged.merged.edge(parser_node, sketch_node)
        assert edge is not None
        assert edge.weight == 26  # two collapsed 13-weight edges

    def test_resource_savings_reported(self):
        merged = ProgramAnalyzer().merge([booster_graph("a"),
                                          booster_graph("b")])
        savings = merged.report.savings
        assert savings.stages > 0
        assert savings.sram_mb > 0

    def test_requires_nonempty_input(self):
        with pytest.raises(ValueError):
            ProgramAnalyzer().merge([])
        with pytest.raises(ValueError):
            ProgramAnalyzer().merge([DataflowGraph("empty")])


class TestParserHandling:
    def test_all_parsers_merge_to_union(self):
        a = DataflowGraph("a")
        a.add_ppm(parser_ppm("a", "parser", base=("src",)))
        b = DataflowGraph("b")
        b.add_ppm(parser_ppm("b", "parser", base=("dst",), custom=("x",)))
        merged = ProgramAnalyzer(merge_all_parsers=True).merge([a, b])
        parsers = [s for s in merged.merged.ppms()
                   if s.qualified_name.startswith("shared.")]
        assert len(parsers) == 1
        assert set(parsers[0].params["base_fields"]) == {"src", "dst"}

    def test_strict_mode_only_merges_equal_parsers(self):
        a = DataflowGraph("a")
        a.add_ppm(parser_ppm("a", "parser", base=("src",)))
        b = DataflowGraph("b")
        b.add_ppm(parser_ppm("b", "parser", base=("dst",)))
        merged = ProgramAnalyzer(merge_all_parsers=False).merge([a, b])
        assert merged.report.total_ppms_after == 2

    def test_module_table_lists_merged_modules(self):
        merged = ProgramAnalyzer().merge([booster_graph("a")])
        table = merged.report.module_table(merged)
        names = [row[0] for row in table]
        assert len(table) == len(merged.merged)
        assert any("sketch" in name for name in names)
