"""Tests for distributed detector synchronization (§3.3)."""

import pytest

from repro.core import DetectorSyncAgent


def install_agents(fig2, switches, sources, sync_period_s=0.1, top_k=32):
    agents = {}
    for name in switches:
        agent = DetectorSyncAgent(
            source=sources[name],
            peers=[s for s in switches if s != name],
            sync_period_s=sync_period_s, top_k=top_k,
            name=f"sync.{name}")
        fig2.topo.switch(name).install_program(agent)
        agents[name] = agent
    return agents


class TestDigestExchange:
    def test_views_merge_by_sum(self, fig2, sim):
        counters = {"sL": lambda: {"tenantA": 10.0},
                    "sR": lambda: {"tenantA": 5.0, "tenantB": 2.0}}
        agents = install_agents(fig2, ["sL", "sR"], counters)
        sim.run(until=0.5)
        view = agents["sL"].global_view()
        assert view["tenantA"] == pytest.approx(15.0)
        assert view["tenantB"] == pytest.approx(2.0)

    def test_multi_hop_peers_reachable(self, fig2, sim):
        # sL and s4 are not adjacent; digests must route through.
        counters = {"sL": lambda: {"k": 1.0}, "s4": lambda: {"k": 2.0}}
        agents = install_agents(fig2, ["sL", "s4"], counters)
        sim.run(until=0.5)
        assert agents["s4"].global_view()["k"] == pytest.approx(3.0)

    def test_exchange_is_periodic(self, fig2, sim):
        counters = {"sL": lambda: {"k": 1.0}, "sR": lambda: {"k": 1.0}}
        agents = install_agents(fig2, ["sL", "sR"], counters,
                                sync_period_s=0.1)
        sim.run(until=1.05)
        assert agents["sL"].stats.digests_sent == 10
        assert agents["sL"].stats.digests_received == 10


class TestGlobalDetection:
    def test_exceeders_only_visible_globally(self, fig2, sim):
        # Each locality sees 6; the global limit of 10 is only crossed
        # when views combine — the [62] global rate limit scenario.
        counters = {"sL": lambda: {"tenant": 6.0},
                    "sR": lambda: {"tenant": 6.0}}
        agents = install_agents(fig2, ["sL", "sR"], counters)
        agent = agents["sL"]
        assert agent.source()["tenant"] < 10.0
        sim.run(until=0.5)
        assert agent.global_exceeders(10.0) == {"tenant": 12.0}

    def test_under_threshold_not_flagged(self, fig2, sim):
        counters = {"sL": lambda: {"tenant": 3.0},
                    "sR": lambda: {"tenant": 3.0}}
        agents = install_agents(fig2, ["sL", "sR"], counters)
        sim.run(until=0.5)
        assert agents["sL"].global_exceeders(10.0) == {}


class TestStaleness:
    def test_stale_views_dropped(self, fig2, sim):
        emitted = {"on": True}

        def source_sr():
            return {"k": 5.0} if emitted["on"] else {}

        counters = {"sL": lambda: {"k": 1.0}, "sR": source_sr}
        agents = install_agents(fig2, ["sL", "sR"], counters,
                                sync_period_s=0.1)
        sim.run(until=0.3)
        assert agents["sL"].global_view()["k"] == pytest.approx(6.0)
        # sR stops reporting; after the staleness bound only local counts
        # remain. (Empty digests still arrive, overwriting the old view.)
        emitted["on"] = False
        sim.run(until=1.0)
        assert agents["sL"].global_view()["k"] == pytest.approx(1.0)


class TestOverheadControl:
    def test_digest_truncated_to_top_k(self, fig2, sim):
        big = {f"key{i}": float(i) for i in range(100)}
        counters = {"sL": lambda: dict(big), "sR": lambda: {}}
        agents = install_agents(fig2, ["sL", "sR"], counters, top_k=8)
        sim.run(until=0.15)
        assert agents["sL"].stats.entries_truncated > 0
        remote = agents["sR"]._remote_views["sL"][1]
        assert len(remote) == 8
        assert "key99" in remote  # the heaviest entries survive

    def test_bytes_accounting(self, fig2, sim):
        counters = {"sL": lambda: {"k": 1.0}, "sR": lambda: {}}
        agents = install_agents(fig2, ["sL", "sR"], counters)
        sim.run(until=0.5)
        assert agents["sL"].stats.bytes_sent > 0

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            DetectorSyncAgent(source=dict, peers=[], sync_period_s=0.0)
        with pytest.raises(ValueError):
            DetectorSyncAgent(source=dict, peers=[], top_k=0)
