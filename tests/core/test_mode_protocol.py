"""Tests for the distributed mode-change protocol (§3.3)."""

import pytest

from repro.core import (DEFAULT_MODE, ModeEventBus, ModeRegistry, ModeSpec,
                        StabilityGuard, install_mode_agents)
from repro.netsim import abilene_like, figure2_topology


@pytest.fixture
def deployment(sim):
    net = figure2_topology(sim)
    registry = ModeRegistry()
    registry.register(ModeSpec.of("mitigate", "lfa", boosters_on=("m",)))
    bus = ModeEventBus()
    agents = install_mode_agents(net.topo, registry, bus=bus)
    return net, registry, bus, agents


class TestPropagation:
    def test_change_reaches_every_switch(self, deployment, sim):
        net, registry, bus, agents = deployment
        assert agents["s1"].initiate("lfa", "mitigate")
        sim.run(until=1.0)
        for name, agent in agents.items():
            assert agent.mode_table.mode_for("lfa") == "mitigate", name

    def test_propagation_is_rtt_scale(self, deployment, sim):
        net, registry, bus, agents = deployment
        sim.schedule(1.0, agents["s1"].initiate, "lfa", "mitigate")
        sim.run(until=2.0)
        last = max(e.time for e in bus.events)
        # Link delays are 1-2 ms; the farthest switch is a few hops away.
        assert last - 1.0 < 0.02

    def test_epoch_dedup_bounds_flooding(self, deployment, sim):
        net, registry, bus, agents = deployment
        agents["s1"].initiate("lfa", "mitigate")
        # Observe before the first 0.5 s re-advertisement wave.
        sim.run(until=0.4)
        # Each switch applies the change exactly once.
        assert all(agent.mode_table.changes_applied == 1
                   for agent in agents.values())
        total_probes = sum(agent.probes_sent for agent in agents.values())
        # Flooding re-emits once per forwarding switch, not per receipt.
        n_links = len(net.topo.duplex_pairs())
        assert total_probes <= 2 * n_links + len(agents)

    def test_readvertisement_repairs_lost_probes(self, deployment, sim):
        """A switch cut off during the initial flood converges on the
        next refresh wave — mode probes are loss-tolerant."""
        net, registry, bus, agents = deployment
        # Isolate s6 while the first flood happens.
        for neighbor in list(net.topo.switch("s6").links):
            net.topo.link(neighbor, "s6").set_down()
        agents["s1"].initiate("lfa", "mitigate")
        sim.run(until=0.3)
        assert agents["s6"].mode_table.mode_for("lfa") == DEFAULT_MODE
        # Links heal; the initiator's periodic refresh reaches s6.
        for neighbor in list(net.topo.switch("s6").links):
            net.topo.link(neighbor, "s6").set_up()
        sim.run(until=2.0)
        assert agents["s6"].mode_table.mode_for("lfa") == "mitigate"

    def test_default_refresh_is_bounded(self, deployment, sim):
        net, registry, bus, agents = deployment
        agents["s1"].initiate("lfa", "mitigate")
        sim.run(until=0.3)
        agents["s1"].initiate("lfa", DEFAULT_MODE)
        sim.run(until=10.0)
        # The default-mode refresh stops after its bounded rounds.
        assert "lfa" not in agents["s1"]._owned

    def test_deactivation_propagates_too(self, deployment, sim):
        net, registry, bus, agents = deployment
        agents["s1"].initiate("lfa", "mitigate")
        sim.run(until=0.5)
        agents["s1"].initiate("lfa", DEFAULT_MODE)
        sim.run(until=1.0)
        assert all(agent.mode_table.mode_for("lfa") == DEFAULT_MODE
                   for agent in agents.values())

    def test_concurrent_initiators_converge(self, deployment, sim):
        net, registry, bus, agents = deployment
        sim.schedule(0.0, agents["s1"].initiate, "lfa", "mitigate")
        sim.schedule(0.0, agents["s6"].initiate, "lfa", "mitigate")
        sim.run(until=1.0)
        modes = {agent.mode_table.mode_for("lfa")
                 for agent in agents.values()}
        assert modes == {"mitigate"}


class TestScoping:
    def test_scope_limits_radius(self, sim):
        topo = abilene_like(sim)
        registry = ModeRegistry()
        registry.register(ModeSpec.of("mitigate", "lfa", ()))
        agents = install_mode_agents(topo, registry)
        agents["sw_seattle"].initiate("lfa", "mitigate", scope=2)
        sim.run(until=1.0)
        affected = {name for name, agent in agents.items()
                    if agent.mode_table.mode_for("lfa") == "mitigate"}
        assert "sw_seattle" in affected
        assert "sw_sunnyvale" in affected  # 1 hop
        assert "sw_washington" not in affected  # far coast
        assert len(affected) < len(agents)

    def test_network_wide_scope_covers_everything(self, sim):
        topo = abilene_like(sim)
        registry = ModeRegistry()
        registry.register(ModeSpec.of("mitigate", "lfa", ()))
        agents = install_mode_agents(topo, registry)
        agents["sw_seattle"].initiate("lfa", "mitigate")
        sim.run(until=1.0)
        assert all(agent.mode_table.mode_for("lfa") == "mitigate"
                   for agent in agents.values())


class TestGuardIntegration:
    def test_guard_suppresses_rapid_reinitiation(self, sim):
        net = figure2_topology(sim)
        registry = ModeRegistry()
        registry.register(ModeSpec.of("mitigate", "lfa", ()))
        guard = StabilityGuard(min_dwell_s=10.0)
        agents = install_mode_agents(net.topo, registry,
                                     guard_factory=lambda _: guard)
        agent = agents["s1"]
        assert agent.initiate("lfa", "mitigate")
        sim.run(until=0.5)
        assert not agent.initiate("lfa", DEFAULT_MODE)  # dwell not served
        assert agent.changes_suppressed == 1

    def test_uninstalled_agent_cannot_initiate(self):
        registry = ModeRegistry()
        registry.register(ModeSpec.of("mitigate", "lfa", ()))
        from repro.core import ModeChangeAgent
        agent = ModeChangeAgent(registry)
        with pytest.raises(RuntimeError):
            agent.initiate("lfa", "mitigate")


class TestStateExport:
    def test_epochs_survive_export_import(self, deployment, sim):
        net, registry, bus, agents = deployment
        agents["s1"].initiate("lfa", "mitigate")
        sim.run(until=0.5)
        state = agents["s2"].export_state()
        from repro.core import ModeChangeAgent
        fresh = ModeChangeAgent(registry)
        fresh.import_state(state)
        assert fresh.mode_table.mode_for("lfa") == "mitigate"
        assert fresh.mode_table.epoch_for("lfa") == \
            agents["s2"].mode_table.epoch_for("lfa")
