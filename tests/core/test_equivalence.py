"""Tests for PPM functional-equivalence detection."""

import pytest

from repro.boosters import flow_table_ppm, parser_ppm, sketch_ppm
from repro.core import (EquivalenceClasses, equivalent, merge_parsers,
                        parser_covers)


class TestEquivalent:
    def test_same_function_different_authors(self):
        # Two boosters wrote "the same sketch" with different names and
        # different internal style: FastFlex must recognize them.
        a = sketch_ppm("heavy_hitter", "byteCounter", width=1024, depth=4,
                       coding_style="tofino_macros")
        b = sketch_ppm("ddos_guard", "pkt_count_sketch", width=1024,
                       depth=4, coding_style="handwritten")
        assert equivalent(a, b)

    def test_different_parameters_not_equivalent(self):
        a = sketch_ppm("x", "s", width=1024, depth=4)
        b = sketch_ppm("y", "s", width=2048, depth=4)
        assert not equivalent(a, b)

    def test_different_kinds_not_equivalent(self):
        a = sketch_ppm("x", "s", width=1024)
        b = flow_table_ppm("y", "s", capacity=1024)
        assert not equivalent(a, b)

    def test_flow_tables_compare_key_fields(self):
        five = flow_table_ppm("x", "t", capacity=1024,
                              key_fields=("src", "dst"))
        five_again = flow_table_ppm("y", "conn", capacity=1024,
                                    key_fields=("dst", "src"))
        per_src = flow_table_ppm("z", "t", capacity=1024,
                                 key_fields=("src",))
        assert equivalent(five, five_again)
        assert not equivalent(five, per_src)


class TestParsers:
    def test_exact_field_equality(self):
        a = parser_ppm("x", "p", base=("src", "dst"))
        b = parser_ppm("y", "q", base=("dst", "src"))
        assert equivalent(a, b)

    def test_parser_covers_subset(self):
        big = parser_ppm("x", "p", base=("src", "dst", "ttl"))
        small = parser_ppm("y", "q", base=("src",))
        assert parser_covers(big, small)
        assert not parser_covers(small, big)

    def test_covers_requires_parsers(self):
        sketch = sketch_ppm("x", "s")
        parser = parser_ppm("y", "p", base=("src",))
        assert not parser_covers(sketch, parser)

    def test_merge_parsers_union(self):
        a = parser_ppm("x", "p", base=("src",), custom=("epoch",))
        b = parser_ppm("y", "q", base=("dst",))
        merged = merge_parsers([a, b])
        assert set(merged.params["base_fields"]) == {"src", "dst"}
        assert set(merged.params["custom_fields"]) == {"epoch"}
        assert merged.booster == "shared"

    def test_merge_requires_parsers(self):
        with pytest.raises(ValueError):
            merge_parsers([sketch_ppm("x", "s")])
        with pytest.raises(ValueError):
            merge_parsers([])


class TestPartition:
    def test_groups_by_signature(self):
        specs = [
            sketch_ppm("a", "s1", width=64, depth=2),
            sketch_ppm("b", "s2", width=64, depth=2),
            sketch_ppm("c", "s3", width=128, depth=2),
        ]
        classes = EquivalenceClasses.partition(specs)
        assert len(classes) == 2
        shared = classes.shareable()
        assert len(shared) == 1
        assert {s.booster for s in shared[0]} == {"a", "b"}

    def test_savings_counts_duplicates_only(self):
        specs = [
            sketch_ppm("a", "s", width=64, depth=2),
            sketch_ppm("b", "s", width=64, depth=2),
            sketch_ppm("c", "s", width=64, depth=2),
        ]
        classes = EquivalenceClasses.partition(specs)
        savings = classes.savings()
        single = specs[0].requirement
        assert savings.stages == pytest.approx(2 * single.stages)

    def test_no_duplicates_no_savings(self):
        specs = [sketch_ppm("a", "s", width=64),
                 sketch_ppm("b", "s", width=128)]
        classes = EquivalenceClasses.partition(specs)
        assert classes.shareable() == []
        assert classes.savings().stages == 0

    def test_representative_is_first_seen(self):
        first = sketch_ppm("a", "s", width=64)
        second = sketch_ppm("b", "s", width=64)
        classes = EquivalenceClasses.partition([first, second])
        assert classes.representative(first.signature()) is first
