"""Refinement check: equal signatures really do mean equal behaviour.

The analyzer's sharing decision rests on the claim that two PPM
declarations with equal semantic signatures compute the same function.
These hypothesis tests *run* structures built from signature-equal
declarations against random workloads and assert observably identical
outputs — the dynamic counterpart of the [24]-style static equivalence.
"""

from hypothesis import given, settings, strategies as st

from repro.boosters import bloom_ppm, hashpipe_ppm, sketch_ppm
from repro.core import equivalent
from repro.dataplane import BloomFilter, CountMinSketch, HashPipe

keys = st.integers(0, 200)
counts = st.integers(1, 50)


def build_sketch(spec):
    params = dict(spec.params)
    return CountMinSketch(spec.qualified_name, width=params["width"],
                          depth=params["depth"])


def build_bloom(spec):
    params = dict(spec.params)
    return BloomFilter(spec.qualified_name, size_bits=params["size_bits"],
                       n_hashes=params["n_hashes"])


def build_pipe(spec):
    params = dict(spec.params)
    return HashPipe(spec.qualified_name, stages=params["stages"],
                    slots_per_stage=params["slots_per_stage"])


class TestRefinement:
    @settings(max_examples=25, deadline=None)
    @given(workload=st.lists(st.tuples(keys, counts), max_size=150))
    def test_equivalent_sketches_behave_identically(self, workload):
        alice = sketch_ppm("alice", "cnt", width=128, depth=3,
                           style="macros")
        bob = sketch_ppm("bob", "byte_counter", width=128, depth=3,
                         style="handwritten")
        assert equivalent(alice, bob)
        a, b = build_sketch(alice), build_sketch(bob)
        for key, count in workload:
            a.update(key, count)
            b.update(key, count)
        for key in range(0, 201, 7):
            assert a.estimate(key) == b.estimate(key)

    @settings(max_examples=25, deadline=None)
    @given(members=st.lists(keys, max_size=100), probe=keys)
    def test_equivalent_blooms_behave_identically(self, members, probe):
        alice = bloom_ppm("alice", "seen", size_bits=2048, n_hashes=3)
        bob = bloom_ppm("bob", "member_set", size_bits=2048, n_hashes=3)
        assert equivalent(alice, bob)
        a, b = build_bloom(alice), build_bloom(bob)
        for key in members:
            a.add(key)
            b.add(key)
        assert (probe in a) == (probe in b)

    @settings(max_examples=20, deadline=None)
    @given(workload=st.lists(st.tuples(keys, counts), max_size=150))
    def test_equivalent_hashpipes_behave_identically(self, workload):
        alice = hashpipe_ppm("alice", "hh", stages=3, slots_per_stage=16)
        bob = hashpipe_ppm("bob", "top_talkers", stages=3,
                           slots_per_stage=16)
        assert equivalent(alice, bob)
        a, b = build_pipe(alice), build_pipe(bob)
        for key, count in workload:
            a.update(key, count)
            b.update(key, count)
        assert a.heavy_hitters(1) == b.heavy_hitters(1)

    @settings(max_examples=25, deadline=None)
    @given(workload=st.lists(st.tuples(keys, counts), min_size=30,
                             max_size=150))
    def test_nonequivalent_sketches_can_differ(self, workload):
        """The converse sanity check: different parameters are declared
        non-equivalent — and the structures are genuinely different
        objects (their error profiles differ even if some workloads
        happen to agree)."""
        small = sketch_ppm("x", "s", width=8, depth=1)
        big = sketch_ppm("y", "s", width=4096, depth=4)
        assert not equivalent(small, big)
        a, b = build_sketch(small), build_sketch(big)
        for key, count in workload:
            a.update(key, count)
            b.update(key, count)
        # Over-counting can only be worse (never better) on the small
        # sketch: a is an upper bound of b everywhere.
        assert all(a.estimate(k) >= b.estimate(k) for k in range(200))
