"""Tests for the anti-flapping stability guard (§6)."""

import pytest

from repro.core import StabilityGuard


class TestDwell:
    def test_first_change_always_allowed(self):
        guard = StabilityGuard(min_dwell_s=1.0)
        assert guard.allow_change("lfa", "mitigate", now=0.0)

    def test_change_within_dwell_blocked(self):
        guard = StabilityGuard(min_dwell_s=1.0)
        guard.record_change("lfa", "mitigate", now=0.0)
        assert not guard.allow_change("lfa", "default", now=0.5)
        assert guard.stats.blocked_dwell == 1

    def test_change_after_dwell_allowed(self):
        guard = StabilityGuard(min_dwell_s=1.0)
        guard.record_change("lfa", "mitigate", now=0.0)
        assert guard.allow_change("lfa", "default", now=1.5)

    def test_reasserting_current_mode_always_allowed(self):
        guard = StabilityGuard(min_dwell_s=10.0)
        guard.record_change("lfa", "mitigate", now=0.0)
        assert guard.allow_change("lfa", "mitigate", now=0.1)

    def test_attack_types_tracked_independently(self):
        guard = StabilityGuard(min_dwell_s=1.0)
        guard.record_change("lfa", "mitigate", now=0.0)
        assert guard.allow_change("ddos", "filter", now=0.1)


class TestFlapLock:
    def make_flapping_guard(self):
        return StabilityGuard(min_dwell_s=0.0, max_changes=3,
                              window_s=10.0, cooldown_s=100.0)

    def test_rapid_changes_trip_the_lock(self):
        guard = self.make_flapping_guard()
        for i in range(4):
            mode = "mitigate" if i % 2 == 0 else "default"
            guard.record_change("lfa", mode, now=float(i))
        assert guard.stats.locks_triggered == 1
        assert guard.is_locked("lfa", now=5.0)
        assert not guard.allow_change("lfa", "default", now=5.0)
        assert guard.stats.blocked_cooldown == 1

    def test_lock_expires_after_cooldown(self):
        guard = self.make_flapping_guard()
        for i in range(4):
            guard.record_change("lfa", f"m{i % 2}", now=float(i))
        assert guard.allow_change("lfa", "default", now=3.0 + 101.0)

    def test_slow_changes_never_lock(self):
        guard = self.make_flapping_guard()
        for i in range(10):
            guard.record_change("lfa", f"m{i % 2}", now=float(i * 20))
        assert guard.stats.locks_triggered == 0

    def test_window_slides(self):
        guard = StabilityGuard(min_dwell_s=0.0, max_changes=2,
                               window_s=1.0, cooldown_s=10.0)
        guard.record_change("lfa", "a", now=0.0)
        guard.record_change("lfa", "b", now=5.0)
        guard.record_change("lfa", "a", now=10.0)
        # Never more than 2 inside any 1 s window.
        assert guard.stats.locks_triggered == 0


class TestValidation:
    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValueError):
            StabilityGuard(min_dwell_s=-1.0)
        with pytest.raises(ValueError):
            StabilityGuard(window_s=0.0)
        with pytest.raises(ValueError):
            StabilityGuard(max_changes=0)

    def test_allowed_counter_tracks_records(self):
        guard = StabilityGuard(min_dwell_s=0.0)
        guard.record_change("lfa", "a", 0.0)
        guard.record_change("lfa", "b", 1.0)
        assert guard.stats.allowed == 2
