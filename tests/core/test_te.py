"""Tests for the centralized TE optimizer."""

import pytest

from repro.core import (greedy_min_max_te, link_loads,
                        max_link_utilization, rebalance_excluding_links)
from repro.netsim import GBPS, make_flow, shortest_path


class TestGreedyMinMax:
    def test_spreads_over_all_paths(self, fig2):
        # With equal capacities everywhere min-max gives each flow its
        # own path: two critical, two detour.
        flows = [make_flow(f"client{i}", "victim", 2 * GBPS, sport=i)
                 for i in range(4)]
        te = greedy_min_max_te(fig2.topo, flows)
        used_mid_switches = {f.path.nodes[2] for f in flows}
        assert used_mid_switches == {"s1", "s2", "s3", "s5"}
        assert te.max_utilization == pytest.approx(0.2)

    def test_prefers_short_paths_when_uncongested(self, fig2):
        flows = [make_flow("client0", "victim", 0.1 * GBPS)]
        te = greedy_min_max_te(fig2.topo, flows)
        assert flows[0].path.hops == 4  # client-sL-sX-sR-victim

    def test_overload_spills_to_detours(self, fig2):
        # 30 Gbps into two 10 Gbps critical links: detours must be used.
        flows = [make_flow(f"client{i % 4}", "victim", 7.5 * GBPS, sport=i)
                 for i in range(4)]
        te = greedy_min_max_te(fig2.topo, flows)
        mids = {f.path.nodes[2] for f in flows}
        assert mids & {"s3", "s5"}, "expected some flows on detours"

    def test_assign_false_leaves_flows_untouched(self, fig2):
        flow = make_flow("client0", "victim", GBPS)
        te = greedy_min_max_te(fig2.topo, [flow], assign=False)
        assert flow.path is None
        assert te.paths[flow.flow_id] is not None

    def test_k_validated(self, fig2):
        with pytest.raises(ValueError):
            greedy_min_max_te(fig2.topo, [], k=0)

    def test_deterministic_given_same_input(self, fig2):
        def run():
            flows = [make_flow(f"client{i}", "victim", GBPS, sport=i)
                     for i in range(4)]
            te = greedy_min_max_te(fig2.topo, flows, assign=False)
            return [te.paths[f.flow_id].nodes for f in flows]

        assert run() == run()

    def test_beats_naive_shortest_path_on_max_utilization(self, fig2):
        flows = [make_flow(f"client{i}", "victim", 4 * GBPS, sport=i)
                 for i in range(4)]
        for flow in flows:
            flow.set_path(shortest_path(fig2.topo, flow.src, flow.dst))
        naive = max_link_utilization(fig2.topo, flows)
        te = greedy_min_max_te(fig2.topo, flows)
        assert te.max_utilization < naive


class TestLoadsAccounting:
    def test_link_loads_sum_demands(self, fig2):
        flows = [make_flow("client0", "victim", GBPS)]
        greedy_min_max_te(fig2.topo, flows)
        loads = link_loads(fig2.topo, flows)
        for key in flows[0].path.links():
            assert loads[key] == GBPS

    def test_pathless_flows_ignored(self, fig2):
        flow = make_flow("client0", "victim", GBPS)
        assert max_link_utilization(fig2.topo, [flow]) == 0.0


class TestRebalance:
    def test_avoids_banned_links(self, fig2):
        flows = [make_flow(f"client{i}", "victim", GBPS, sport=i)
                 for i in range(4)]
        banned = [("s1", "sR")]
        te = rebalance_excluding_links(fig2.topo, flows, banned)
        for flow in flows:
            assert not flow.path.contains_link("s1", "sR")

    def test_falls_back_when_no_alternative(self, fig2):
        # Ban every middle switch's link to sR except nothing remains:
        flows = [make_flow("client0", "victim", GBPS)]
        banned = [("s1", "sR"), ("s2", "sR"), ("s4", "sR"), ("s6", "sR")]
        te = rebalance_excluding_links(fig2.topo, flows, banned, k=6)
        # All victim-ward paths cross a banned link; the optimizer must
        # still route the flow rather than drop it.
        assert flows[0].path is not None

    def test_banned_links_symmetric(self, fig2):
        flows = [make_flow("victim", "client0", GBPS)]
        te = rebalance_excluding_links(fig2.topo, flows, [("s1", "sR")])
        assert not flows[0].path.contains_link("sR", "s1")
