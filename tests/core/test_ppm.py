"""Tests for the PPM IR and signatures."""


from repro.core import PpmKind, PpmRole, PpmSpec
from repro.dataplane import ResourceVector


def spec(name="m", booster="b", kind=PpmKind.SKETCH, params=None):
    return PpmSpec(name=name, kind=kind, role=PpmRole.DETECTION,
                   requirement=ResourceVector(stages=1),
                   params=dict(params or {}), booster=booster)


class TestSignature:
    def test_same_params_same_signature(self):
        a = spec(name="x", booster="one", params={"width": 64})
        b = spec(name="y", booster="two", params={"width": 64})
        assert a.signature() == b.signature()

    def test_different_params_differ(self):
        a = spec(params={"width": 64})
        b = spec(params={"width": 128})
        assert a.signature() != b.signature()

    def test_implementation_detail_params_ignored(self):
        # ``_``-prefixed keys describe how the author wrote the module,
        # not what it computes — the [24]-style equivalence abstraction.
        a = spec(params={"width": 64, "_var_names": "camelCase"})
        b = spec(params={"width": 64, "_var_names": "snake_case"})
        assert a.signature() == b.signature()

    def test_kind_distinguishes(self):
        a = spec(kind=PpmKind.SKETCH, params={"width": 64})
        b = spec(kind=PpmKind.BLOOM, params={"width": 64})
        assert a.signature() != b.signature()

    def test_param_order_is_canonical(self):
        a = spec(params={"width": 64, "depth": 4})
        b = spec(params={"depth": 4, "width": 64})
        assert a.signature() == b.signature()


class TestLogicIdentity:
    def test_anonymous_logic_never_shared(self):
        a = spec(name="same", booster="one", kind=PpmKind.LOGIC)
        b = spec(name="same", booster="two", kind=PpmKind.LOGIC)
        assert a.signature() != b.signature()

    def test_declared_logic_id_shares(self):
        a = spec(name="impl_a", booster="one", kind=PpmKind.LOGIC,
                 params={"logic_id": "threshold_check"})
        b = spec(name="impl_b", booster="two", kind=PpmKind.LOGIC,
                 params={"logic_id": "threshold_check"})
        assert a.signature() == b.signature()


class TestNaming:
    def test_qualified_name_includes_booster(self):
        assert spec(name="m", booster="lfa").qualified_name == "lfa.m"

    def test_unqualified_without_booster(self):
        assert spec(name="m", booster="").qualified_name == "m"

    def test_signature_str_is_informative(self):
        text = str(spec(params={"width": 64}).signature())
        assert "sketch" in text and "64" in text
