"""Tests for the placement scheduler (Figure 1c)."""

from hypothesis import given, settings, strategies as st

from repro.boosters import logic_ppm, parser_ppm, sketch_ppm
from repro.core import (DataflowGraph, PpmRole, ProgramAnalyzer, Scheduler,
                        greedy_min_max_te)
from repro.dataplane import ResourceVector
from repro.netsim import (GBPS, Simulator, figure2_topology, make_flow,
                          random_topology)


def tiny_booster(booster="defense", detect_stages=1, mitigate_stages=1):
    graph = DataflowGraph(booster)
    graph.add_ppm(parser_ppm(booster, "parser", base=("src", "dst")))
    graph.add_ppm(logic_ppm(booster, "detect", PpmRole.DETECTION,
                            ResourceVector(stages=detect_stages)))
    graph.add_ppm(logic_ppm(booster, "mitigate", PpmRole.MITIGATION,
                            ResourceVector(stages=mitigate_stages)))
    graph.add_edge("parser", "detect", weight=8)
    graph.add_edge("detect", "mitigate", weight=8)
    return graph


def figure2_case(sim, graphs, pervasive=True):
    net = figure2_topology(sim)
    flows = [make_flow(f"client{i}", "victim", GBPS, sport=i)
             for i in range(4)]
    te = greedy_min_max_te(net.topo, flows)
    merged = ProgramAnalyzer().merge(graphs)
    paths = [te.paths[fid] for fid in sorted(te.paths)]
    placement = Scheduler(pervasive_detection=pervasive).place(
        merged, net.topo, paths)
    return net, merged, placement


class TestCoverage:
    def test_every_path_gets_a_detector(self, sim):
        net, merged, placement = figure2_case(sim, [tiny_booster()],
                                              pervasive=False)
        assert placement.feasible
        assert placement.metrics.path_coverage == 1.0

    def test_pervasive_mode_uses_all_switches(self, sim):
        net, merged, placement = figure2_case(sim, [tiny_booster()],
                                              pervasive=True)
        assert placement.instance_count("defense.detect") == \
            len(net.topo.switch_names)

    def test_cover_only_mode_uses_few_switches(self, sim):
        net, merged, placement = figure2_case(sim, [tiny_booster()],
                                              pervasive=False)
        # All four client->victim paths share sL and sR: one switch covers.
        assert placement.instance_count("defense.detect") == 1

    def test_mitigation_near_detection(self, sim):
        net, merged, placement = figure2_case(sim, [tiny_booster()],
                                              pervasive=False)
        metrics = placement.metrics
        assert metrics.mitigation_colocated + \
            metrics.mitigation_downstream >= 1
        assert metrics.mitigation_detoured == 0

    def test_support_colocated_with_dependents(self, sim):
        net, merged, placement = figure2_case(sim, [tiny_booster()],
                                              pervasive=False)
        for switch, specs in placement.assignments.items():
            names = {s.qualified_name for s in specs}
            if "defense.detect" in names:
                assert "shared.parser" in names


class TestResourceSafety:
    def test_placement_respects_switch_budgets(self, sim):
        graphs = [tiny_booster(f"booster{i}", detect_stages=3)
                  for i in range(4)]
        net, merged, placement = figure2_case(sim, graphs)
        for switch_name, specs in placement.assignments.items():
            total = ResourceVector.total(s.requirement for s in specs)
            budget = net.topo.switch(switch_name).ledger.budget
            assert total.fits_within(budget), (
                f"{switch_name} overcommitted: {total} > {budget}")

    def test_oversized_detector_flagged_infeasible(self, sim):
        graphs = [tiny_booster("huge", detect_stages=1000)]
        net, merged, placement = figure2_case(sim, graphs)
        assert not placement.feasible
        assert any("uncovered" in reason
                   for reason in placement.infeasibility_reasons)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), n_boosters=st.integers(1, 5))
    def test_never_overcommits_on_random_networks(self, seed, n_boosters):
        sim = Simulator(seed=seed)
        topo = random_topology(sim, n_switches=6, n_hosts=4, extra_edges=2)
        hosts = topo.host_names
        flows = [make_flow(hosts[i % len(hosts)],
                           hosts[(i + 1) % len(hosts)], GBPS, sport=i)
                 for i in range(4)
                 if hosts[i % len(hosts)] != hosts[(i + 1) % len(hosts)]]
        te = greedy_min_max_te(topo, flows)
        graphs = [tiny_booster(f"b{i}", detect_stages=2 + i % 3)
                  for i in range(n_boosters)]
        merged = ProgramAnalyzer().merge(graphs)
        paths = [te.paths[fid] for fid in sorted(te.paths)]
        placement = Scheduler().place(merged, topo, paths)
        for switch_name, specs in placement.assignments.items():
            total = ResourceVector.total(s.requirement for s in specs)
            budget = topo.switch(switch_name).ledger.budget
            assert total.fits_within(budget)


class TestSharingHelpsPacking:
    def test_merged_graph_fits_where_unmerged_does_not(self, sim):
        # Two boosters, each with an identical 5-stage sketch.  Unshared
        # they need 10 stages of detection per switch; shared only 5.
        def sketchy(booster):
            graph = DataflowGraph(booster)
            graph.add_ppm(parser_ppm(booster, "parser", base=("src",)))
            graph.add_ppm(sketch_ppm(booster, "sketch", width=256, depth=5))
            graph.add_ppm(logic_ppm(booster, "classify", PpmRole.DETECTION,
                                    ResourceVector(stages=4)))
            graph.add_edge("parser", "sketch", weight=8)
            graph.add_edge("sketch", "classify", weight=8)
            return graph

        graphs = [sketchy("a"), sketchy("b")]
        merged = ProgramAnalyzer().merge(graphs)
        unmerged = ProgramAnalyzer(merge_all_parsers=False)
        # Detection stage demand: shared 5+4+4=13 < unshared 5+5+4+4=18.
        assert merged.report.requirement_after.stages < \
            merged.report.requirement_before.stages
