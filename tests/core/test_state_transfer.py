"""Tests for FEC-protected state transfer and replication (§3.4)."""

import pytest

from repro.core import (CriticalStateReplicator, StateTransferService,
                        state_to_words, words_to_state)
from repro.dataplane import CountMinSketch
from repro.netsim import SwitchProgram


class TestWordCodec:
    def test_roundtrip_dict(self):
        payload = {"cells": {1: 2, 3: 4}, "name": "sketch"}
        import pickle
        words = state_to_words(payload)
        assert words_to_state(words, len(pickle.dumps(payload))) == payload

    def test_roundtrip_nested(self):
        payload = {"rows": [{"a": [1, 2]}, (3, 4)], "flag": True}
        import pickle
        words = state_to_words(payload)
        assert words_to_state(words, len(pickle.dumps(payload))) == payload


class TestTransfer:
    def test_clean_network_delivers_payload(self, fig2, sim):
        service = StateTransferService(fig2.topo)
        service.install_agents()
        results = []
        service.send("sL", "sR", {"value": 42},
                     on_complete=results.append)
        sim.run(until=1.0)
        assert len(results) == 1
        assert results[0].success
        assert results[0].payload == {"value": 42}
        assert results[0].words_lost == 0

    def test_multi_hop_transfer(self, fig2, sim):
        service = StateTransferService(fig2.topo)
        service.install_agents()
        results = []
        service.send("sL", "s4", list(range(100)),
                     on_complete=results.append)
        sim.run(until=1.0)
        assert results[0].success
        assert results[0].payload == list(range(100))

    def test_fec_recovers_single_losses(self, fig2, sim):
        # Flood the path so state-carrying packets drop, but mildly
        # enough that losses are sparse: FEC should save the day.
        service = StateTransferService(fig2.topo, group_size=4,
                                       symbols_per_packet=1)
        service.install_agents()
        path_link = fig2.topo.link("sL", "s1")
        path_link.fluid_load_bps = path_link.capacity_bps * 1.02  # ~2% loss
        successes = 0
        attempts = 10
        results = []
        for i in range(attempts):
            service.send("sL", "sR", {"seq": i, "blob": list(range(30))},
                         on_complete=results.append)
        sim.run(until=5.0)
        successes = sum(1 for r in results if r.success)
        recovered = sum(r.recovered_by_fec for r in results)
        assert recovered > 0, "expected FEC to repair some losses"
        assert successes >= attempts // 2

    def test_without_fec_same_loss_fails_more(self, fig2, sim):
        with_fec = StateTransferService(fig2.topo, group_size=4,
                                        symbols_per_packet=1)
        with_fec.install_agents()
        link = fig2.topo.link("sL", "s1")
        link.fluid_load_bps = link.capacity_bps * 1.03
        results_fec = []
        for i in range(10):
            with_fec.send("sL", "sR", {"seq": i, "blob": list(range(30))},
                          on_complete=results_fec.append)
        sim.run(until=5.0)
        ok_fec = sum(r.success for r in results_fec)

        # Rebuild an identical scenario without FEC (fresh topo/sim).
        from repro.netsim import (Simulator, figure2_topology,
                                  install_host_routes,
                                  install_switch_routes)
        sim2 = Simulator(seed=42)
        net2 = figure2_topology(sim2)
        install_host_routes(net2.topo)
        install_switch_routes(net2.topo)
        no_fec = StateTransferService(net2.topo, group_size=None,
                                      symbols_per_packet=1)
        no_fec.install_agents()
        link2 = net2.topo.link("sL", "s1")
        link2.fluid_load_bps = link2.capacity_bps * 1.03
        results_raw = []
        for i in range(10):
            no_fec.send("sL", "sR", {"seq": i, "blob": list(range(30))},
                        on_complete=results_raw.append)
        sim2.run(until=5.0)
        ok_raw = sum(r.success for r in results_raw)
        assert ok_fec >= ok_raw

    def test_deadline_reports_failure_on_heavy_loss(self, fig2, sim):
        service = StateTransferService(fig2.topo, symbols_per_packet=1,
                                       deadline_s=0.2)
        service.install_agents()
        link = fig2.topo.link("sL", "s1")
        link.fluid_load_bps = link.capacity_bps * 5  # 80% loss
        results = []
        service.send("sL", "sR", {"blob": list(range(200))},
                     on_complete=results.append)
        sim.run(until=2.0)
        assert len(results) == 1
        assert not results[0].success
        assert results[0].words_lost > 0

    def test_unknown_destination_rejected(self, fig2):
        service = StateTransferService(fig2.topo)
        with pytest.raises(KeyError):
            service.send("sL", "ghost", {})

    def test_results_recorded_on_service(self, fig2, sim):
        service = StateTransferService(fig2.topo)
        service.install_agents()
        service.send("sL", "sR", {"x": 1})
        sim.run(until=1.0)
        assert len(service.results) == 1


class _SketchProgram(SwitchProgram):
    """Minimal stateful program for replication tests."""

    def __init__(self, name="sketchy"):
        super().__init__(name)
        self.sketch = CountMinSketch(name, width=32, depth=2)

    def process(self, switch, packet):
        return None

    def export_state(self):
        return self.sketch.export_state()

    def import_state(self, state):
        self.sketch.import_state(state)


class TestReplication:
    def test_snapshot_restores_on_replica(self, fig2, sim):
        service = StateTransferService(fig2.topo)
        service.install_agents()
        primary = _SketchProgram()
        fig2.topo.switch("s1").install_program(primary)
        for i in range(50):
            primary.sketch.update(f"key{i % 7}")

        replicator = CriticalStateReplicator(
            service, primary="s1", replica="s2",
            program_names=["sketchy"], period_s=0.5).start()
        sim.run(until=1.2)
        assert replicator.snapshots_sent >= 2

        # s1 "fails"; restore its state onto a fresh instance at s3.
        standby = _SketchProgram()
        fig2.topo.switch("s3").install_program(standby)
        assert replicator.restore_to("s3")
        assert standby.sketch.estimate("key0") == \
            primary.sketch.estimate("key0")

    def test_restore_without_snapshot_returns_false(self, fig2, sim):
        service = StateTransferService(fig2.topo)
        service.install_agents()
        replicator = CriticalStateReplicator(
            service, primary="s1", replica="s2", program_names=["ghost"])
        assert replicator.restore_to("s3") is False

    def test_period_validated(self, fig2):
        service = StateTransferService(fig2.topo)
        with pytest.raises(ValueError):
            CriticalStateReplicator(service, "s1", "s2", [], period_s=0.0)
