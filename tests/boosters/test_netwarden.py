"""Tests for the NetWarden-style covert-channel booster."""

import pytest

from repro.boosters import (CANONICAL_TTL, LfaDetectorBooster,
                            NetWardenBooster)
from repro.core import (ModeEventBus, ModeRegistry, ProgramAnalyzer,
                        install_mode_agents)
from repro.netsim import Packet


@pytest.fixture
def deployed(fig2, sim):
    booster = NetWardenBooster(ttl_variants_threshold=3)
    registry = ModeRegistry()
    for spec in booster.modes():
        registry.register(spec)
    agents = install_mode_agents(fig2.topo, registry, bus=ModeEventBus())
    switch = fig2.topo.switch("sL")
    switch.install_program(booster._make_program(switch))
    return fig2, booster, agents


def send(fig2, sim, ttl, src="bot0", dst="victim", sport=7):
    pkt = Packet(src=src, dst=dst, ttl=ttl, sport=sport)
    fig2.topo.host(src).originate(pkt)
    sim.run(until=sim.now + 0.2)
    return pkt


class TestDetection:
    def test_constant_ttl_flow_is_clean(self, deployed, sim):
        fig2, booster, agents = deployed
        for _ in range(10):
            pkt = send(fig2, sim, ttl=64)
        program = booster.programs["sL"]
        assert not program.is_suspect(pkt.flow_key)

    def test_modulated_ttl_flow_flagged(self, deployed, sim):
        fig2, booster, agents = deployed
        # An exfiltrating endpoint encodes bits in the TTL field.
        for ttl in (64, 63, 62, 61, 60, 59):
            pkt = send(fig2, sim, ttl=ttl)
        assert booster.programs["sL"].is_suspect(pkt.flow_key)

    def test_small_wobble_below_threshold_tolerated(self, deployed, sim):
        fig2, booster, agents = deployed
        for ttl in (64, 63, 64, 63):
            pkt = send(fig2, sim, ttl=ttl)
        assert not booster.programs["sL"].is_suspect(pkt.flow_key)

    def test_flows_tracked_independently(self, deployed, sim):
        fig2, booster, agents = deployed
        for index, ttl in enumerate((64, 60, 56, 52, 48)):
            bad = send(fig2, sim, ttl=ttl, sport=1)
        good = send(fig2, sim, ttl=64, sport=2)
        program = booster.programs["sL"]
        assert program.is_suspect(bad.flow_key)
        assert not program.is_suspect(good.flow_key)


class TestNormalization:
    def test_suspect_normalized_only_in_mode(self, deployed, sim):
        fig2, booster, agents = deployed
        for ttl in (64, 60, 56, 52, 48):
            send(fig2, sim, ttl=ttl)
        # Default mode: detection only, TTL untouched beyond routing.
        probe = send(fig2, sim, ttl=40)
        assert probe.ttl != CANONICAL_TTL
        assert booster.programs["sL"].packets_normalized == 0

        agents["sL"].initiate("covert_channel", "covert_normalize")
        sim.run(until=sim.now + 0.5)
        victim = fig2.topo.host("victim")
        before = len(victim.received_packets)
        send(fig2, sim, ttl=40)
        normalized = victim.received_packets[before]
        # The channel is destroyed: whatever the sender encoded, the
        # receiver-side TTL is canonical minus the remaining hop count.
        assert booster.programs["sL"].packets_normalized == 1
        assert normalized.ttl == CANONICAL_TTL - 2

    def test_clean_flows_never_rewritten(self, deployed, sim):
        fig2, booster, agents = deployed
        agents["sL"].initiate("covert_channel", "covert_normalize")
        sim.run(until=sim.now + 0.5)
        send(fig2, sim, ttl=64, sport=9)
        assert booster.programs["sL"].packets_normalized == 0

    def test_state_roundtrip(self, deployed, sim):
        fig2, booster, agents = deployed
        for ttl in (64, 60, 56, 52, 48):
            pkt = send(fig2, sim, ttl=ttl)
        program = booster.programs["sL"]
        clone = NetWardenBooster()._make_program(fig2.topo.switch("s2"))
        clone.import_state(program.export_state())
        assert clone.is_suspect(pkt.flow_key)


class TestSharingDeclaration:
    def test_flow_table_shared_with_lfa_detector(self):
        merged = ProgramAnalyzer().merge([
            LfaDetectorBooster().dataflow(),
            NetWardenBooster().dataflow()])
        lfa_node = merged.merged_name("lfa_detector.flow_state")
        nw_node = merged.merged_name("netwarden.conn_state")
        assert lfa_node == nw_node
        assert lfa_node.startswith("shared.")
