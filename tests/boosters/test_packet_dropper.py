"""Tests for the packet-dropping / policing booster."""

import pytest

from repro.boosters import PacketDropperBooster, PacketDropperProgram
from repro.netsim import FlowKey, Packet
from tests.boosters.test_lfa_detector import (add_bot_flood,
                                              attacked_deployment)


class TestPacketPath:
    def test_blocklisted_flow_dropped(self, fig2, sim):
        program = PacketDropperProgram("dropper", "drop")
        fig2.topo.switch("sL").install_program(program)
        key = FlowKey("bot0", "decoy0", sport=0, dport=80)
        program.block(key)
        pkt = Packet(src="bot0", dst="decoy0", dport=80)
        fig2.topo.host("bot0").originate(pkt)
        sim.run()
        assert pkt.dropped == "suspicious_flow"
        assert program.packets_dropped == 1
        assert fig2.topo.host("decoy0").received_count() == 0

    def test_unlisted_flow_passes(self, fig2, sim):
        program = PacketDropperProgram("dropper", "drop")
        fig2.topo.switch("sL").install_program(program)
        pkt = Packet(src="client0", dst="victim", dport=80)
        fig2.topo.host("client0").originate(pkt)
        sim.run()
        assert fig2.topo.host("victim").received_count() == 1

    def test_state_roundtrip(self):
        program = PacketDropperProgram("dropper", "drop")
        program.block("flow_x")
        clone = PacketDropperProgram("dropper", "drop")
        clone.import_state(program.export_state())
        assert "flow_x" in clone.blocklist


class TestFluidPolicing:
    def test_suspicious_flows_policed_to_trickle(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        add_bot_flood(net, fluid)
        sim.run(until=6.0)
        assert defense.dropper.flows_policed == len(net.bot_hosts)
        for flow in fluid.flows.malicious():
            assert flow.police_rate_bps is not None
            assert flow.police_rate_bps == pytest.approx(
                0.1 * flow.demand_bps)
            # The attacker sees its throughput collapse: the illusion of
            # success.
            assert flow.goodput_bps <= flow.police_rate_bps * 1.05

    def test_normal_flows_never_policed(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        add_bot_flood(net, fluid)
        sim.run(until=6.0)
        assert all(f.police_rate_bps is None for f in fluid.flows.normal())

    def test_policing_lifted_when_mode_ends(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid, detector_kwargs={"clear_sustain_s": 0.5})
        add_bot_flood(net, fluid)
        sim.run(until=5.0)
        now = sim.now
        for flow in fluid.flows.malicious():
            flow.end_time = now
        sim.run(until=10.0)
        assert all(f.police_rate_bps is None for f in fluid.flows)
        # The packet-path blocklists were reset too.
        for program in defense.dropper.programs.values():
            assert program.blocklist.inserted == 0

    def test_blocklists_mirror_policing(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        add_bot_flood(net, fluid)
        sim.run(until=6.0)
        some_program = next(iter(defense.dropper.programs.values()))
        for flow in fluid.flows.malicious():
            assert flow.key in some_program.blocklist

    def test_keep_fraction_validated(self):
        with pytest.raises(ValueError):
            PacketDropperBooster(keep_fraction=1.5)
