"""Tests for the distributed global rate limiter ([62])."""

import pytest

from repro.boosters import GlobalRateLimiterBooster, TENANT_HEADER
from repro.core import FastFlexController
from repro.netsim import FlowSet, Packet


@pytest.fixture
def deployed(fig2, sim):
    """Rate limiter on the two ingress/egress edges, wired with sync."""
    booster = GlobalRateLimiterBooster(limits={"tenantA": 1e6},
                                       window_s=1.0, sync_period_s=0.1)
    controller = FastFlexController(fig2.topo, [booster],
                                    pervasive_detection=True)
    deployment = controller.setup(FlowSet(), install_routes=False)
    return fig2, booster, deployment


def pump(fig2, sim, switch_host, n, size=1500, tenant="tenantA",
         dst="victim"):
    """Send n packets from a host, tagged with the tenant header."""
    packets = []
    for index in range(n):
        pkt = Packet(src=switch_host, dst=dst, size_bytes=size,
                     sport=3000 + index,
                     headers={TENANT_HEADER: tenant})
        fig2.topo.host(switch_host).originate(pkt)
        packets.append(pkt)
    sim.run(until=sim.now + 0.2)
    return packets


class TestLocalCounting:
    def test_rates_reflect_window(self, deployed, sim):
        fig2, booster, deployment = deployed
        pump(fig2, sim, "client0", 20)
        program = booster.programs["sL"]
        rate = program.local_rates().get("tenantA", 0.0)
        assert rate == pytest.approx(20 * 1500 * 8 / 1.0, rel=0.01)

    def test_untagged_traffic_ignored(self, deployed, sim):
        fig2, booster, deployment = deployed
        pkt = Packet(src="client0", dst="victim")
        fig2.topo.host("client0").originate(pkt)
        sim.run(until=sim.now + 0.2)
        assert booster.programs["sL"].local_rates() == {}
        assert pkt.dropped is None

    def test_unlimited_tenant_never_dropped(self, deployed, sim):
        fig2, booster, deployment = deployed
        packets = pump(fig2, sim, "client0", 50, tenant="tenantFree")
        assert all(p.dropped is None for p in packets)


class TestGlobalEnforcement:
    def test_under_limit_passes(self, deployed, sim):
        fig2, booster, deployment = deployed
        # 1 Mbps limit; 10 packets x 1500 B over a 1 s window = 120 kbps.
        packets = pump(fig2, sim, "client0", 10)
        assert all(p.dropped is None for p in packets)

    def test_local_overload_dropped_even_without_peers(self, deployed,
                                                       sim):
        fig2, booster, deployment = deployed
        packets = pump(fig2, sim, "client0", 300)  # 3.6 Mbps >> 1 Mbps
        dropped = [p for p in packets if p.dropped == "global_rate_limit"]
        assert dropped, "expected proportional dropping above the limit"

    def test_distributed_overload_detected_via_sync(self, deployed, sim):
        fig2, booster, deployment = deployed
        # Each side alone is under the limit (~0.72 Mbps each), together
        # they exceed it (1.44 Mbps > 1 Mbps): only the merged view sees
        # the violation.
        pump(fig2, sim, "client0", 60)
        pump(fig2, sim, "victim", 60, dst="client0")
        sim.run(until=sim.now + 0.3)  # let digests propagate
        program = booster.programs["sL"]
        assert program.local_rates()["tenantA"] < 1e6
        assert program.global_rate("tenantA") > 1e6
        # New packets now face a positive drop probability.
        packets = pump(fig2, sim, "client0", 100)
        dropped = [p for p in packets if p.dropped == "global_rate_limit"]
        assert dropped

    def test_sync_agents_installed_per_instance(self, deployed, sim):
        fig2, booster, deployment = deployed
        assert set(booster.sync_agents) == set(booster.programs)
        for name in booster.sync_agents:
            assert fig2.topo.switch(name).has_program("rate_limiter.sync")

    def test_state_roundtrip(self, deployed, sim):
        fig2, booster, deployment = deployed
        pump(fig2, sim, "client0", 5)
        program = booster.programs["sL"]
        clone = GlobalRateLimiterBooster(limits={"tenantA": 1e6})
        clone_program = clone._make_program(fig2.topo.switch("s2"))
        clone_program.import_state(program.export_state())
        assert clone_program.export_state() == program.export_state()
