"""Tests for the HashPipe heavy-hitter / volumetric DDoS booster."""

import pytest

from repro.attacks import attack_packet_stream
from repro.boosters import HeavyHitterBooster
from repro.core import (DetectorSyncAgent, ModeEventBus, ModeRegistry,
                        install_mode_agents)
from repro.netsim import Packet


@pytest.fixture
def deployed(fig2, sim):
    booster = HeavyHitterBooster(byte_threshold=100_000)
    registry = ModeRegistry()
    for spec in booster.modes():
        registry.register(spec)
    registry.always_on.add(booster.name)
    agents = install_mode_agents(fig2.topo, registry, bus=ModeEventBus())
    switch = fig2.topo.switch("sL")
    switch.install_program(booster._make_detector(switch))
    switch.install_program(booster._make_filter(switch))
    return fig2, booster, agents


def pump_traffic(fig2, sim, n_heavy=300, n_light=50):
    for index in range(n_heavy):
        fig2.topo.host("bot0").originate(
            Packet(src="bot0", dst="victim", size_bytes=1500,
                   sport=1000 + index % 50))
    for index in range(n_light):
        fig2.topo.host("client0").originate(
            Packet(src="client0", dst="victim", size_bytes=200,
                   sport=2000 + index))
    sim.run(until=sim.now + 1.0)


class TestDetection:
    def test_heavy_source_identified(self, deployed, sim):
        fig2, booster, agents = deployed
        pump_traffic(fig2, sim)
        heavy = booster.heavy_sources("sL")
        assert "bot0" in heavy
        assert "client0" not in heavy

    def test_counting_runs_in_default_mode(self, deployed, sim):
        fig2, booster, agents = deployed
        pump_traffic(fig2, sim, n_heavy=10, n_light=0)
        assert booster.detectors["sL"].pipe.total > 0

    def test_filter_idle_until_mode_active(self, deployed, sim):
        fig2, booster, agents = deployed
        booster.flag_everywhere("bot0")
        pkt = Packet(src="bot0", dst="victim", size_bytes=1500)
        fig2.topo.host("bot0").originate(pkt)
        sim.run(until=sim.now + 1.0)
        assert pkt.dropped is None  # default mode: filter gated off

    def test_filter_drops_in_mode(self, deployed, sim):
        fig2, booster, agents = deployed
        booster.flag_everywhere("bot0")
        agents["sL"].initiate("ddos", "ddos_filter")
        sim.run(until=sim.now + 0.5)
        pkt = Packet(src="bot0", dst="victim", size_bytes=1500)
        good = Packet(src="client0", dst="victim", size_bytes=200)
        fig2.topo.host("bot0").originate(pkt)
        fig2.topo.host("client0").originate(good)
        sim.run(until=sim.now + 1.0)
        assert pkt.dropped == "heavy_hitter"
        assert good.dropped is None
        assert booster.filters["sL"].packets_dropped == 1

    def test_unflag_all(self, deployed, sim):
        fig2, booster, agents = deployed
        booster.flag_everywhere("bot0")
        booster.filters["sL"].unflag_all()
        agents["sL"].initiate("ddos", "ddos_filter")
        sim.run(until=sim.now + 0.5)
        pkt = Packet(src="bot0", dst="victim")
        fig2.topo.host("bot0").originate(pkt)
        sim.run(until=sim.now + 0.5)
        assert pkt.dropped is None


class TestWindowSnapshot:
    def test_roll_window_snapshots_before_clearing(self, fig2, sim):
        booster = HeavyHitterBooster(byte_threshold=100_000)
        switch = fig2.topo.switch("sL")
        switch.install_program(booster._make_detector(switch))
        detector = booster.detectors["sL"]
        detector.pipe.update("elephant", 250_000)

        window = detector.roll_window()
        assert window == {"elephant": 250_000}
        # Regression for the tumbling-window race: the pipe is cleared,
        # but local_counts (what a sync agent polls between windows)
        # still serves the completed window instead of an empty view.
        assert detector.pipe.total == 0
        assert detector.local_counts() == {"elephant": 250_000.0}

    def test_local_counts_live_until_first_roll(self, fig2, sim):
        booster = HeavyHitterBooster()
        switch = fig2.topo.switch("sL")
        switch.install_program(booster._make_detector(switch))
        detector = booster.detectors["sL"]
        detector.pipe.update("mouse", 10)
        # No tumbling window in play yet: serve the live counters.
        assert detector.local_counts() == {"mouse": 10.0}

    def test_next_roll_replaces_snapshot(self, fig2, sim):
        booster = HeavyHitterBooster()
        switch = fig2.topo.switch("sL")
        switch.install_program(booster._make_detector(switch))
        detector = booster.detectors["sL"]
        detector.pipe.update("a", 100)
        detector.roll_window()
        detector.pipe.update("b", 200)
        assert detector.roll_window() == {"b": 200}
        assert detector.local_counts() == {"b": 200.0}


class TestNetworkWide:
    def test_sync_agents_merge_counts(self, fig2, sim):
        booster = HeavyHitterBooster(byte_threshold=100_000)
        for name in ("sL", "sR"):
            switch = fig2.topo.switch(name)
            switch.install_program(booster._make_detector(switch))
        # Each locality sees only part of the volume.
        booster.detectors["sL"].pipe.update("elephant", 60_000)
        booster.detectors["sR"].pipe.update("elephant", 60_000)

        agents = {}
        for name in ("sL", "sR"):
            agent = DetectorSyncAgent(
                source=booster.detectors[name].local_counts,
                peers=[p for p in ("sL", "sR") if p != name],
                sync_period_s=0.1, name="hh.sync")
            fig2.topo.switch(name).install_program(agent)
            agents[name] = agent
        sim.run(until=0.5)
        # Locally below threshold, globally above — only the merged view
        # catches the network-wide heavy hitter ([34]).
        assert booster.heavy_sources("sL") == {}
        assert "elephant" in agents["sL"].global_exceeders(100_000)


class TestWorkloadGenerator:
    def test_attack_stream_mix(self, sim):
        import random
        rng = random.Random(5)
        packets = list(attack_packet_stream(
            rng, ["bot0", "bot1"], ["client0"], "victim",
            n_packets=500, attack_fraction=0.8))
        assert len(packets) == 500
        attack = [p for p in packets if p.src.startswith("bot")]
        assert 300 < len(attack) < 480

    def test_spoofed_ttls(self):
        import random
        rng = random.Random(6)
        packets = list(attack_packet_stream(
            rng, ["bot0"], ["client0"], "victim", n_packets=200,
            attack_fraction=1.0, spoof_ttl=True))
        assert len({p.ttl for p in packets}) > 5

    def test_validation(self):
        import random
        rng = random.Random(0)
        with pytest.raises(ValueError):
            list(attack_packet_stream(rng, [], ["c"], "v", 10))
        with pytest.raises(ValueError):
            list(attack_packet_stream(rng, ["b"], ["c"], "v", 10,
                                      attack_fraction=2.0))
