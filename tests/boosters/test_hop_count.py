"""Tests for the NetHCF-style hop-count filtering booster."""

import pytest

from repro.boosters import HopCountFilterBooster, infer_hop_count
from repro.core import ModeEventBus, ModeRegistry, install_mode_agents
from repro.netsim import Packet


class TestInference:
    def test_inference_picks_next_canonical_ttl(self):
        assert infer_hop_count(60) == 4     # from 64
        assert infer_hop_count(64) == 0
        assert infer_hop_count(120) == 8    # from 128
        assert infer_hop_count(250) == 5    # from 255
        assert infer_hop_count(30) == 2     # from 32

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            infer_hop_count(-1)


@pytest.fixture
def deployed(fig2, sim):
    booster = HopCountFilterBooster()
    registry = ModeRegistry()
    for spec in booster.modes():
        registry.register(spec)
    agents = install_mode_agents(fig2.topo, registry, bus=ModeEventBus())
    switch = fig2.topo.switch("sL")
    switch.install_program(booster._make_program(switch))
    return fig2, booster, agents


def send(fig2, sim, src="client0", ttl=64):
    pkt = Packet(src=src, dst="victim", ttl=ttl)
    fig2.topo.host(src).originate(pkt)
    sim.run(until=sim.now + 0.5)
    return pkt


class TestLearning:
    def test_first_sight_learned(self, deployed, sim):
        fig2, booster, agents = deployed
        send(fig2, sim, ttl=64)
        # One hop from client0 to sL: observed TTL is 63... the learning
        # happens at sL *after* its own decrement? No: the program runs
        # on sL, which decremented to 63, so hop count = 1.
        assert booster.programs["sL"].learned["client0"] == 1

    def test_consistent_traffic_passes_in_learning(self, deployed, sim):
        fig2, booster, agents = deployed
        first = send(fig2, sim, ttl=64)
        second = send(fig2, sim, ttl=64)
        assert first.dropped is None and second.dropped is None
        assert booster.programs["sL"].mismatches == 0

    def test_mismatch_counted_but_not_dropped_in_learning(self, deployed,
                                                          sim):
        fig2, booster, agents = deployed
        send(fig2, sim, ttl=64)
        spoofed = send(fig2, sim, ttl=40)  # pretends 24 hops away
        assert spoofed.dropped is None
        assert booster.programs["sL"].mismatches == 1


class TestFiltering:
    def test_spoofed_packet_dropped_in_filter_mode(self, deployed, sim):
        fig2, booster, agents = deployed
        send(fig2, sim, ttl=64)  # learn the honest distance
        agents["sL"].initiate("spoofing", "hcf_filter")
        sim.run(until=sim.now + 0.5)
        spoofed = send(fig2, sim, ttl=40)
        assert spoofed.dropped == "hop_count_mismatch"
        assert booster.programs["sL"].packets_dropped == 1

    def test_honest_packet_passes_in_filter_mode(self, deployed, sim):
        fig2, booster, agents = deployed
        send(fig2, sim, ttl=64)
        agents["sL"].initiate("spoofing", "hcf_filter")
        sim.run(until=sim.now + 0.5)
        honest = send(fig2, sim, ttl=64)
        assert honest.dropped is None

    def test_unknown_source_accepted_then_checked(self, deployed, sim):
        fig2, booster, agents = deployed
        agents["sL"].initiate("spoofing", "hcf_filter")
        sim.run(until=sim.now + 0.5)
        first = send(fig2, sim, src="bot0", ttl=64)
        assert first.dropped is None  # conservative accept
        lied = send(fig2, sim, src="bot0", ttl=50)  # claims 14 hops away
        assert lied.dropped == "hop_count_mismatch"

    def test_tolerance_allows_small_wobble(self, fig2, sim):
        booster = HopCountFilterBooster(tolerance=1)
        registry = ModeRegistry()
        for spec in booster.modes():
            registry.register(spec)
        agents = install_mode_agents(fig2.topo, registry)
        switch = fig2.topo.switch("sL")
        switch.install_program(booster._make_program(switch))
        send(fig2, sim, ttl=64)
        agents["sL"].initiate("spoofing", "hcf_filter")
        sim.run(until=sim.now + 0.5)
        wobble = send(fig2, sim, ttl=63)  # one hop further: tolerated
        assert wobble.dropped is None

    def test_state_roundtrip(self, deployed, sim):
        fig2, booster, agents = deployed
        send(fig2, sim, ttl=64)
        program = booster.programs["sL"]
        switch = fig2.topo.switch("s2")
        clone = HopCountFilterBooster()._make_program(switch)
        clone.import_state(program.export_state())
        assert clone.learned == program.learned
