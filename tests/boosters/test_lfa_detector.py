"""Tests for the LFA detection booster."""

import pytest

from repro.boosters import (LFA_MITIGATION_MODE, LfaDetectorBooster,
                            LfaDetectorProgram, build_figure2_defense)
from repro.dataplane import TcpState
from repro.netsim import (GBPS, Packet, Path, TcpFlags, install_flow_route,
                          make_flow)


class TestPacketPath:
    def test_flow_table_tracks_data_packets(self, fig2, sim):
        program = LfaDetectorProgram("lfa_detector", "det", capacity=128)
        fig2.topo.switch("sL").install_program(program)
        pkt = Packet(src="client0", dst="victim", size_bytes=500,
                     tcp_flags=TcpFlags.SYN)
        fig2.topo.host("client0").originate(pkt)
        sim.run()
        entry = program.table.get(pkt.flow_key)
        assert entry is not None
        assert entry.packets == 1
        assert entry.tcp_state == TcpState.SYN_SEEN

    def test_control_packets_ignored(self, fig2, sim):
        from repro.netsim import PacketKind
        program = LfaDetectorProgram("lfa_detector", "det")
        fig2.topo.switch("sL").install_program(program)
        probe = Packet(src="client0", dst="victim",
                       kind=PacketKind.TRACEROUTE,
                       headers={"probe_id": 1, "probe_ttl": 9})
        fig2.topo.host("client0").originate(probe)
        sim.run()
        assert len(program.table) == 0

    def test_state_roundtrip(self, fig2, sim):
        program = LfaDetectorProgram("lfa_detector", "det")
        program.table.observe("key", 1.0, size_bytes=100, syn=True)
        clone = LfaDetectorProgram("lfa_detector", "det")
        clone.import_state(program.export_state())
        assert clone.table.get("key").packets == 1


def attacked_deployment(fig2_fluid, detector_kwargs=None):
    """Figure 2 network with the defense deployed and a flood starting."""
    net, fluid, flows = fig2_fluid
    detector = LfaDetectorBooster(fluid=fluid, **(detector_kwargs or {}))
    defense = build_figure2_defense(net, fluid, detector=detector)
    deployment = defense.setup(flows)
    for flow in flows:
        install_flow_route(net.topo, flow.path)
    fluid.start()
    return net, fluid, flows, defense, deployment


def add_bot_flood(net, fluid, start=2.0, per_conn=10e6, conns=200):
    path = Path.of(["bot0", "sL", "s1", "sR", "decoy0"])
    for index, bot in enumerate(net.bot_hosts):
        flow = make_flow(bot, "decoy0", demand_bps=conns * per_conn,
                         weight=float(conns), sport=60_000 + index,
                         malicious=True, start_time=start)
        flow.set_path(Path.of([bot] + list(path.nodes[1:])))
        fluid.flows.add(flow)


class TestFluidDetection:
    def test_flood_triggers_detection_and_mode_change(self, fig2_fluid,
                                                      sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        add_bot_flood(net, fluid)
        sim.run(until=5.0)
        assert defense.detector.detections, "expected a detection"
        detection = defense.detector.detections[0]
        assert detection.time == pytest.approx(2.3, abs=0.5)
        assert detection.link in {("sL", "s1"), ("s1", "sR")}
        active = deployment.bus.switches_in_mode("lfa",
                                                 LFA_MITIGATION_MODE)
        assert len(active) == len(net.topo.switch_names)

    def test_attack_flows_marked_suspicious(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        add_bot_flood(net, fluid)
        sim.run(until=5.0)
        malicious = fluid.flows.malicious()
        assert all(f.suspicious for f in malicious)
        assert all(f.suspicion_score > 0 for f in malicious)

    def test_normal_flows_not_flagged(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        add_bot_flood(net, fluid)
        sim.run(until=5.0)
        assert all(not f.suspicious for f in fluid.flows.normal())

    def test_no_attack_no_detection(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        sim.run(until=5.0)
        assert defense.detector.detections == []
        assert not defense.mitigation_active()

    def test_high_rate_connections_not_flagged(self, fig2_fluid, sim):
        # Few fat connections saturating a link are NOT the Crossfire
        # pattern: signal (b) must reject them even when signal (a) fires.
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        fat = make_flow("bot0", "decoy0", demand_bps=12 * GBPS,
                        weight=2.0, malicious=True, start_time=2.0)
        fat.set_path(Path.of(["bot0", "sL", "s1", "sR", "decoy0"]))
        fluid.flows.add(fat)
        sim.run(until=5.0)
        assert not fat.suspicious

    def test_mode_reverts_after_attack_subsides(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid, detector_kwargs={"clear_sustain_s": 0.5})
        add_bot_flood(net, fluid)
        sim.run(until=5.0)
        assert defense.mitigation_active()
        # Attacker gives up at t=5.
        now = sim.now
        for flow in fluid.flows.malicious():
            flow.end_time = now
        sim.run(until=9.0)
        assert not defense.mitigation_active()
        agent = deployment.agent("sL")
        assert agent.mode_table.mode_for("lfa") == "default"
        assert all(not f.suspicious for f in fluid.flows)
