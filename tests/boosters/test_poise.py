"""Tests for the Poise-style context-aware access control booster."""

import pytest

from repro.boosters import (AccessPolicy, CONTEXT_HEADER, PoiseBooster)
from repro.core import ModeEventBus, ModeRegistry, install_mode_agents
from repro.netsim import Packet


def make_booster():
    return PoiseBooster(policies=[
        AccessPolicy.require("managed_devices_only", ["victim"],
                             device="managed"),
        AccessPolicy.deny_all("default_deny", ["victim"]),
    ])


@pytest.fixture
def deployed(fig2, sim):
    booster = make_booster()
    registry = ModeRegistry()
    for spec in booster.modes():
        registry.register(spec)
    agents = install_mode_agents(fig2.topo, registry, bus=ModeEventBus())
    switch = fig2.topo.switch("sL")
    switch.install_program(booster._make_program(switch))
    return fig2, booster, agents


def send(fig2, sim, context=None, dst="victim", src="client0"):
    headers = {} if context is None else {CONTEXT_HEADER: context}
    pkt = Packet(src=src, dst=dst, headers=headers)
    fig2.topo.host(src).originate(pkt)
    sim.run(until=sim.now + 0.2)
    return pkt


class TestPolicyEvaluation:
    def test_require_matches_context(self):
        booster = make_booster()
        assert booster.evaluate("victim", {"device": "managed"})
        assert not booster.evaluate("victim", {"device": "byod"})
        assert not booster.evaluate("victim", {})

    def test_unprotected_destination_default_allow(self):
        booster = make_booster()
        assert booster.evaluate("elsewhere", {})

    def test_priority_orders_rules(self):
        booster = PoiseBooster(policies=[
            AccessPolicy("deny_guests", frozenset({"srv"}),
                         lambda ctx: ctx.get("role") == "guest",
                         allow=False, priority=20),
            AccessPolicy.require("anyone_managed", ["srv"],
                                 device="managed"),
        ])
        assert booster.evaluate("srv", {"device": "managed",
                                        "role": "employee"})
        assert not booster.evaluate("srv", {"device": "managed",
                                            "role": "guest"})


class TestEnforcement:
    def test_managed_device_admitted(self, deployed, sim):
        fig2, booster, agents = deployed
        pkt = send(fig2, sim, context={"device": "managed"})
        assert pkt.dropped is None
        assert fig2.topo.host("victim").received_count() == 1

    def test_byod_denied(self, deployed, sim):
        fig2, booster, agents = deployed
        pkt = send(fig2, sim, context={"device": "byod"})
        assert pkt.dropped == "poise_policy_denied"
        assert booster.programs["sL"].packets_denied == 1

    def test_unprotected_destination_untouched(self, deployed, sim):
        fig2, booster, agents = deployed
        pkt = send(fig2, sim, dst="decoy0")
        assert pkt.dropped is None

    def test_enforcement_active_in_default_mode(self, deployed, sim):
        """Access control is not mode gated — it IS the default."""
        fig2, booster, agents = deployed
        table = agents["sL"].mode_table
        assert not table.booster_enabled("poise")  # quarantine off...
        pkt = send(fig2, sim, context={"device": "byod"})
        assert pkt.dropped == "poise_policy_denied"  # ...but rules apply


class TestQuarantine:
    def test_contextless_allowed_normally(self, deployed, sim):
        fig2, booster, agents = deployed
        # Missing context evaluates against {}: default_deny applies for
        # the protected destination, so it is still denied by policy —
        # but as a policy denial, not a quarantine.
        pkt = send(fig2, sim, context=None)
        assert pkt.dropped == "poise_policy_denied"
        assert booster.programs["sL"].packets_quarantined == 0

    def test_quarantine_rejects_contextless_outright(self, deployed, sim):
        fig2, booster, agents = deployed
        agents["sL"].initiate("endpoint_compromise", "quarantine")
        sim.run(until=sim.now + 0.5)
        pkt = send(fig2, sim, context=None)
        assert pkt.dropped == "poise_no_context"
        assert booster.programs["sL"].packets_quarantined == 1

    def test_quarantine_still_admits_valid_context(self, deployed, sim):
        fig2, booster, agents = deployed
        agents["sL"].initiate("endpoint_compromise", "quarantine")
        sim.run(until=sim.now + 0.5)
        pkt = send(fig2, sim, context={"device": "managed"})
        assert pkt.dropped is None
