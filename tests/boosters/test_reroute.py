"""Tests for the Hula-style congestion-aware rerouting booster."""


from repro.boosters import CongestionRerouteBooster, HulaProbeProgram
from repro.netsim import Packet, PacketKind, Protocol
from tests.boosters.test_lfa_detector import (add_bot_flood,
                                              attacked_deployment)


def install_probe_engines(fig2):
    programs = {}
    for name in fig2.topo.switch_names:
        program = HulaProbeProgram("reroute", "reroute.probe_engine")
        fig2.topo.switch(name).install_program(program)
        programs[name] = program
    return programs


def send_probe_round(fig2, sim, origin="sR", scope=8):
    switch = fig2.topo.switch(origin)
    for neighbor, link in switch.links.items():
        if neighbor not in fig2.topo.switch_names:
            continue
        probe = Packet(src=origin, dst=neighbor, size_bytes=64,
                       kind=PacketKind.PROBE, proto=Protocol.UDP,
                       headers={"origin": origin, "sender": origin,
                                "max_util": 0.0, "path": [origin],
                                "scope": scope})
        link.send(probe)
    sim.run(until=sim.now + 0.5)


class TestProbeEngine:
    def test_probes_build_next_hop_tables(self, fig2, sim):
        programs = install_probe_engines(fig2)
        send_probe_round(fig2, sim)
        entry = programs["sL"].next_hop_toward("sR", sim.now)
        assert entry is not None
        assert entry.next_hop in {"s1", "s2", "s3", "s5"}

    def test_probe_prefers_uncongested_path(self, fig2, sim):
        programs = install_probe_engines(fig2)
        # Congest both short paths toward sR.
        for mid in ("s1", "s2"):
            link = fig2.topo.link(mid, "sR")
            link.fluid_load_bps = link.capacity_bps * 0.95
            back = fig2.topo.link("sL", mid)
            back.fluid_load_bps = back.capacity_bps * 0.95
        send_probe_round(fig2, sim)
        entry = programs["sL"].next_hop_toward("sR", sim.now)
        assert entry.next_hop in {"s3", "s5"}
        assert entry.utilization < 0.5

    def test_entries_expire(self, fig2, sim):
        programs = install_probe_engines(fig2)
        send_probe_round(fig2, sim)
        stale_time = sim.now + 10.0
        assert programs["sL"].next_hop_toward("sR", stale_time) is None

    def test_refresh_from_current_best_updates_even_if_worse(self, fig2,
                                                             sim):
        programs = install_probe_engines(fig2)
        send_probe_round(fig2, sim)
        first = programs["sL"].next_hop_toward("sR", sim.now)
        # Congestion appears on the chosen path; the next probe round
        # must raise the recorded utilization (no stale-good stickiness).
        link = fig2.topo.link("sL", first.next_hop)
        link.fluid_load_bps = link.capacity_bps * 0.99
        send_probe_round(fig2, sim)
        second = programs["sL"].next_hop_toward("sR", sim.now)
        assert (second.next_hop != first.next_hop
                or second.utilization > first.utilization)

    def test_probe_loops_are_killed(self, fig2, sim):
        programs = install_probe_engines(fig2)
        # A probe claiming to have visited this switch already must die.
        looped = Packet(src="s1", dst="sL", size_bytes=64,
                        kind=PacketKind.PROBE, proto=Protocol.UDP,
                        headers={"origin": "sR", "sender": "s1",
                                 "max_util": 0.1,
                                 "path": ["sR", "sL", "s1"], "scope": 5})
        fig2.topo.link("s1", "sL").send(looped)
        sim.run(until=sim.now + 0.1)
        assert programs["sL"].next_hop_toward("sR", sim.now) is None

    def test_state_roundtrip(self, fig2, sim):
        programs = install_probe_engines(fig2)
        send_probe_round(fig2, sim)
        clone = HulaProbeProgram("reroute", "clone")
        clone.import_state(programs["sL"].export_state())
        assert clone.best.keys() == programs["sL"].best.keys()


class TestFlowSteering:
    def test_suspicious_steered_normal_pinned(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        normal_paths = {}

        def snapshot():
            for flow in flows.normal():
                normal_paths[flow.flow_id] = flow.path.nodes

        sim.schedule(1.9, snapshot)
        add_bot_flood(net, fluid)
        sim.run(until=6.0)
        assert defense.reroute.reroutes_applied > 0
        # The flood was pinned through s1; Hula steering must have moved
        # every suspicious flow off the flooded link (where to — the
        # other short path or a detour — is its least-congestion choice).
        flooded = defense.detector.detections[0].link
        for flow in fluid.flows.malicious():
            assert flooded not in flow.path.links(), (
                f"attack flow still on flooded link: {flow.path}")
        for flow in flows.normal():
            assert flow.path.nodes == normal_paths[flow.flow_id]

    def test_reroute_everything_when_pinning_disabled(self, fig2_fluid,
                                                      sim):
        net, fluid, flows = fig2_fluid
        reroute = CongestionRerouteBooster(
            fluid=fluid, protected_gateways=["sR"], pin_normal=False)
        from repro.boosters import build_figure2_defense
        from repro.netsim import install_flow_route
        defense = build_figure2_defense(net, fluid, reroute=reroute)
        deployment = defense.setup(flows)
        for flow in flows:
            install_flow_route(net.topo, flow.path)
        fluid.start()
        add_bot_flood(net, fluid)
        sim.run(until=6.0)
        # The naive variant moves normal flows too (at least is allowed
        # to); every flow should have a live path either way.
        assert all(f.path is not None for f in fluid.flows)
        assert defense.reroute.reroutes_applied > 0

    def test_paths_restored_when_mode_ends(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid, detector_kwargs={"clear_sustain_s": 0.5})
        add_bot_flood(net, fluid)
        sim.run(until=5.0)
        attack_paths_during = {f.flow_id: f.path.nodes
                               for f in fluid.flows.malicious()}
        now = sim.now
        for flow in fluid.flows.malicious():
            flow.end_time = now
        sim.run(until=10.0)
        assert not defense.mitigation_active()
        assert defense.reroute._original_paths == {}
        # Malicious flows ended; normal flows sit on their TE paths.
        for flow in flows.normal():
            assert flow.path is not None
        del attack_paths_during
