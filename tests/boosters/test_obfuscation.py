"""Tests for the NetHide-style topology obfuscation booster."""


from repro.netsim import Path, TracerouteClient, default_path_for, \
    install_flow_route
from tests.boosters.test_lfa_detector import (add_bot_flood,
                                              attacked_deployment)


def trace(topo, sim, src, dst, timeout=0.4):
    tracer = TracerouteClient(topo, src, timeout_s=timeout)
    results = []
    tracer.trace(dst, callback=results.append)
    sim.run(until=sim.now + 1.0)
    return results[0]


class TestObfuscation:
    def test_suspicious_source_sees_pre_attack_path(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        topo = net.topo
        baseline = trace(topo, sim, "bot0", "victim")
        add_bot_flood(net, fluid)
        sim.run(until=6.0)
        assert defense.mitigation_active()
        # Forwarding state for the bots changed (suspicious flows were
        # steered), but the traceroute view must not.
        during = trace(topo, sim, "bot0", "victim")
        assert during.path == baseline.path
        forged = sum(p.replies_forged
                     for p in defense.obfuscation.programs.values())
        assert forged > 0

    def test_rerouted_pair_would_be_visible_without_obfuscation(
            self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        topo = net.topo
        add_bot_flood(net, fluid)  # flood pinned through s1
        sim.run(until=6.0)
        # Disable the obfuscator by force: suspicious sources list off.
        defense.obfuscation.obfuscate_all_sources = False
        defense.obfuscation.suspicious_sources = set()
        during = trace(topo, sim, "bot0", "decoy0")
        # Unprotected, the traceroute reveals the flow's *actual* steered
        # path — which is no longer the flooded s1 path the attacker
        # pinned, so the attacker would notice and roll.
        flow = next(f for f in fluid.flows.malicious()
                    if f.src == "bot0" and f.dst == "decoy0")
        actual_hops = [n for n in flow.path.nodes
                       if n in topo.switch_names] + ["decoy0"]
        assert during.path == actual_hops
        assert "s1" not in during.path

    def test_normal_sources_get_true_replies(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        topo = net.topo
        add_bot_flood(net, fluid)
        sim.run(until=6.0)
        result = trace(topo, sim, "client0", "victim")
        # client0's flow is pinned on its TE path; traceroute shows the
        # real hops for non-suspicious sources.
        expected = [n for n in flows.normal()[0].path.nodes
                    if n in topo.switch_names] + ["victim"]
        assert result.path == expected or result.reached

    def test_obfuscate_all_mode(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        defense.obfuscation.obfuscate_all_sources = True
        # Activate mitigation manually; no attack needed.
        deployment.agent("sL").initiate("lfa", "lfa_mitigate")
        sim.run(until=sim.now + 0.5)
        # Pin client0's pair somewhere else to create a visible diff.
        detour = Path.of(["client0", "sL", "s5", "s6", "sR", "victim"])
        install_flow_route(net.topo, detour)
        result = trace(net.topo, sim, "client0", "victim")
        claimed = default_path_for(net.topo, "client0", "victim")
        expected = [n for n in claimed.nodes
                    if n in net.topo.switch_names] + ["victim"]
        assert result.path == expected

    def test_claimed_path_cached_and_static(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        first = defense.obfuscation.claimed_path("bot0", "victim")
        # Even if forwarding changes, the claim must stay frozen.
        detour = Path.of(["bot0", "sL", "s3", "s4", "sR", "victim"])
        install_flow_route(net.topo, detour)
        second = defense.obfuscation.claimed_path("bot0", "victim")
        assert first.nodes == second.nodes

    def test_unknown_pair_returns_none(self, fig2_fluid, sim):
        net, fluid, flows, defense, deployment = attacked_deployment(
            fig2_fluid)
        assert defense.obfuscation.claimed_path("ghost", "victim") is None
