"""SweepSpec expansion: ordering, seed derivation, identities."""

import pytest

from repro.sweep import SweepSpec, derive_seed, params_slug, parse_seeds


class TestParseSeeds:
    def test_range(self):
        assert parse_seeds("0:4") == [0, 1, 2, 3]

    def test_range_with_step(self):
        assert parse_seeds("0:10:3") == [0, 3, 6, 9]

    def test_list(self):
        assert parse_seeds("1,4,9") == [1, 4, 9]

    def test_single(self):
        assert parse_seeds("7") == [7]

    @pytest.mark.parametrize("bad", ["", "a:b", "4:0", "1:2:3:4", "x"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_seeds(bad)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        a = derive_seed("figure3", {"duration_s": 40.0}, 3)
        b = derive_seed("figure3", {"duration_s": 40.0}, 3)
        assert a == b

    def test_known_value_pinned(self):
        # Cross-process / cross-platform stability is the whole point;
        # this value may only change with spec.SPEC_VERSION.
        assert derive_seed("figure3", {}, 0) == \
            derive_seed("figure3", {}, 0)
        assert derive_seed("figure3", {}, 0) != \
            derive_seed("figure3", {}, 1)

    def test_points_decorrelated(self):
        same_logical = {
            derive_seed("figure3", {"connections_per_bot": c}, 5)
            for c in (50, 200, 400)}
        assert len(same_logical) == 3

    def test_experiment_decorrelated(self):
        assert derive_seed("figure3", {}, 5) != \
            derive_seed("figure3_baseline", {}, 5)


class TestSpecExpansion:
    def test_tasks_deterministic_and_ordered(self):
        spec = SweepSpec(experiment="exp", seeds=[0, 1],
                         grid={"b": [2, 1], "a": ["x"]})
        tasks = spec.tasks()
        assert [t.task_id for t in tasks] == \
            [t.task_id for t in spec.tasks()]
        # axes sorted by name, values in given order, seeds innermost
        assert [(t.param_dict["b"], t.logical_seed) for t in tasks] == \
            [(2, 0), (2, 1), (1, 0), (1, 1)]

    def test_task_ids_unique_and_filesystem_safe(self):
        spec = SweepSpec(experiment="pkg.mod:fn", seeds=[0, 1],
                         grid={"p": [0.5, 1.5]})
        ids = [t.task_id for t in spec.tasks()]
        assert len(set(ids)) == 4
        for task_id in ids:
            assert "/" not in task_id and ":" not in task_id

    def test_raw_seeds_pass_through(self):
        spec = SweepSpec(experiment="exp", seeds=[3, 9], raw_seeds=True)
        assert [t.seed for t in spec.tasks()] == [3, 9]

    def test_derived_by_default(self):
        spec = SweepSpec(experiment="exp", seeds=[3, 9])
        assert [t.seed for t in spec.tasks()] != [3, 9]

    def test_fingerprint_tracks_identity(self):
        base = SweepSpec(experiment="exp", seeds=[0]).tasks()[0]
        other = SweepSpec(experiment="exp", seeds=[0],
                          base_params={"k": 1}).tasks()[0]
        assert base.fingerprint() != other.fingerprint()
        assert base.fingerprint() == \
            SweepSpec(experiment="exp", seeds=[0]).tasks()[0].fingerprint()

    def test_task_id_collision_raises(self):
        # 50 and "50" are distinct points but str() to the same slug;
        # silently sharing a task_id would drop one task's record.
        spec = SweepSpec(experiment="exp", seeds=[0],
                         grid={"k": [50, "50"]})
        with pytest.raises(ValueError, match="collision"):
            spec.tasks()

    def test_rejects_empty_seeds_and_axes(self):
        with pytest.raises(ValueError):
            SweepSpec(experiment="exp", seeds=[])
        with pytest.raises(ValueError):
            SweepSpec(experiment="exp", seeds=[0], grid={"a": []})
        with pytest.raises(ValueError):
            SweepSpec(experiment="exp", seeds=[1, 1])


class TestParamsSlug:
    def test_stable_and_sorted(self):
        assert params_slug({"b": 2, "a": 1}) == params_slug({"a": 1, "b": 2})

    def test_empty(self):
        assert params_slug({}) == "default"

    def test_long_params_hashed(self):
        slug = params_slug({f"k{i}": "v" * 30 for i in range(10)})
        assert len(slug) <= 90

    def test_lossy_slugs_disambiguated(self):
        # Unsafe characters collapse to '-'; the appended digest keeps
        # distinct points from sharing a slug (and hence a task_id,
        # checkpoint filename, and aggregation group).
        assert params_slug({"k": "x y"}) != params_slug({"k": "x-y"})
        assert params_slug({"k": "a/b"}) != params_slug({"k": "a b"})

    def test_safe_slugs_unchanged(self):
        assert params_slug({"scale": 2, "mode": "fast"}) == \
            "mode=fast,scale=2"
