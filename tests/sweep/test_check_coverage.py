"""scripts/check_coverage.py — the coverage-floor CI gate."""

import importlib.util
import json
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / \
    "check_coverage.py"
BASELINE = Path(__file__).resolve().parents[2] / \
    "coverage_baseline.json"


def load_script():
    spec = importlib.util.spec_from_file_location("check_coverage",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_report(tmp_path, percent):
    report = tmp_path / "coverage.json"
    report.write_text(json.dumps(
        {"totals": {"percent_covered": percent}}))
    return report


class TestFloor:
    def test_above_floor_passes(self, tmp_path):
        report = write_report(tmp_path, 99.0)
        assert load_script().main(
            [str(report), "--min-percent", "60"]) == 0

    def test_below_floor_fails(self, tmp_path, capsys):
        report = write_report(tmp_path, 12.5)
        assert load_script().main(
            [str(report), "--min-percent", "60"]) == 1
        assert "12.50%" in capsys.readouterr().err

    def test_missing_report_is_operational_error(self, tmp_path):
        assert load_script().main(
            [str(tmp_path / "nope.json"), "--min-percent", "60"]) == 2

    def test_malformed_report_is_operational_error(self, tmp_path):
        report = tmp_path / "coverage.json"
        report.write_text("{}")
        assert load_script().main(
            [str(report), "--min-percent", "60"]) == 2

    def test_committed_baseline_is_loadable(self, tmp_path):
        # The default baseline file must parse and carry the floor the
        # CI job will enforce.
        floor = load_script().load_floor(BASELINE)
        assert 0.0 < floor <= 100.0
        report = write_report(tmp_path, floor + 1.0)
        assert load_script().main(
            [str(report), "--baseline", str(BASELINE)]) == 0
