"""``python -m repro sweep`` argument parsing and wiring."""

import json

import pytest

from repro import telemetry
from repro.sweep import register_driver
from repro.sweep.cli import sweep_main


@register_driver("clitoy")
def clitoy_driver(seed, params):
    telemetry.metrics().counter("clitoy_runs_total").inc()
    scale = params.get("scale", 1)
    if not isinstance(scale, (int, float)):
        scale = len(str(scale))  # grid axes may carry string values
    return {"scalars": {"value": float(seed % 7) * scale}}


def run_cli(tmp_path, *extra):
    argv = ["clitoy", "--seeds", "0:2", "--out", str(tmp_path),
            "--quiet", *extra]
    code = sweep_main(argv)
    summary = json.loads((tmp_path / "sweep_summary.json").read_text())
    return code, summary


class TestGridFlag:
    def test_multi_numeric_axis(self, tmp_path):
        # README example: each comma-separated value is its own grid
        # point, not one tuple-valued point.
        code, summary = run_cli(tmp_path, "--grid",
                                "connections_per_bot=50,200,400")
        assert code == 0
        assert summary["spec"]["grid"] == \
            {"connections_per_bot": [50, 200, 400]}
        assert summary["n_tasks"] == 6  # 3 grid points x 2 seeds
        assert len(summary["aggregates"]) == 3

    def test_single_value_axis(self, tmp_path):
        code, summary = run_cli(tmp_path, "--grid", "scale=7")
        assert code == 0
        assert summary["spec"]["grid"] == {"scale": [7]}
        assert summary["n_tasks"] == 2

    def test_string_values(self, tmp_path):
        code, summary = run_cli(tmp_path, "--grid", "mode=fast,slow")
        assert code == 0
        assert summary["spec"]["grid"] == {"mode": ["fast", "slow"]}

    def test_mixed_types_parse_per_piece(self, tmp_path):
        code, summary = run_cli(tmp_path, "--grid", "scale=1,2.5,big")
        assert code == 0
        assert summary["spec"]["grid"] == {"scale": [1, 2.5, "big"]}

    def test_empty_piece_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            sweep_main(["clitoy", "--grid", "scale=1,,2",
                        "--out", str(tmp_path), "--quiet"])


class TestSetFlag:
    def test_values_are_literal_parsed(self, tmp_path):
        code, summary = run_cli(tmp_path, "--set", "scale=3",
                                "--set", "label=x")
        assert code == 0
        assert summary["spec"]["base_params"] == \
            {"scale": 3, "label": "x"}

    def test_missing_equals_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            sweep_main(["clitoy", "--set", "scale",
                        "--out", str(tmp_path), "--quiet"])


class TestSummaryContract:
    def test_wall_clock_families_embedded(self, tmp_path):
        # scripts/check_sweep.py reads the excluded-family list from
        # the summary rather than mirroring the package constant.
        from repro.sweep.runner import WALL_CLOCK_METRICS
        code, summary = run_cli(tmp_path)
        assert code == 0
        assert summary["wall_clock_metrics"] == list(WALL_CLOCK_METRICS)
