"""scripts/check_bench.py — the benchmark CI gate.

The regression this file pins: the gate's default BENCH paths are the
*committed* repo-root files, so a CI pipeline whose benchmark step
silently failed would pass against stale checked-in data.  With
``--newer-than MARKER`` every required BENCH file must be strictly
newer than the marker, and a missing or stale one is a *named hard
failure* with its own exit code (2), distinct from a genuine speedup
regression (1).
"""

import importlib.util
import json
import os
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / \
    "check_bench.py"


def load_script():
    spec = importlib.util.spec_from_file_location("check_bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def good_fluid():
    return {"speedup": 5.0, "steady_state_update_ms": 0.1,
            "telemetry": {"fluid_allocation_passes_total": 1,
                          "fluid_fastpath_hits_total": 10}}


def good_routing():
    return {"speedup": 5.0, "cached_ms": 0.2,
            "telemetry": {"routing_cache_hits_total:yen": 3}}


def good_dataplane():
    return {"structures": {"composite_speedup": 20.0},
            "pipeline": {"speedup": 8.0, "batch_pps": 1e6},
            "telemetry": {"dataplane_batch_packets_total": 1000,
                          "dataplane_batch_fallback_packets_total": 0}}


def good_shard():
    return {"scaling": 3.5, "speedup": 2.5, "workers1_overhead": 1.05,
            "cpu_count": 1, "single_engine_s": 50.0,
            "workers": {"1": {"seconds": 70.0, "allocation_passes": 25},
                        "8": {"seconds": 20.0, "allocation_passes": 200}}}


def write_benches(tmp_path):
    fluid = tmp_path / "BENCH_fluid.json"
    routing = tmp_path / "BENCH_routing.json"
    dataplane = tmp_path / "BENCH_dataplane.json"
    shard = tmp_path / "BENCH_shard.json"
    fluid.write_text(json.dumps(good_fluid()))
    routing.write_text(json.dumps(good_routing()))
    dataplane.write_text(json.dumps(good_dataplane()))
    shard.write_text(json.dumps(good_shard()))
    return fluid, routing, dataplane, shard


def gate_args(fluid, routing, dataplane, shard, *extra):
    return [str(fluid), "--routing-bench", str(routing),
            "--dataplane-bench", str(dataplane),
            "--shard-bench", str(shard)] + list(extra)


def set_mtime(path, when):
    os.utime(path, (when, when))


class TestFreshness:
    def test_fresh_files_pass(self, tmp_path):
        marker = tmp_path / "marker"
        marker.touch()
        set_mtime(marker, 1_000_000.0)
        benches = write_benches(tmp_path)
        for bench in benches:
            set_mtime(bench, 1_000_100.0)
        assert load_script().main(gate_args(
            *benches, "--newer-than", str(marker))) == 0

    def test_missing_required_file_is_named_hard_failure(
            self, tmp_path, capsys):
        marker = tmp_path / "marker"
        marker.touch()
        benches = write_benches(tmp_path)
        benches[2].unlink()  # the dataplane benchmark "never ran"
        script = load_script()
        rc = script.main(gate_args(
            *benches, "--newer-than", str(marker)))
        assert rc == script.EXIT_STALE == 2
        err = capsys.readouterr().err
        assert "BENCH_dataplane.json" in err
        assert "missing" in err
        assert "did not run" in err

    def test_stale_file_is_named_hard_failure(self, tmp_path, capsys):
        marker = tmp_path / "marker"
        marker.touch()
        set_mtime(marker, 1_000_000.0)
        benches = write_benches(tmp_path)
        set_mtime(benches[0], 999_000.0)  # older than the marker: stale
        for bench in benches[1:]:
            set_mtime(bench, 1_000_100.0)
        script = load_script()
        rc = script.main(gate_args(
            *benches, "--newer-than", str(marker)))
        assert rc == 2
        err = capsys.readouterr().err
        assert "STALE" in err
        assert "BENCH_fluid.json" in err
        assert "checked-in data" in err

    def test_stale_shard_bench_is_named_hard_failure(self, tmp_path,
                                                     capsys):
        marker = tmp_path / "marker"
        marker.touch()
        set_mtime(marker, 1_000_000.0)
        benches = write_benches(tmp_path)
        for bench in benches[:3]:
            set_mtime(bench, 1_000_100.0)
        set_mtime(benches[3], 999_000.0)
        rc = load_script().main(gate_args(
            *benches, "--newer-than", str(marker)))
        assert rc == 2
        assert "BENCH_shard.json" in capsys.readouterr().err

    def test_missing_marker_is_operational_error(self, tmp_path, capsys):
        benches = write_benches(tmp_path)
        rc = load_script().main(gate_args(
            *benches, "--newer-than", str(tmp_path / "never_touched")))
        assert rc == 2
        assert "marker" in capsys.readouterr().err

    def test_stale_beats_regression_exit_code(self, tmp_path):
        # A stale file AND a regression: exit 2 wins — there is no
        # point reporting a regression measured from data that this
        # run never produced.
        marker = tmp_path / "marker"
        marker.touch()
        set_mtime(marker, 1_000_000.0)
        benches = write_benches(tmp_path)
        bad = good_fluid()
        bad["speedup"] = 0.1
        benches[0].write_text(json.dumps(bad))
        set_mtime(benches[0], 999_000.0)
        for bench in benches[1:]:
            set_mtime(bench, 1_000_100.0)
        assert load_script().main(gate_args(
            *benches, "--newer-than", str(marker))) == 2


class TestRegressionGates:
    def test_all_good_passes_without_marker(self, tmp_path):
        benches = write_benches(tmp_path)
        assert load_script().main(gate_args(*benches)) == 0

    def test_speedup_regression_exits_one(self, tmp_path):
        benches = write_benches(tmp_path)
        bad = good_routing()
        bad["speedup"] = 1.1
        benches[1].write_text(json.dumps(bad))
        assert load_script().main(gate_args(*benches)) == 1

    def test_absent_file_without_marker_still_fails(self, tmp_path):
        # Even without the freshness marker, a named missing file is a
        # failure (exit 1) — never a silent pass.
        benches = write_benches(tmp_path)
        benches[0].unlink()
        assert load_script().main(gate_args(*benches)) == 1


class TestShardGate:
    def test_scaling_below_floor_exits_one(self, tmp_path, capsys):
        benches = write_benches(tmp_path)
        bad = good_shard()
        bad["scaling"] = 1.4
        benches[3].write_text(json.dumps(bad))
        rc = load_script().main(gate_args(
            *benches, "--min-shard-scaling", "2.0"))
        assert rc == 1
        assert "scaling regressed" in capsys.readouterr().err

    def test_floor_flag_loosens_the_gate(self, tmp_path):
        benches = write_benches(tmp_path)
        bad = good_shard()
        bad["scaling"] = 2.2  # below the 3.0 default, above CI's 2.0
        benches[3].write_text(json.dumps(bad))
        script = load_script()
        assert script.main(gate_args(*benches)) == 1
        assert script.main(gate_args(
            *benches, "--min-shard-scaling", "2.0")) == 0

    def test_missing_scaling_field_fails(self, tmp_path, capsys):
        benches = write_benches(tmp_path)
        benches[3].write_text(json.dumps({"speedup": 9.0}))
        assert load_script().main(gate_args(*benches)) == 1
        assert "scaling" in capsys.readouterr().err

    def test_zero_allocation_passes_fails(self, tmp_path, capsys):
        benches = write_benches(tmp_path)
        bad = good_shard()
        bad["workers"]["8"]["allocation_passes"] = 0
        benches[3].write_text(json.dumps(bad))
        assert load_script().main(gate_args(*benches)) == 1
        assert "zero allocation passes" in capsys.readouterr().err

    def test_missing_shard_bench_fails(self, tmp_path):
        benches = write_benches(tmp_path)
        benches[3].unlink()
        assert load_script().main(gate_args(*benches)) == 1

    def test_overhead_above_ceiling_exits_one(self, tmp_path, capsys):
        benches = write_benches(tmp_path)
        bad = good_shard()
        bad["workers1_overhead"] = 1.4  # the old blob-transport tax
        benches[3].write_text(json.dumps(bad))
        rc = load_script().main(gate_args(
            *benches, "--max-shard-overhead", "1.25"))
        assert rc == 1
        assert "overhead regressed" in capsys.readouterr().err

    def test_overhead_ceiling_flag_loosens_the_gate(self, tmp_path):
        benches = write_benches(tmp_path)
        bad = good_shard()
        bad["workers1_overhead"] = 1.2  # above the 1.10 default
        benches[3].write_text(json.dumps(bad))
        script = load_script()
        assert script.main(gate_args(*benches)) == 1
        assert script.main(gate_args(
            *benches, "--max-shard-overhead", "1.25")) == 0

    def test_missing_overhead_field_fails(self, tmp_path, capsys):
        benches = write_benches(tmp_path)
        bad = good_shard()
        del bad["workers1_overhead"]
        benches[3].write_text(json.dumps(bad))
        assert load_script().main(gate_args(*benches)) == 1
        assert "workers1_overhead" in capsys.readouterr().err
