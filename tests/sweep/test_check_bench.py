"""scripts/check_bench.py — the benchmark CI gate.

The regression this file pins: the gate's default BENCH paths are the
*committed* repo-root files, so a CI pipeline whose benchmark step
silently failed would pass against stale checked-in data.  With
``--newer-than MARKER`` every required BENCH file must be strictly
newer than the marker, and a missing or stale one is a *named hard
failure* with its own exit code (2), distinct from a genuine speedup
regression (1).
"""

import importlib.util
import json
import os
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / \
    "check_bench.py"


def load_script():
    spec = importlib.util.spec_from_file_location("check_bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def good_fluid():
    return {"speedup": 5.0, "steady_state_update_ms": 0.1,
            "telemetry": {"fluid_allocation_passes_total": 1,
                          "fluid_fastpath_hits_total": 10}}


def good_routing():
    return {"speedup": 5.0, "cached_ms": 0.2,
            "telemetry": {"routing_cache_hits_total:yen": 3}}


def good_dataplane():
    return {"structures": {"composite_speedup": 20.0},
            "pipeline": {"speedup": 8.0, "batch_pps": 1e6},
            "telemetry": {"dataplane_batch_packets_total": 1000,
                          "dataplane_batch_fallback_packets_total": 0}}


def write_benches(tmp_path):
    fluid = tmp_path / "BENCH_fluid.json"
    routing = tmp_path / "BENCH_routing.json"
    dataplane = tmp_path / "BENCH_dataplane.json"
    fluid.write_text(json.dumps(good_fluid()))
    routing.write_text(json.dumps(good_routing()))
    dataplane.write_text(json.dumps(good_dataplane()))
    return fluid, routing, dataplane


def gate_args(fluid, routing, dataplane, *extra):
    return [str(fluid), "--routing-bench", str(routing),
            "--dataplane-bench", str(dataplane)] + list(extra)


def set_mtime(path, when):
    os.utime(path, (when, when))


class TestFreshness:
    def test_fresh_files_pass(self, tmp_path):
        marker = tmp_path / "marker"
        marker.touch()
        set_mtime(marker, 1_000_000.0)
        fluid, routing, dataplane = write_benches(tmp_path)
        for bench in (fluid, routing, dataplane):
            set_mtime(bench, 1_000_100.0)
        assert load_script().main(gate_args(
            fluid, routing, dataplane, "--newer-than", str(marker))) == 0

    def test_missing_required_file_is_named_hard_failure(
            self, tmp_path, capsys):
        marker = tmp_path / "marker"
        marker.touch()
        fluid, routing, dataplane = write_benches(tmp_path)
        dataplane.unlink()  # the benchmark "never ran"
        script = load_script()
        rc = script.main(gate_args(
            fluid, routing, dataplane, "--newer-than", str(marker)))
        assert rc == script.EXIT_STALE == 2
        err = capsys.readouterr().err
        assert "BENCH_dataplane.json" in err
        assert "missing" in err
        assert "did not run" in err

    def test_stale_file_is_named_hard_failure(self, tmp_path, capsys):
        marker = tmp_path / "marker"
        marker.touch()
        set_mtime(marker, 1_000_000.0)
        fluid, routing, dataplane = write_benches(tmp_path)
        set_mtime(fluid, 999_000.0)  # older than the marker: stale
        set_mtime(routing, 1_000_100.0)
        set_mtime(dataplane, 1_000_100.0)
        script = load_script()
        rc = script.main(gate_args(
            fluid, routing, dataplane, "--newer-than", str(marker)))
        assert rc == 2
        err = capsys.readouterr().err
        assert "STALE" in err
        assert "BENCH_fluid.json" in err
        assert "checked-in data" in err

    def test_missing_marker_is_operational_error(self, tmp_path, capsys):
        fluid, routing, dataplane = write_benches(tmp_path)
        rc = load_script().main(gate_args(
            fluid, routing, dataplane,
            "--newer-than", str(tmp_path / "never_touched")))
        assert rc == 2
        assert "marker" in capsys.readouterr().err

    def test_stale_beats_regression_exit_code(self, tmp_path):
        # A stale file AND a regression: exit 2 wins — there is no
        # point reporting a regression measured from data that this
        # run never produced.
        marker = tmp_path / "marker"
        marker.touch()
        set_mtime(marker, 1_000_000.0)
        fluid, routing, dataplane = write_benches(tmp_path)
        bad = good_fluid()
        bad["speedup"] = 0.1
        fluid.write_text(json.dumps(bad))
        set_mtime(fluid, 999_000.0)
        set_mtime(routing, 1_000_100.0)
        set_mtime(dataplane, 1_000_100.0)
        assert load_script().main(gate_args(
            fluid, routing, dataplane, "--newer-than", str(marker))) == 2


class TestRegressionGates:
    def test_all_good_passes_without_marker(self, tmp_path):
        fluid, routing, dataplane = write_benches(tmp_path)
        assert load_script().main(
            gate_args(fluid, routing, dataplane)) == 0

    def test_speedup_regression_exits_one(self, tmp_path):
        fluid, routing, dataplane = write_benches(tmp_path)
        bad = good_routing()
        bad["speedup"] = 1.1
        routing.write_text(json.dumps(bad))
        assert load_script().main(
            gate_args(fluid, routing, dataplane)) == 1

    def test_absent_file_without_marker_still_fails(self, tmp_path):
        # Even without the freshness marker, a named missing file is a
        # failure (exit 1) — never a silent pass.
        fluid, routing, dataplane = write_benches(tmp_path)
        fluid.unlink()
        assert load_script().main(
            gate_args(fluid, routing, dataplane)) == 1
