"""scripts/check_sweep.py — the CI gate on sweep summaries."""

import importlib.util
import json
from pathlib import Path

from repro import telemetry
from repro.sweep import SweepSpec, register_driver, run_sweep
from repro.sweep.runner import WALL_CLOCK_METRICS

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / \
    "check_sweep.py"


def load_script():
    spec = importlib.util.spec_from_file_location("check_sweep", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@register_driver("gate_toy")
def gate_toy_driver(seed, params):
    telemetry.metrics().counter("gate_toy_total").inc(seed % 97 + 1)
    return {"scalars": {"value": float(seed % 97)}}


def write_sweep(tmp_path, name):
    out = tmp_path / name
    run_sweep(SweepSpec(experiment="gate_toy", seeds=[0, 1]),
              out_dir=out)
    return out / "sweep_summary.json"


class TestFallbackConstant:
    def test_matches_package_constant(self):
        # The script's fallback (for summaries predating the embedded
        # list) must never drift from the runner's authority.
        assert tuple(load_script().WALL_CLOCK_METRICS) == \
            tuple(WALL_CLOCK_METRICS)


class TestMatches:
    def test_identical_sweeps_match(self, tmp_path):
        a = write_sweep(tmp_path, "a")
        b = write_sweep(tmp_path, "b")
        assert load_script().main([str(a), "--matches", str(b)]) == 0

    def test_wall_clock_families_from_summary_are_excluded(self, tmp_path):
        # A family named in the summary's own wall_clock_metrics list
        # may differ between runs without failing the gate — even one
        # unknown to the script's fallback constant.
        paths = [write_sweep(tmp_path, "a"), write_sweep(tmp_path, "b")]
        for index, path in enumerate(paths):
            summary = json.loads(path.read_text())
            summary["merged_metrics"]["new_timer_seconds"] = \
                {"kind": "gauge", "value": float(index)}
            summary["wall_clock_metrics"].append("new_timer_seconds")
            path.write_text(json.dumps(summary))
        assert load_script().main(
            [str(paths[0]), "--matches", str(paths[1])]) == 0

    def test_deterministic_family_difference_fails(self, tmp_path):
        a = write_sweep(tmp_path, "a")
        b = write_sweep(tmp_path, "b")
        summary = json.loads(b.read_text())
        summary["merged_metrics"]["gate_toy_total"]["value"] += 1
        b.write_text(json.dumps(summary))
        assert load_script().main([str(a), "--matches", str(b)]) == 1
