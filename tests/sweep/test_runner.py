"""The sweep runner: checkpoints, resume, isolation, worker parity."""

import json

from repro import telemetry
from repro.sweep import (SweepSpec, register_driver, run_sweep,
                        stable_metrics)
from repro.sweep.runner import TASK_DIR


@register_driver("toy")
def toy_driver(seed, params):
    """Deterministic toy workload that exercises telemetry."""
    scale = params.get("scale", 1)
    telemetry.metrics().counter("toy_work_total").inc(seed % 97)
    telemetry.metrics().counter(
        "toy_runs_total", labelnames=("scale",)).labels(str(scale)).inc()
    return {
        "scalars": {"value": (seed % 97) * scale},
        "series": {"ramp": [[0.0, 0.0], [1.0, float(scale)]]},
    }


@register_driver("flaky")
def flaky_driver(seed, params):
    if seed == params.get("fail_seed"):
        raise RuntimeError("boom")
    return {"scalars": {"value": 1.0}}


def toy_spec(**kwargs):
    defaults = dict(experiment="toy", seeds=[0, 1, 2],
                    base_params={"scale": 2}, raw_seeds=True)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestCheckpoints:
    def test_one_checkpoint_per_task(self, tmp_path):
        result = run_sweep(toy_spec(), out_dir=tmp_path)
        files = sorted((tmp_path / TASK_DIR).glob("*.json"))
        assert len(files) == 3
        ids = {json.loads(f.read_text())["task_id"] for f in files}
        assert ids == {r["task_id"] for r in result.records}

    def test_summary_written(self, tmp_path):
        run_sweep(toy_spec(), out_dir=tmp_path)
        summary = json.loads((tmp_path / "sweep_summary.json").read_text())
        assert summary["executed"] == 3
        assert summary["spec"]["experiment"] == "toy"
        assert summary["aggregates"]

    def test_records_json_round_trip(self, tmp_path):
        result = run_sweep(toy_spec(), out_dir=tmp_path)
        for record in result.records:
            assert record["metrics"]["toy_work_total"]["kind"] == "counter"

    def test_no_out_dir_is_fine(self):
        result = run_sweep(toy_spec())
        assert result.executed == 3
        assert result.out_dir is None


class TestResume:
    def test_resume_skips_completed(self, tmp_path):
        first = run_sweep(toy_spec(), out_dir=tmp_path)
        second = run_sweep(toy_spec(), out_dir=tmp_path, resume=True)
        assert second.executed == 0
        assert second.skipped == 3
        assert second.aggregates == first.aggregates
        assert stable_metrics(second.merged_metrics) == \
            stable_metrics(first.merged_metrics)

    def test_resume_reruns_only_missing(self, tmp_path):
        result = run_sweep(toy_spec(), out_dir=tmp_path)
        victim = (tmp_path / TASK_DIR
                  / f"{result.records[1]['task_id']}.json")
        victim.unlink()
        second = run_sweep(toy_spec(), out_dir=tmp_path, resume=True)
        assert second.executed == 1
        assert second.skipped == 2

    def test_resume_reruns_corrupt_checkpoint(self, tmp_path):
        result = run_sweep(toy_spec(), out_dir=tmp_path)
        victim = (tmp_path / TASK_DIR
                  / f"{result.records[0]['task_id']}.json")
        victim.write_text("{ truncated by a crash")
        second = run_sweep(toy_spec(), out_dir=tmp_path, resume=True)
        assert second.executed == 1
        assert second.skipped == 2

    def test_resume_rejects_other_specs_checkpoints(self, tmp_path):
        run_sweep(toy_spec(), out_dir=tmp_path)
        # Same experiment and seeds, different params: same task ids
        # would collide, but fingerprints differ -> full re-run.
        changed = toy_spec(base_params={"scale": 2, "extra": 1})
        second = run_sweep(changed, out_dir=tmp_path, resume=True)
        assert second.skipped == 0
        assert second.executed == 3

    def test_non_resume_overwrites(self, tmp_path):
        run_sweep(toy_spec(), out_dir=tmp_path)
        second = run_sweep(toy_spec(), out_dir=tmp_path, resume=False)
        assert second.executed == 3
        assert second.skipped == 0


class TestTelemetryIsolation:
    def test_each_task_snapshot_is_isolated(self, tmp_path):
        result = run_sweep(toy_spec(seeds=[5, 11]), out_dir=tmp_path)
        by_seed = {r["logical_seed"]: r for r in result.records}
        assert by_seed[5]["metrics"]["toy_work_total"]["value"] == 5
        assert by_seed[11]["metrics"]["toy_work_total"]["value"] == 11

    def test_merged_metrics_sum_tasks(self, tmp_path):
        result = run_sweep(toy_spec(seeds=[5, 11]), out_dir=tmp_path)
        merged = result.merged_metrics
        assert merged["toy_work_total"]["value"] == 16
        assert merged["toy_runs_total"]["labels"]["2"] == 2

    def test_errors_recorded_not_raised(self):
        spec = SweepSpec(experiment="flaky", seeds=[0, 1, 2],
                         base_params={"fail_seed": 1}, raw_seeds=True)
        result = run_sweep(spec)
        assert not result.ok
        assert len(result.errors) == 1
        assert "boom" in result.errors[0]["error"]
        assert len(result.records) == 2


class TestWorkerParity:
    """The acceptance criterion in miniature: sharded == inline."""

    SPEC = dict(experiment="figure3", seeds=[0, 1],
                base_params={"duration_s": 10.0})

    def test_pool_matches_inline(self, tmp_path):
        inline = run_sweep(SweepSpec(**self.SPEC),
                           out_dir=tmp_path / "inline", workers=1)
        pooled = run_sweep(SweepSpec(**self.SPEC),
                           out_dir=tmp_path / "pooled", workers=2)
        assert inline.aggregates == pooled.aggregates
        assert stable_metrics(inline.merged_metrics) == \
            stable_metrics(pooled.merged_metrics)
        # Per-seed series, not just aggregates.
        for a, b in zip(inline.records, pooled.records):
            assert a["task_id"] == b["task_id"]
            assert a["seed"] == b["seed"]
            assert a["result"]["series"] == b["result"]["series"]
