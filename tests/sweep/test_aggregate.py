"""Aggregation: per-group scalar and series summaries."""

import math

from repro.sweep import aggregate_records, summarize_values


def record(group, seed, scalars=None, series=None):
    return {
        "task_id": f"exp--{group}--s{seed}",
        "group": group,
        "params": {"g": group},
        "logical_seed": seed,
        "result": {"scalars": scalars or {}, "series": series or {}},
    }


class TestSummarizeValues:
    def test_basic_stats(self):
        summary = summarize_values([1.0, 2.0, 3.0])
        assert summary["n"] == 3
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert math.isclose(summary["stddev"], 1.0)
        assert math.isclose(summary["ci95"], 1.96 * 1.0 / math.sqrt(3),
                            rel_tol=1e-3)

    def test_single_value_has_zero_spread(self):
        summary = summarize_values([5.0])
        assert summary["stddev"] == 0.0
        assert summary["ci95"] == 0.0


class TestAggregateRecords:
    def test_groups_aggregate_independently(self):
        records = [
            record("a", 0, {"m": 1.0}),
            record("a", 1, {"m": 3.0}),
            record("b", 0, {"m": 10.0}),
        ]
        out = aggregate_records(records)
        assert set(out) == {"a", "b"}
        assert out["a"]["scalars"]["m"]["mean"] == 2.0
        assert out["a"]["seeds"] == [0, 1]
        assert out["b"]["scalars"]["m"]["n"] == 1

    def test_order_independent(self):
        records = [record("a", s, {"m": float(s)}) for s in range(4)]
        assert aggregate_records(records) == \
            aggregate_records(list(reversed(records)))

    def test_sparse_scalars_allowed(self):
        # A scalar only some seeds report (e.g. convergence latency)
        # aggregates over the seeds that have it.
        records = [record("a", 0, {"lat": 1.0}),
                   record("a", 1, {})]
        out = aggregate_records(records)
        assert out["a"]["scalars"]["lat"]["n"] == 1

    def test_series_pointwise(self):
        records = [
            record("a", 0, series={"tp": [[0.0, 1.0], [1.0, 0.5]]}),
            record("a", 1, series={"tp": [[0.0, 3.0], [1.0, 0.7]]}),
        ]
        out = aggregate_records(records)
        points = out["a"]["series"]["tp"]
        assert [p["t"] for p in points] == [0.0, 1.0]
        assert points[0]["mean"] == 2.0
        assert points[0]["min"] == 1.0
        assert math.isclose(points[1]["max"], 0.7)
