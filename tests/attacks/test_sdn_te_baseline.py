"""Tests for the SDN-TE baseline defense."""

import pytest

from repro.baselines import SdnTeDefense
from repro.netsim import (FlowSet, FluidNetwork, GBPS, Path,
                          default_path_for, install_flow_route, make_flow)


@pytest.fixture
def scene(fig2):
    flows = FlowSet()
    for index, client in enumerate(fig2.client_hosts):
        flows.add(make_flow(client, fig2.victim, 1.5 * GBPS,
                            sport=7000 + index))
    fluid = FluidNetwork(fig2.topo, flows)
    return fig2, fluid, flows


class TestScheduling:
    def test_reconfigures_every_period(self, scene, sim):
        net, fluid, flows = scene
        defense = SdnTeDefense(net.topo, fluid, period_s=5.0).start()
        fluid.start()
        sim.run(until=16.0)
        assert [r.time for r in defense.records] == [5.0, 10.0, 15.0]

    def test_stop_halts_reconfiguration(self, scene, sim):
        net, fluid, flows = scene
        defense = SdnTeDefense(net.topo, fluid, period_s=5.0).start()
        sim.schedule(6.0, defense.stop)
        sim.run(until=20.0)
        assert len(defense.records) == 1

    def test_period_validated(self, scene):
        net, fluid, flows = scene
        with pytest.raises(ValueError):
            SdnTeDefense(net.topo, fluid, period_s=0.0)

    def test_deploy_latency_delays_effect(self, scene, sim):
        net, fluid, flows = scene
        for flow in flows:
            flow.set_path(Path.of([flow.src, "sL", "s1", "sR", flow.dst]))
        defense = SdnTeDefense(net.topo, fluid, period_s=5.0,
                               deploy_latency_s=1.0).start()
        fluid.start()
        mid_config = {}
        sim.schedule(5.5, lambda: mid_config.update(
            paths={f.flow_id: f.path.nodes for f in flows}))
        sim.run(until=8.0)
        # At t=5.5 the new configuration (computed at 5.0) is not yet
        # deployed: all flows still share the s1 path.
        assert all("s1" in nodes for nodes in mid_config["paths"].values())
        after = {f.path.nodes for f in flows}
        assert len(after) > 1  # deployed config spreads the flows


class TestCongestionResponse:
    def test_flooded_link_avoided(self, scene, sim):
        net, fluid, flows = scene
        # All normal flows squeezed onto s1 with an attack-grade load.
        for flow in flows:
            flow.set_path(Path.of([flow.src, "sL", "s1", "sR", flow.dst]))
        attack = make_flow("bot0", "decoy0", 12 * GBPS, weight=200,
                           malicious=True,
                           path=Path.of(["bot0", "sL", "s1", "sR",
                                         "decoy0"]))
        fluid.flows.add(attack)
        defense = SdnTeDefense(net.topo, fluid, period_s=5.0,
                               deploy_latency_s=0.1).start()
        fluid.start()
        sim.run(until=7.0)
        record = defense.records[0]
        assert ("s1", "sR") in record.congested_links
        # Normal flows were moved off the flooded link.
        for flow in flows:
            assert not flow.path.contains_link("s1", "sR",
                                               either_direction=False)
        assert record.flows_rerouted > 0

    def test_reconfiguration_visible_to_traceroute(self, scene, sim):
        net, fluid, flows = scene
        for flow in flows:
            flow.set_path(Path.of([flow.src, "sL", "s1", "sR", flow.dst]))
            install_flow_route(net.topo, flow.path)
        attack = make_flow("bot0", "decoy0", 12 * GBPS, weight=200,
                           malicious=True,
                           path=Path.of(["bot0", "sL", "s1", "sR",
                                         "decoy0"]))
        fluid.flows.add(attack)
        before = default_path_for(net.topo, "bot0", "victim")
        defense = SdnTeDefense(net.topo, fluid, period_s=5.0,
                               deploy_latency_s=0.1).start()
        fluid.start()
        sim.run(until=7.0)
        after = default_path_for(net.topo, "bot0", "victim")
        assert before.nodes != after.nodes, (
            "the SDN deploy must update switch tables, or the rolling "
            "attacker would have nothing to observe")

    def test_no_congestion_means_plain_min_max(self, scene, sim):
        net, fluid, flows = scene
        defense = SdnTeDefense(net.topo, fluid, period_s=5.0).start()
        fluid.start()
        sim.run(until=6.0)
        record = defense.records[0]
        assert record.congested_links == []
        assert record.max_utilization_planned <= 1.0
