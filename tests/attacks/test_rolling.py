"""Tests for the rolling attacker's feedback loop."""

import pytest

from repro.attacks import RollingAttacker
from repro.netsim import (FlowSet, FluidNetwork, Path, install_path_route)


@pytest.fixture
def scene(fig2):
    fluid = FluidNetwork(fig2.topo, FlowSet())
    attacker = RollingAttacker(
        fig2.topo, fluid, bots=fig2.bot_hosts, decoys=fig2.decoy_servers,
        victim=fig2.victim, check_period_s=0.5, reaction_delay_s=0.5,
        connections_per_bot=100, per_connection_bps=10e6)
    return fig2, fluid, attacker


class TestRolling:
    def test_no_route_change_no_roll(self, scene, sim):
        net, fluid, attacker = scene
        attacker.map_then_attack()
        fluid.start()
        sim.run(until=10.0)
        assert attacker.roll_count == 0

    def test_visible_route_change_triggers_roll(self, scene, sim):
        net, fluid, attacker = scene
        attacker.map_then_attack()
        fluid.start()
        sim.run(until=3.0)
        original = list(attacker.target_hops)
        # The operator reroutes victim-bound traffic onto a detour —
        # visibly (switch tables change, as an SDN TE deploy would).
        new_path = Path.of(["sL", "s3", "s4", "sR", "victim"])
        install_path_route(net.topo, new_path, dst="victim")
        sim.run(until=8.0)
        assert attacker.roll_count == 1
        assert attacker.target_hops == ["sL", "s3", "s4", "sR"]
        assert attacker.target_hops != original
        # The flood followed the roll.
        for flow in attacker.flows:
            assert ("s3", "s4") in flow.path.links()

    def test_roll_events_logged(self, scene, sim):
        net, fluid, attacker = scene
        attacker.map_then_attack()
        fluid.start()
        sim.run(until=3.0)
        install_path_route(net.topo,
                           Path.of(["sL", "s5", "s6", "sR", "victim"]),
                           dst="victim")
        sim.run(until=8.0)
        kinds = [e.kind for e in attacker.events]
        assert "roll_detected" in kinds and "roll" in kinds

    def test_max_rolls_bounds_adaptation(self, scene, sim):
        net, fluid, attacker = scene
        attacker.max_rolls = 1
        attacker.map_then_attack()
        fluid.start()
        sim.run(until=3.0)
        install_path_route(net.topo,
                           Path.of(["sL", "s3", "s4", "sR", "victim"]),
                           dst="victim")
        sim.run(until=6.0)
        install_path_route(net.topo,
                           Path.of(["sL", "s5", "s6", "sR", "victim"]),
                           dst="victim")
        sim.run(until=12.0)
        assert attacker.roll_count == 1

    def test_starvation_on_stable_path_reads_as_success(self, scene, sim):
        net, fluid, attacker = scene
        attacker.map_then_attack()
        fluid.start()
        sim.run(until=3.0)
        # Police the attack to a trickle without any visible route change
        # (what the FastFlex dropper does).
        for flow in attacker.flows:
            flow.police_rate_bps = 0.01 * flow.demand_bps
        sim.run(until=8.0)
        assert attacker.perceived_success
        assert attacker.roll_count == 0

    def test_reaction_delay_respected(self, scene, sim):
        net, fluid, attacker = scene
        attacker.reaction_delay_s = 2.0
        attacker.map_then_attack()
        fluid.start()
        sim.run(until=3.0)
        install_path_route(net.topo,
                           Path.of(["sL", "s3", "s4", "sR", "victim"]),
                           dst="victim")
        sim.run(until=20.0)
        detected = next(e.time for e in attacker.events
                        if e.kind == "roll_detected")
        rolled = next(e.time for e in attacker.events if e.kind == "roll")
        assert rolled - detected == pytest.approx(2.0, abs=0.01)
