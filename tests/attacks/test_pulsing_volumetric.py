"""Tests for pulsing and volumetric attackers."""

import pytest

from repro.attacks import (MultiVectorAttacker, PulsingAttacker,
                           VolumetricDdosAttacker)
from repro.netsim import FlowSet, FluidNetwork, GBPS


@pytest.fixture
def scene(fig2):
    return fig2, FluidNetwork(fig2.topo, FlowSet())


class TestPulsing:
    def test_demand_follows_square_wave(self, scene, sim):
        net, fluid = scene
        attacker = PulsingAttacker(
            net.topo, fluid, bots=net.bot_hosts[:2],
            decoys=net.decoy_servers, on_duration_s=1.0,
            off_duration_s=1.0, connections_per_bot=100,
            per_connection_bps=10e6)
        attacker.start()
        fluid.start()
        samples = {}
        for t in (0.5, 1.5, 2.5, 3.5):
            sim.schedule(t, lambda t=t: samples.update(
                {t: attacker.attack_offered()}))
        sim.run(until=4.0)
        assert samples[0.5] > 0 and samples[2.5] > 0
        assert samples[1.5] == 0 and samples[3.5] == 0
        assert attacker.pulses >= 2

    def test_pulse_durations_validated(self, scene):
        net, fluid = scene
        with pytest.raises(ValueError):
            PulsingAttacker(net.topo, fluid, net.bot_hosts,
                            net.decoy_servers, on_duration_s=0.0)

    def test_events_logged(self, scene, sim):
        net, fluid = scene
        attacker = PulsingAttacker(
            net.topo, fluid, bots=net.bot_hosts[:1],
            decoys=net.decoy_servers, on_duration_s=0.5,
            off_duration_s=0.5)
        attacker.start()
        sim.run(until=2.2)
        kinds = [e.kind for e in attacker.events]
        assert kinds.count("resume") >= 2
        assert kinds.count("pause") >= 2


class TestVolumetric:
    def test_udp_flood_saturates_victim_links(self, scene, sim):
        net, fluid = scene
        attacker = VolumetricDdosAttacker(
            net.topo, fluid, bots=net.bot_hosts, victim=net.victim,
            rate_per_bot_bps=5 * GBPS)
        attacker.launch()
        fluid.start()
        sim.run(until=1.0)
        assert not any(f.elastic for f in attacker.flows)
        # 30 Gbps of non-backing-off traffic: some victim-ward link is
        # overloaded.
        overloaded = [l for l in net.topo.links.values()
                      if l.utilization > 1.0]
        assert overloaded

    def test_duration_bounds_flood(self, scene, sim):
        net, fluid = scene
        attacker = VolumetricDdosAttacker(
            net.topo, fluid, bots=net.bot_hosts[:2], victim=net.victim)
        attacker.launch(duration_s=1.0)
        fluid.start()
        sim.run(until=2.0)
        assert attacker.attack_offered() == 0.0


class TestMultiVector:
    def test_both_vectors_active(self, scene, sim):
        net, fluid = scene
        attacker = MultiVectorAttacker(
            net.topo, fluid,
            lfa_bots=net.bot_hosts[:3], decoys=net.decoy_servers,
            lfa_victim=net.victim,
            ddos_bots=net.bot_hosts[3:], ddos_victim="client0",
            connections_per_bot=100, per_connection_bps=10e6)
        attacker.launch()
        fluid.start()
        sim.run(until=3.0)
        assert attacker.lfa.flows and attacker.ddos.flows
        assert all(f.elastic for f in attacker.lfa.flows)
        assert not any(f.elastic for f in attacker.ddos.flows)
        # Different destinations: mixed vectors hit different regions.
        assert {f.dst for f in attacker.lfa.flows} <= {"decoy0", "decoy1"}
        assert {f.dst for f in attacker.ddos.flows} == {"client0"}
