"""Tests for the Coremelt attacker and its defense end-to-end."""

import pytest

from repro.attacks.coremelt import CoremeltAttacker
from repro.boosters import build_figure2_defense
from repro.netsim import (FlowSet, FluidNetwork, GBPS, figure2_topology,
                          install_fast_reroute_alternates, install_flow_route,
                          install_host_routes, install_switch_routes,
                          make_flow)


@pytest.fixture
def two_sided(sim):
    net = figure2_topology(sim, n_bots=4, n_bots_right=3,
                           detour_capacity=2 * GBPS)
    install_host_routes(net.topo)
    install_switch_routes(net.topo)
    install_fast_reroute_alternates(net.topo)
    return net


class TestCoremelt:
    def test_needs_bots_on_both_sides(self, two_sided, sim):
        fluid = FluidNetwork(two_sided.topo, FlowSet())
        with pytest.raises(ValueError):
            CoremeltAttacker(two_sided.topo, fluid,
                             left_bots=two_sided.bot_hosts, right_bots=[])

    def test_eligible_pairs_cross_the_target(self, two_sided, sim):
        fluid = FluidNetwork(two_sided.topo, FlowSet())
        attacker = CoremeltAttacker(
            two_sided.topo, fluid, left_bots=two_sided.bot_hosts,
            right_bots=two_sided.right_bot_hosts)
        for target in two_sided.critical_links:
            for left, right, path in attacker.eligible_pairs(target):
                assert target in path.links()

    def test_launch_floods_the_core_without_a_victim_endpoint(
            self, two_sided, sim):
        fluid = FluidNetwork(two_sided.topo, FlowSet())
        attacker = CoremeltAttacker(
            two_sided.topo, fluid, left_bots=two_sided.bot_hosts,
            right_bots=two_sided.right_bot_hosts,
            connections_per_pair=300, per_connection_bps=10e6)
        # Pick whichever critical link has eligible pairs.
        target = max(two_sided.critical_links,
                     key=lambda l: len(attacker.eligible_pairs(l)))
        n_pairs = attacker.launch(target)
        assert n_pairs >= 1
        fluid.start()
        sim.run(until=1.0)
        link = two_sided.topo.link(*target)
        assert link.utilization > 0.95
        # No flow terminates at the victim: the core is the target.
        assert all(f.dst != "victim" for f in attacker.flows)


class TestCoremeltDefense:
    def test_fastflex_protects_transit_traffic(self, sim):
        net = figure2_topology(sim, n_bots=4, n_bots_right=3,
                               detour_capacity=2 * GBPS)
        flows = FlowSet()
        for index, client in enumerate(net.client_hosts):
            flows.add(make_flow(client, net.victim, 1.5 * GBPS,
                                sport=12_000 + index))
        fluid = FluidNetwork(net.topo, flows)
        defense = build_figure2_defense(net, fluid)
        deployment = defense.setup(flows)
        for flow in flows:
            install_flow_route(net.topo, flow.path)
        fluid.start()

        attacker = CoremeltAttacker(
            net.topo, fluid, left_bots=net.bot_hosts,
            right_bots=net.right_bot_hosts,
            connections_per_pair=200, per_connection_bps=10e6)

        def aim_and_fire():
            # Coremelt aims at whichever critical link its pairs cross.
            target = max(net.critical_links,
                         key=lambda l: len(attacker.eligible_pairs(l)))
            attacker.launch(target)

        sim.schedule(2.0, aim_and_fire)
        sim.run(until=12.0)

        assert defense.detector.detections, "LFA detector missed Coremelt"
        assert defense.mitigation_active()
        # The bot-pair flows were classified and policed despite having
        # no victim endpoint in common.
        assert all(f.suspicious for f in attacker.flows)
        goodput = fluid.normal_goodput() / (4 * 1.5 * GBPS)
        assert goodput > 0.9
