"""Tests for the Crossfire attacker."""

import pytest

from repro.attacks import CrossfireAttacker
from repro.netsim import FlowSet, FluidNetwork


@pytest.fixture
def scene(fig2):
    fluid = FluidNetwork(fig2.topo, FlowSet())
    return fig2, fluid


class TestMapping:
    def test_mapping_then_flood(self, scene, sim):
        net, fluid = scene
        attacker = CrossfireAttacker(
            net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
            victim=net.victim, connections_per_bot=100,
            per_connection_bps=10e6)
        attacker.map_then_attack()
        fluid.start()
        sim.run(until=3.0)
        assert attacker.observed_path is not None
        assert attacker.observed_path[0] == "sL"
        assert attacker.observed_path[-1] == "sR"
        assert len(attacker.flows) == len(net.bot_hosts)
        assert all(f.malicious for f in attacker.flows)

    def test_target_link_is_last_hop(self, scene, sim):
        net, fluid = scene
        attacker = CrossfireAttacker(
            net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
            victim=net.victim)
        attacker.map_then_attack()
        sim.run(until=3.0)
        assert attacker.target_link in {("s1", "sR"), ("s2", "sR")}

    def test_flows_cross_target_link(self, scene, sim):
        net, fluid = scene
        attacker = CrossfireAttacker(
            net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
            victim=net.victim)
        attacker.map_then_attack()
        fluid.start()
        sim.run(until=3.0)
        target = attacker.target_link
        for flow in attacker.flows:
            assert target in flow.path.links()

    def test_flows_are_low_rate_aggregates(self, scene, sim):
        net, fluid = scene
        attacker = CrossfireAttacker(
            net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
            victim=net.victim, connections_per_bot=200,
            per_connection_bps=5e6)
        attacker.map_then_attack()
        sim.run(until=3.0)
        for flow in attacker.flows:
            assert flow.weight == 200
            assert flow.demand_bps == 200 * 5e6
            assert flow.elastic  # TCP-like, indistinguishable

    def test_repin_moves_all_flows(self, scene, sim):
        net, fluid = scene
        attacker = CrossfireAttacker(
            net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
            victim=net.victim)
        attacker.map_then_attack()
        sim.run(until=3.0)
        attacker.repin_flood(["sL", "s3", "s4", "sR"])
        for flow in attacker.flows:
            assert ("s3", "s4") in flow.path.links()
        assert attacker.target_link == ("s4", "sR")

    def test_stop_all_flows(self, scene, sim):
        net, fluid = scene
        attacker = CrossfireAttacker(
            net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
            victim=net.victim)
        attacker.map_then_attack()
        fluid.start()
        sim.run(until=3.0)
        attacker.stop_all_flows()
        sim.run(until=4.0)
        assert attacker.attack_offered() == 0.0

    def test_validation(self, scene):
        net, fluid = scene
        with pytest.raises(ValueError):
            CrossfireAttacker(net.topo, fluid, bots=[], decoys=["decoy0"],
                              victim="victim")
