"""End-to-end tests of ``python -m repro.lint`` via subprocess."""

import json
import os
from pathlib import Path
import subprocess
import sys

REPO = Path(__file__).resolve().parents[2]

DIRTY = "import random\na = random.random()\n"


def run_lint(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True, text=True, env=env, cwd=str(REPO))


def test_clean_file_exits_zero(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    proc = run_lint(str(target))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s) in 1 file(s)" in proc.stdout


def test_violation_exits_one_and_names_rule_and_line(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    proc = run_lint(str(target))
    assert proc.returncode == 1
    assert "RPL001" in proc.stdout
    assert f"{target.as_posix()}:2:" in proc.stdout


def test_syntax_error_exits_one(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    proc = run_lint(str(target))
    assert proc.returncode == 1
    assert "parse error" in proc.stderr


def test_json_output_round_trips_and_is_stable(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    proc = run_lint(str(target), "--json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["files_checked"] == 1
    assert payload["parse_errors"] == []
    assert [f["rule"] for f in payload["findings"]] == ["RPL001"]
    assert payload["findings"][0]["line"] == 2
    # Byte-identical across invocations: sorted keys, sorted findings.
    proc2 = run_lint(str(target), "--json")
    assert proc.stdout == proc2.stdout


def test_select_runs_only_named_rules(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text("import random\nassert random.random()\n")
    proc = run_lint(str(target), "--select", "RPL005")
    assert proc.returncode == 1
    assert "RPL005" in proc.stdout
    assert "RPL001" not in proc.stdout


def test_ignore_skips_named_rules(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text("import random\nassert random.random()\n")
    proc = run_lint(str(target), "--ignore", "RPL001,RPL005")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_unknown_rule_code_exits_two(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    proc = run_lint(str(target), "--select", "RPL999")
    assert proc.returncode == 2
    assert "RPL999" in proc.stderr


def test_list_rules_names_all_ten():
    proc = run_lint("--list-rules")
    assert proc.returncode == 0
    for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
                 "RPL006", "RPL007", "RPL008", "RPL009", "RPL010"):
        assert code in proc.stdout


def test_project_mode_defaults_on_for_directories(tmp_path):
    (tmp_path / "a.py").write_text(
        'PAIR = ("x", "y")\n')
    (tmp_path / "b.py").write_text(
        'PAIR = ("x", "y")\n')
    proc = run_lint(str(tmp_path), "--select", "RPL007", "--json")
    payload = json.loads(proc.stdout)
    assert payload["project"] is True
    assert proc.returncode == 1
    assert [f["rule"] for f in payload["findings"]] == ["RPL007",
                                                        "RPL007"]


def test_project_mode_defaults_off_for_single_files(tmp_path):
    target = tmp_path / "a.py"
    target.write_text('PAIR = ("x", "y")\n')
    proc = run_lint(str(target), "--select", "RPL007", "--json")
    payload = json.loads(proc.stdout)
    assert payload["project"] is False
    assert proc.returncode == 0
    assert payload["findings"] == []


def test_no_project_forces_per_file_mode(tmp_path):
    (tmp_path / "a.py").write_text('PAIR = ("x", "y")\n')
    (tmp_path / "b.py").write_text('PAIR = ("x", "y")\n')
    proc = run_lint(str(tmp_path), "--no-project", "--select",
                    "RPL007")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_write_baseline_then_gate(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    baseline = tmp_path / "baseline.json"

    wrote = run_lint(str(target), "--baseline", str(baseline),
                     "--write-baseline")
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr

    # Grandfathered finding no longer fails the gate...
    gated = run_lint(str(target), "--baseline", str(baseline))
    assert gated.returncode == 0, gated.stdout + gated.stderr
    assert "1 baselined" in gated.stdout

    # ...but a new violation on another line still does.
    target.write_text(DIRTY + "b = random.random()\n")
    regressed = run_lint(str(target), "--baseline", str(baseline))
    assert regressed.returncode == 1
    assert ":3:" in regressed.stdout


def test_write_baseline_requires_baseline_flag(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    proc = run_lint(str(target), "--write-baseline")
    assert proc.returncode == 2
