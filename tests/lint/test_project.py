"""Whole-program layer tests: ProjectContext mechanics plus the
fixture *packages* for the cross-module rules (RPL007–RPL010).

Package fixtures follow the same ``# EXPECT: RPLNNN`` contract as the
flat pairs in test_rules.py, except expectations span several files:
every marked line in every module of a ``*_bad`` package must flag, and
the paired ``*_good`` package must be completely clean.
"""

from collections import Counter
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.project import (ProjectContext, clear_ast_cache,
                                UNRESOLVED, module_name_for)

from .test_rules import expected_lines

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_ast_cache()
    yield
    clear_ast_cache()


def write_tree(root, files):
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------

def test_module_names_climb_init_ancestors(tmp_path):
    write_tree(tmp_path, {
        "src/pkg/__init__.py": "",
        "src/pkg/sub/__init__.py": "",
        "src/pkg/sub/mod.py": "",
        "scripts/check_thing.py": "",
    })
    assert module_name_for(
        tmp_path / "src/pkg/sub/mod.py") == ("pkg.sub.mod", False)
    assert module_name_for(
        tmp_path / "src/pkg/sub/__init__.py") == ("pkg.sub", True)
    assert module_name_for(
        tmp_path / "scripts/check_thing.py") == ("check_thing", False)


# ----------------------------------------------------------------------
# Import graph
# ----------------------------------------------------------------------

def test_graph_resolves_relative_imports(tmp_path):
    root = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/alpha.py": "from .beta import helper\n",
        "pkg/beta.py": "def helper():\n    return 1\n",
        "pkg/gamma.py": "from . import alpha\n",
    })
    project = ProjectContext.build([str(root / "pkg")])
    assert project.imports_of("pkg.alpha") == ["pkg", "pkg.beta"]
    assert project.imports_of("pkg.gamma") == ["pkg", "pkg.alpha"]
    assert project.importers_of("pkg.beta") == ["pkg.alpha"]


def test_graph_adds_ancestor_package_edges(tmp_path):
    root = write_tree(tmp_path, {
        "pkg/__init__.py": "from . import sub\n",
        "pkg/sub/__init__.py": "VALUE = 1\n",
        "pkg/other.py": "import pkg.sub.deep\n",
        "pkg/sub/deep.py": "",
    })
    project = ProjectContext.build([str(root / "pkg")])
    # Importing pkg.sub.deep executes pkg and pkg.sub on the way down.
    assert project.imports_of("pkg.other") == ["pkg", "pkg.sub",
                                               "pkg.sub.deep"]


def test_closure_walks_transitive_and_implicit_edges(tmp_path):
    root = write_tree(tmp_path, {
        "pkg/__init__.py": "from . import catalog\n",
        "pkg/catalog.py": "UNPICKLABLE = None\n",
        "pkg/sub/__init__.py": "",
        "pkg/sub/root.py": "from ..catalog import UNPICKLABLE\n",
        "pkg/orphan.py": "",
    })
    project = ProjectContext.build([str(root / "pkg")])
    scope = project.closure(["pkg.sub.root"])
    # pkg.sub.root -> pkg.catalog (relative import), plus the implicit
    # ancestors pkg.sub and pkg; pkg/__init__ then pulls catalog too.
    assert scope == {"pkg.sub.root", "pkg.sub", "pkg", "pkg.catalog"}
    assert "pkg.orphan" not in scope


# ----------------------------------------------------------------------
# Cross-module constant resolution
# ----------------------------------------------------------------------

def test_constants_resolve_through_imports(tmp_path):
    root = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/timers.py": 'PHASE = "phase_seconds"\n',
        "pkg/runner.py": ("from .timers import PHASE\n"
                          'EXCLUDED = (PHASE, "barrier_seconds")\n'),
    })
    project = ProjectContext.build([str(root / "pkg")])
    assert project.resolve_constant("pkg.runner", "EXCLUDED") == (
        "phase_seconds", "barrier_seconds")
    assert project.resolve_constant("pkg.timers", "PHASE") == \
        "phase_seconds"
    assert project.resolve_constant(
        "pkg.runner", "MISSING") is UNRESOLVED


def test_dynamic_values_stay_unresolved(tmp_path):
    root = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/dyn.py": ("import os\n"
                       "HOME = os.environ['HOME']\n"
                       "PAIR = (HOME, 'x')\n"),
    })
    project = ProjectContext.build([str(root / "pkg")])
    assert project.resolve_constant("pkg.dyn", "HOME") is UNRESOLVED
    assert project.resolve_constant("pkg.dyn", "PAIR") is UNRESOLVED


# ----------------------------------------------------------------------
# AST cache: content-hash keyed, invalidated only by edits
# ----------------------------------------------------------------------

def test_cache_reuses_parses_and_invalidates_on_edit(tmp_path):
    root = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/stable.py": "A = 1\n",
        "pkg/edited.py": "B = 2\n",
    })
    first = ProjectContext.build([str(root / "pkg")])
    second = ProjectContext.build([str(root / "pkg")])
    by_path_first = {pf.display_path: pf for pf in first.files}
    by_path_second = {pf.display_path: pf for pf in second.files}
    for display, pf in by_path_first.items():
        # Unchanged content -> the very same parsed FileContext object.
        assert by_path_second[display].ctx is pf.ctx

    (root / "pkg/edited.py").write_text("B = 3\n")
    third = ProjectContext.build([str(root / "pkg")])
    by_path_third = {pf.display_path: pf for pf in third.files}
    for display, pf in by_path_first.items():
        same = by_path_third[display].ctx is pf.ctx
        assert same == ("edited" not in display)
    assert (by_path_third[str((root / "pkg/edited.py").as_posix())]
            .content_hash
            != by_path_first[str((root / "pkg/edited.py").as_posix())]
            .content_hash)


# ----------------------------------------------------------------------
# Determinism: identical finding order across repeated runs
# ----------------------------------------------------------------------

def test_finding_order_is_stable_across_builds():
    target = str(FIXTURES / "rpl007_bad")
    runs = [lint_paths([target], select=["RPL007"], project=True)
            for _ in range(3)]
    keys = [[(f.path, f.line, f.col, f.rule, f.message)
             for f in run.findings] for run in runs]
    assert keys[0] == keys[1] == keys[2]
    assert keys[0] == sorted(keys[0])
    assert keys[0], "fixture produced no findings to order"


# ----------------------------------------------------------------------
# Fixture packages: every EXPECT-marked line flags, good twins are clean
# ----------------------------------------------------------------------

PACKAGE_CODES = ("RPL007", "RPL008", "RPL010")


def package_expectations(package, code):
    """(display_path, line) -> count, from every module's markers."""
    want = Counter()
    for path in sorted(package.rglob("*.py")):
        for line, count in expected_lines(path.read_text(), code).items():
            want[(path.as_posix(), line)] += count
    return want


@pytest.mark.parametrize("code", PACKAGE_CODES)
def test_bad_package_flags_each_marked_line(code):
    package = FIXTURES / f"{code.lower()}_bad"
    want = package_expectations(package, code)
    assert want, f"{package.name} declares no EXPECT markers"
    result = lint_paths([str(package)], select=[code], project=True)
    assert result.parse_errors == []
    got = Counter((f.path, f.line) for f in result.findings)
    assert got == want, (
        f"{package.name}: expected {dict(sorted(want.items()))}, "
        f"got {dict(sorted(got.items()))}")


@pytest.mark.parametrize("code", PACKAGE_CODES)
def test_good_package_is_clean(code):
    package = FIXTURES / f"{code.lower()}_good"
    result = lint_paths([str(package)], select=[code], project=True)
    assert result.parse_errors == []
    assert result.findings == [], "\n".join(
        str(f) for f in result.findings)


def test_wall_clock_triplication_regression():
    """The exact PR-8/9 drift: three hand-copied WALL_CLOCK_METRICS
    definitions — every definition site must flag."""
    result = lint_paths([str(FIXTURES / "rpl007_bad")],
                        select=["RPL007"], project=True)
    flagged = {Path(f.path).name for f in result.findings}
    assert flagged == {"runner.py", "check_restore_gate.py",
                       "check_sweep_gate.py"}
    assert all("WALL_CLOCK_METRICS" in f.message
               for f in result.findings)


def test_missing_pipe_handler_regression():
    """A command sent with no dispatch arm and a dead arm both flag."""
    result = lint_paths([str(FIXTURES / "rpl008_bad")],
                        select=["RPL008"], project=True)
    messages = sorted(f.message for f in result.findings)
    assert len(messages) == 2
    assert "'collect'" in messages[0] and "never sent" in messages[0]
    assert "'shutdown'" in messages[1] and "no dispatch arm" \
        in messages[1]


def test_project_rules_skip_per_file_mode():
    """Without project=True the cross-module rules stay silent even on
    a tree full of violations."""
    result = lint_paths([str(FIXTURES / "rpl007_bad")],
                        select=["RPL007"], project=False)
    assert result.findings == []
