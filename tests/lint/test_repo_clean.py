"""The repo's own src + scripts trees must be lint-clean (empty
baseline) — per-file rules *and* the whole-program pass."""

from pathlib import Path

from repro.lint import lint_paths

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_has_no_findings():
    result = lint_paths([str(REPO / "src")])
    assert result.parse_errors == []
    assert result.findings == [], (
        "reprolint findings in src (fix them or suppress inline with a "
        "justification):\n" + "\n".join(str(f) for f in result.findings))


def test_full_tree_is_clean_in_project_mode():
    """What CI runs: `python -m repro.lint src scripts` — the per-file
    rules plus the cross-module contracts (RPL007–RPL010)."""
    result = lint_paths([str(REPO / "src"), str(REPO / "scripts")],
                        project=True)
    assert result.parse_errors == []
    assert result.findings == [], (
        "reprolint findings in src/scripts (fix them or suppress "
        "inline with a justification):\n"
        + "\n".join(str(f) for f in result.findings))


def test_src_tree_was_actually_scanned():
    result = lint_paths([str(REPO / "src")])
    # Guard against a silent no-op (e.g. a broken path glob): the tree
    # has dozens of modules and a handful of justified suppressions.
    assert result.files_checked > 50
    assert result.suppressed >= 4
