"""Baseline mechanics: grandfather known findings, fail on new ones."""

import json

import pytest

from repro.lint import (lint_source, load_baseline, split_by_baseline,
                        write_baseline)

DIRTY = "import random\na = random.random()\n"


def _findings(source, path="pkg/mod.py"):
    return lint_source(source, display_path=path).findings


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, _findings(DIRTY))
    baseline = load_baseline(path)
    assert set(baseline) == {"RPL001:pkg/mod.py:2"}
    # The file itself is sorted, versioned JSON.
    raw = json.loads(path.read_text())
    assert raw["version"] == 1
    assert list(raw["findings"]) == sorted(raw["findings"])


def test_grandfathered_findings_are_hidden(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, _findings(DIRTY))
    new, grandfathered, stale = split_by_baseline(
        _findings(DIRTY), load_baseline(path))
    assert new == []
    assert len(grandfathered) == 1
    assert stale == []


def test_new_finding_still_fails(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, _findings(DIRTY))
    grown = DIRTY + "b = random.random()\n"
    new, grandfathered, stale = split_by_baseline(
        _findings(grown), load_baseline(path))
    assert [(f.rule, f.line) for f in new] == [("RPL001", 3)]
    assert [(f.rule, f.line) for f in grandfathered] == [("RPL001", 2)]
    assert stale == []


def test_fixed_findings_become_stale_keys(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, _findings(DIRTY))
    new, grandfathered, stale = split_by_baseline(
        _findings("a = 1\n"), load_baseline(path))
    assert new == []
    assert grandfathered == []
    assert stale == ["RPL001:pkg/mod.py:2"]


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("[]\n")
    with pytest.raises(ValueError):
        load_baseline(path)
    path.write_text("{not json")
    with pytest.raises(ValueError):
        load_baseline(path)


def test_committed_repo_baseline_is_empty():
    from pathlib import Path
    repo = Path(__file__).resolve().parents[2]
    baseline = load_baseline(repo / "reprolint_baseline.json")
    assert baseline == {}
