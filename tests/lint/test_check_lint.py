"""The CI gate script: scripts/check_lint.py."""

import json
from pathlib import Path
import subprocess
import sys

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "check_lint.py"


def run_gate(*argv):
    return subprocess.run([sys.executable, str(SCRIPT), *argv],
                          capture_output=True, text=True)


def test_gate_passes_on_this_repo():
    proc = run_gate()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout


def test_gate_fails_naming_rule_and_file(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text("import random\na = random.random()\n")
    proc = run_gate("--root", str(tmp_path))
    assert proc.returncode == 1
    assert "RPL001" in proc.stderr
    assert "mod.py" in proc.stderr
    assert ":2:" in proc.stderr


def test_gate_respects_baseline(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text("import random\na = random.random()\n")
    baseline = tmp_path / "reprolint_baseline.json"
    baseline.write_text(
        '{"version": 1, "findings": '
        '{"RPL001:src/mod.py:2": "grandfathered"}}\n')
    proc = run_gate("--root", str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "grandfathered" in proc.stdout

    # A second, non-baselined violation still fails.
    (src / "mod.py").write_text(
        "import random\na = random.random()\nb = random.random()\n")
    proc = run_gate("--root", str(tmp_path))
    assert proc.returncode == 1
    assert ":3:" in proc.stderr


def test_gate_runs_project_rules(tmp_path):
    """The gate must catch cross-module findings, not just per-file
    ones: a constant duplicated across two modules fails it."""
    src = tmp_path / "src"
    src.mkdir()
    (src / "a.py").write_text('PAIR = ("x", "y")\n')
    (src / "b.py").write_text('PAIR = ("x", "y")\n')
    proc = run_gate("--root", str(tmp_path))
    assert proc.returncode == 1
    assert "RPL007" in proc.stderr


def test_gate_writes_json_artifact(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text("import random\na = random.random()\n")
    out = tmp_path / "lint_findings.json"
    proc = run_gate("--root", str(tmp_path), "--json-out", str(out))
    assert proc.returncode == 1
    payload = json.loads(out.read_text())
    assert payload["project"] is True
    assert payload["files_checked"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["RPL001"]


def test_gate_reports_stale_baseline_entries(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text("a = 1\n")
    baseline = tmp_path / "reprolint_baseline.json"
    baseline.write_text(
        '{"version": 1, "findings": '
        '{"RPL001:src/mod.py:2": "long since fixed"}}\n')
    proc = run_gate("--root", str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "stale" in proc.stdout
