"""Suppression directive mechanics: the sanctioned escape hatch."""

from repro.lint import lint_source


def test_line_suppression_silences_exactly_that_rule():
    src = ("import random\n"
           "x = random.random()  # reprolint: disable=RPL001\n")
    result = lint_source(src)
    assert result.findings == []
    assert result.suppressed == 1


def test_wrong_code_does_not_suppress():
    src = ("import random\n"
           "x = random.random()  # reprolint: disable=RPL002\n")
    result = lint_source(src)
    assert [f.rule for f in result.findings] == ["RPL001"]
    assert result.suppressed == 0


def test_suppression_is_line_scoped():
    src = ("import random\n"
           "a = random.random()  # reprolint: disable=RPL001\n"
           "b = random.random()\n")
    result = lint_source(src)
    assert [(f.rule, f.line) for f in result.findings] == [("RPL001", 3)]
    assert result.suppressed == 1


def test_suppression_silences_only_one_rule_on_a_shared_line():
    # One line violating two rules; suppressing one leaves the other.
    src = ("import random\n"
           "import time\n"
           "x = [random.random(), time.time()]"
           "  # reprolint: disable=RPL002\n")
    result = lint_source(src)
    assert [f.rule for f in result.findings] == ["RPL001"]
    assert result.suppressed == 1


def test_comma_separated_codes_suppress_both():
    src = ("import random\n"
           "import time\n"
           "x = [random.random(), time.time()]"
           "  # reprolint: disable=RPL001, RPL002\n")
    result = lint_source(src)
    assert result.findings == []
    assert result.suppressed == 2


def test_file_suppression_covers_every_line():
    src = ("# reprolint: disable-file=RPL001\n"
           "import random\n"
           "a = random.random()\n"
           "b = random.random()\n")
    result = lint_source(src)
    assert result.findings == []
    assert result.suppressed == 2


def test_directive_inside_string_literal_is_inert():
    src = ('DOC = "# reprolint: disable-file=RPL001"\n'
           "import random\n"
           "a = random.random()\n")
    result = lint_source(src)
    assert [f.rule for f in result.findings] == ["RPL001"]
    assert result.suppressed == 0
