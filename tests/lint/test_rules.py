"""Fixture-driven rule tests.

Every ``*_bad.py`` fixture line carrying an ``# EXPECT: RPLNNN`` marker
must produce exactly that finding at exactly that line (a marker may
list a code twice for lines that violate a rule twice, e.g. tuple
unpacking onto two guarded fields).  The paired ``*_good.py`` fixture
— the corrected version of the same code — must be completely clean
under the same rule.
"""

from collections import Counter
from pathlib import Path
import re

import pytest

from repro.lint import lint_source, rule_codes

FIXTURES = Path(__file__).parent / "fixtures"
_EXPECT = re.compile(
    r"#\s*EXPECT:\s*([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)")


def expected_lines(source: str, code: str) -> Counter:
    """line -> how many findings of ``code`` the fixture declares."""
    expect: Counter = Counter()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT.search(line)
        if match is None:
            continue
        for marked in match.group(1).split(","):
            if marked.strip() == code:
                expect[lineno] += 1
    return expect


#: Rules whose contract spans modules; their fixtures are *packages*
#: under fixtures/ (exercised by tests/lint/test_project.py) rather
#: than single-file pairs.  RPL009 is per-file but path-scoped, so it
#: keeps a flat pair (the fixture opts in via its docstring).
PROJECT_CODES = ("RPL007", "RPL008", "RPL010")
PER_FILE_CODES = tuple(code for code in rule_codes()
                       if code not in PROJECT_CODES)


def test_all_ten_rules_are_registered():
    assert rule_codes() == ["RPL001", "RPL002", "RPL003", "RPL004",
                            "RPL005", "RPL006", "RPL007", "RPL008",
                            "RPL009", "RPL010"]


@pytest.mark.parametrize("code", PER_FILE_CODES)
def test_every_per_file_rule_has_fixture_pair(code):
    assert (FIXTURES / f"{code.lower()}_bad.py").is_file()
    assert (FIXTURES / f"{code.lower()}_good.py").is_file()


@pytest.mark.parametrize("code", PROJECT_CODES)
def test_every_project_rule_has_fixture_packages(code):
    assert (FIXTURES / f"{code.lower()}_bad").is_dir()
    assert (FIXTURES / f"{code.lower()}_good").is_dir()


@pytest.mark.parametrize("code", PER_FILE_CODES)
def test_bad_fixture_flags_each_marked_line(code):
    path = FIXTURES / f"{code.lower()}_bad.py"
    source = path.read_text()
    want = expected_lines(source, code)
    assert want, f"{path.name} declares no EXPECT markers"
    result = lint_source(source, display_path=path.as_posix(),
                         select=[code])
    assert result.parse_errors == []
    assert all(f.rule == code for f in result.findings)
    got = Counter(f.line for f in result.findings)
    assert got == want, (
        f"{path.name}: expected findings at {dict(sorted(want.items()))}, "
        f"got {dict(sorted(got.items()))}")


@pytest.mark.parametrize("code", PER_FILE_CODES)
def test_good_fixture_is_clean(code):
    path = FIXTURES / f"{code.lower()}_good.py"
    result = lint_source(path.read_text(), display_path=path.as_posix(),
                         select=[code])
    assert result.parse_errors == []
    assert result.findings == [], "\n".join(
        str(f) for f in result.findings)


# ----------------------------------------------------------------------
# Regression pins for the exact bug class that motivated RPL001: the
# PR 3 topology.py `__import__("random")` and unseeded Random().
# ----------------------------------------------------------------------

def test_dunder_import_random_is_flagged():
    result = lint_source('rng = __import__("random")\n',
                         select=["RPL001"])
    assert [(f.rule, f.line) for f in result.findings] == [("RPL001", 1)]


def test_unseeded_random_instance_is_flagged():
    result = lint_source("import random\nstream = random.Random()\n",
                         select=["RPL001"])
    assert [(f.rule, f.line) for f in result.findings] == [("RPL001", 2)]


def test_seeded_random_instance_is_clean():
    result = lint_source("import random\nstream = random.Random(7)\n",
                         select=["RPL001"])
    assert result.findings == []


def test_import_alias_is_resolved():
    result = lint_source("import random as rnd\nx = rnd.random()\n",
                         select=["RPL001"])
    assert [(f.rule, f.line) for f in result.findings] == [("RPL001", 2)]


def test_from_import_is_resolved():
    result = lint_source("from random import random\nx = random()\n",
                         select=["RPL001"])
    assert [(f.rule, f.line) for f in result.findings] == [("RPL001", 2)]


# ----------------------------------------------------------------------
# Rule-level mechanics that deserve pins beyond the fixture pairs.
# ----------------------------------------------------------------------

def test_rpl002_exempts_telemetry_package():
    source = "import time\nstamp = time.time()\n"
    inside = lint_source(source,
                         display_path="src/repro/telemetry/timers.py",
                         select=["RPL002"])
    outside = lint_source(source,
                          display_path="src/repro/core/engine.py",
                          select=["RPL002"])
    assert inside.findings == []
    assert [f.line for f in outside.findings] == [2]


def test_rpl003_exempts_contract_implementers():
    source = "def f(link):\n    link.capacity_bps = 1\n"
    inside = lint_source(source,
                         display_path="src/repro/netsim/links.py",
                         select=["RPL003"])
    outside = lint_source(source,
                          display_path="src/repro/boosters/x.py",
                          select=["RPL003"])
    assert inside.findings == []
    assert [f.line for f in outside.findings] == [2]


def test_findings_are_sorted_and_stable():
    source = ("import random\n"
              "b = random.random()\n"
              "assert b\n"
              "a = random.random()\n")
    result = lint_source(source)
    keys = [(f.path, f.line, f.col, f.rule) for f in result.findings]
    assert keys == sorted(keys)
    assert [f.rule for f in result.findings] == ["RPL001", "RPL005",
                                                 "RPL001"]
