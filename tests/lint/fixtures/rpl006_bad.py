"""Hash-randomized iteration order materializing into results."""


def emit_series(sources, windows):
    for src in set(sources) | set(windows):  # EXPECT: RPL006
        yield src


def keys_loop(table):
    for key in table.keys():  # EXPECT: RPL006
        yield key


def materialize(names):
    return list({n.strip() for n in names})  # EXPECT: RPL006


def label(parts):
    return ",".join(set(parts))  # EXPECT: RPL006


def indexed(items):
    return enumerate(set(items))  # EXPECT: RPL006


def fanout(targets):
    return {t: [] for t in {"a", "b"} | targets}  # EXPECT: RPL006
