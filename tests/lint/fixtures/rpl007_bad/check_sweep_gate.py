"""Sweep gate copy: third definition of the same exclusion list."""

WALL_CLOCK_METRICS = ("phase_duration_seconds", "shard_barrier_seconds")  # EXPECT: RPL007


def stable(snapshot, excluded=WALL_CLOCK_METRICS):
    return {name: family for name, family in snapshot.items()
            if name not in excluded}
