"""Sweep runner copy: builds the tuple through a cross-module Name."""

from timers import PHASE_METRIC

WALL_CLOCK_METRICS = (PHASE_METRIC, "shard_barrier_seconds")  # EXPECT: RPL007


def stable_metrics(snapshot):
    return {name: family for name, family in snapshot.items()
            if name not in WALL_CLOCK_METRICS}
