"""Shared metric names (the single-source module the copies ignore)."""

PHASE_METRIC = "phase_duration_seconds"
