"""Restore gate copy: the same tuple, hand-spelled as literals."""

WALL_CLOCK_METRICS = ("phase_duration_seconds", "shard_barrier_seconds")  # EXPECT: RPL007


def stable(snapshot):
    return {name: family for name, family in snapshot.items()
            if name not in WALL_CLOCK_METRICS}
