"""Statically mergeable telemetry registrations."""
from repro.telemetry import DEFAULT_BUCKETS, metrics

REG = metrics()

RETRY_METRIC = "sweep_retries_total"


def literal_counter():
    return REG.counter("tasks_done_total", "completed tasks")


def module_constant_name():
    # A same-file module-level string constant is as statically known
    # as an inline literal (timers.py names PHASE_METRIC this way).
    return REG.counter(RETRY_METRIC, "tasks retried")


def explicit_buckets():
    return REG.histogram("op_latency_seconds", "operation latency",
                         buckets=DEFAULT_BUCKETS)


def literal_labels():
    return REG.gauge("queue_depth", "depth by stage",
                     labelnames=("stage",))
