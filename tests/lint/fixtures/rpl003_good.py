"""All mutations flow through the sanctioned Topology/Link APIs."""


def throttle(topo, key, new_bps):
    topo.set_capacity(key, new_bps)


def cut(link):
    link.set_down()


def restore(link):
    link.set_up()


def splice(topo, a, b, capacity_bps, delay_s):
    topo.add_duplex_link(a, b, capacity_bps, delay_s)


def drop(topo, a, b):
    topo.remove_link(a, b)


def headroom(topo, key):
    # Reads are fine; only writes bypass the version counter.
    return topo.links[key].capacity_bps
