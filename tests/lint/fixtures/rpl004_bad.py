"""Telemetry registrations that break MetricsRegistry.merge()."""
from repro.telemetry import metrics

REG = metrics()


def dynamic_name(name):
    return REG.counter(name, "computed name")  # EXPECT: RPL004


def wrong_suffix():
    return REG.counter("tasks_failed", "missing _total suffix")  # EXPECT: RPL004


def no_buckets():
    return REG.histogram("op_latency_seconds", "no explicit bounds")  # EXPECT: RPL004


def dynamic_name_and_no_buckets(make_name):
    return REG.histogram(make_name(), "two violations at once")  # EXPECT: RPL004, RPL004


def computed_labels(names):
    return REG.gauge("queue_depth", "depth", labelnames=names)  # EXPECT: RPL004
