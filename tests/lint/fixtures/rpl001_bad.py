"""Every flavour of unseeded randomness RPL001 must flag."""
import importlib
import random

import numpy as np


def jitter():
    return random.random()  # EXPECT: RPL001


def make_stream():
    return random.Random()  # EXPECT: RPL001


def os_entropy():
    return random.SystemRandom()  # EXPECT: RPL001


def reseed_global():
    random.seed(42)  # EXPECT: RPL001


def numpy_global():
    return np.random.rand(4)  # EXPECT: RPL001


def numpy_unseeded():
    return np.random.default_rng()  # EXPECT: RPL001


def smuggled():
    rng = __import__("random")  # EXPECT: RPL001
    return rng.random()


def smuggled_importlib():
    return importlib.import_module("random")  # EXPECT: RPL001
