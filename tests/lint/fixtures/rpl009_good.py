"""Shard-window aggregation; parity folds here must use math.fsum."""

import math


def barrier_total(samples):
    return math.fsum(samples)


def merge_windows(windows):
    return math.fsum(w.barrier_seconds for w in windows)


def weighted(series, weights):
    return math.fsum(s * w for s, w in zip(series, weights))


def region_count(regions):
    # Integer counting is fine: the comprehension is blessed by len().
    return sum(len(r.hosts) for r in regions)


def active_count(flags):
    return sum(1 if flag else 0 for flag in flags)


def grow_int_accumulator(batches):
    seen = 0
    for batch in batches:
        seen += len(batch)
    return seen
