"""Simulation clock and telemetry timers only."""
import time

from repro.telemetry import phase_timer


def elapsed(sim):
    return sim.now


def profiled(registry):
    with phase_timer("allocate", registry=registry) as timing:
        pass
    return timing.elapsed


def operator_facing_profiling():
    # The sanctioned escape hatch: wall-clock by design, excluded from
    # determinism comparisons, justified at the suppression site.
    return time.perf_counter()  # reprolint: disable=RPL002


def schedule(sim, delay_s):
    return sim.now + delay_s
