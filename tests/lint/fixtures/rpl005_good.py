"""Real exceptions that survive ``python -O``."""


def place(best_path):
    if best_path is None:
        raise RuntimeError("no candidate path survived filtering")
    return best_path


def check_window(window):
    if not window:
        raise ValueError("empty window")
    return len(window)
