"""Restore gate: imports the exclusion list instead of copying it."""

from timers import WALL_CLOCK_METRICS


def stable(snapshot):
    return {name: family for name, family in snapshot.items()
            if name not in WALL_CLOCK_METRICS}
