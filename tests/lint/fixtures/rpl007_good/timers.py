"""Shared metric names — the one definition everyone imports."""

PHASE_METRIC = "phase_duration_seconds"
WALL_CLOCK_METRICS = (PHASE_METRIC, "shard_barrier_seconds")
