"""Direct Topology/Link state writes outside the sanctioned APIs."""


def throttle(link):
    link.capacity_bps = 1e9  # EXPECT: RPL003


def degrade(link, factor):
    link.capacity_bps /= factor  # EXPECT: RPL003


def cut(link):
    link.up = False  # EXPECT: RPL003


def cut_pair(link_a, link_b):
    link_a.up, link_b.up = False, False  # EXPECT: RPL003, RPL003


def splice(topo, key, link):
    topo.links[key] = link  # EXPECT: RPL003


def drop(topo, key):
    del topo.links[key]  # EXPECT: RPL003


def merge(topo, extra):
    topo.nodes.update(extra)  # EXPECT: RPL003


def bump(topo):
    topo.version += 1  # EXPECT: RPL003
