"""Coordinator that sends a command the worker cannot dispatch."""

from worker import region_worker_main  # noqa: F401


class Coordinator:
    def __init__(self, handles):
        self.handles = handles

    def _fan(self, make_message):
        for index, handle in enumerate(self.handles):
            handle.conn.send(make_message(index))
        return [handle.conn.recv() for handle in self.handles]

    def build(self):
        return self._fan(lambda index: ("build", index))

    def advance(self, window):
        return self._fan(lambda index: ("window", window))

    def shutdown(self):
        for handle in self.handles:
            handle.conn.send(("shutdown",))  # EXPECT: RPL008
        for handle in self.handles:
            handle.conn.send(("exit",))
