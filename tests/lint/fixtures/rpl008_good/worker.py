"""Resident worker loop whose dispatch arms match the sends exactly."""


def region_worker_main(conn, region):
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "exit":
            conn.send(("ok", None))
            break
        if kind == "build":
            region.build(message[1])
            reply = ("ok", region.fingerprint())
        elif kind == "window":
            reply = ("ok", region.advance(message[1]))
        elif kind == "collect":
            reply = ("ok", region.samples())
        else:
            reply = ("error", f"unknown command {kind!r}")
        conn.send(reply)
