"""Seeded streams only; RPL001 stays quiet."""
import random

import numpy as np

from repro.sweep.spec import derive_seed


def make_stream(seed):
    return random.Random(seed)


def derived_stream(experiment, params, logical_seed):
    return random.Random(derive_seed(experiment, params, logical_seed))


def labeled_stream(sim):
    return random.Random(f"probe:{sim.seed}")


def numpy_stream(seed):
    return np.random.default_rng(seed)


def draw(rng):
    return rng.random()
