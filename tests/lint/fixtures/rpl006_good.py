"""Sorted iteration or order-insensitive consumers."""


def emit_series(sources, windows):
    for src in sorted(set(sources) | set(windows)):
        yield src


def keys_loop(table):
    for key in sorted(table.keys()):
        yield key


def materialize(names):
    return sorted({n.strip() for n in names})


def total(flows):
    return sum(f.rate for f in flows)


def count_unique(names):
    return len({n.strip() for n in names})


def widest(links):
    return max(set(links))


def any_down(status):
    return any(flag for flag in set(status))
