"""Wall-clock reads in simulation/experiment logic."""
import time
from datetime import date, datetime


def stamp_run():
    return time.time()  # EXPECT: RPL002


def profile_block():
    return time.perf_counter()  # EXPECT: RPL002


def monotonic_budget():
    return time.monotonic()  # EXPECT: RPL002


def label_now():
    return datetime.now()  # EXPECT: RPL002


def label_date():
    return date.today()  # EXPECT: RPL002
