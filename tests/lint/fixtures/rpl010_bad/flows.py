"""Flow bookkeeping with one registered and one rogue ID sequence."""

import itertools

#: Registered in GLOBAL_SEQUENCES — survives checkpoint/restore.
_flow_ids = itertools.count(1)

#: Not registered: restored runs re-issue order IDs from 1.
_order_ids = itertools.count(1)  # EXPECT: RPL010


def new_flow():
    return next(_flow_ids)


def new_order():
    return next(_order_ids)
