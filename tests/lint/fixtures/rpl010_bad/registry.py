"""The checkpoint machinery stub: globals registry + pack_state."""

GLOBAL_SEQUENCES = (
    ("rpl010_bad.flows", "_flow_ids"),
)


def pack_state(state):
    return repr(state).encode()
