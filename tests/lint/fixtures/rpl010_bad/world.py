"""A checkpoint root holding unpicklable state."""

from . import flows
from .registry import pack_state

#: Module-level open handle: reachable from any pickle of this module's
#: state and never picklable.
AUDIT_LOG = open("audit.log", "a")  # EXPECT: RPL010


class World:
    #: Class-level lambda default — closures don't pickle.
    on_drop = lambda packet: None  # EXPECT: RPL010

    def __init__(self, hosts):
        self.hosts = hosts
        self.flow = flows.new_flow()
        #: Instance-level lambda — the classic checkpoint killer.
        self.classify = lambda packet: packet.kind  # EXPECT: RPL010
        #: A live generator cannot be pickled either.
        self.pending = (host for host in hosts)  # EXPECT: RPL010

    def snapshot_bytes(self):
        return pack_state(self.__dict__)
