"""Checkpoint-safety fixture: a world whose snapshot roots reach
unpicklable bindings and an unregistered module-level ID sequence."""
