"""A checkpoint root holding only picklable state."""

from . import flows
from .registry import pack_state

#: Path, not handle: reopened on demand, pickles as a string.
AUDIT_LOG_PATH = "audit.log"


def _drop_packet(packet):
    return None


def _classify(packet):
    return packet.kind


class World:
    on_drop = staticmethod(_drop_packet)

    def __init__(self, hosts):
        self.hosts = hosts
        self.flow = flows.new_flow()
        self.classify = _classify
        self.pending = list(hosts)

    def snapshot_bytes(self):
        return pack_state(self.__dict__)
