"""Checkpoint-safe counterpart: everything the roots reach pickles."""
