"""The checkpoint machinery stub: globals registry + pack_state."""

GLOBAL_SEQUENCES = (
    ("rpl010_good.flows", "_flow_ids"),
    ("rpl010_good.flows", "_order_ids"),
)


def pack_state(state):
    return repr(state).encode()
