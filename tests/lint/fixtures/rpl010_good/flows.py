"""Flow bookkeeping; every module-level sequence is registered."""

import itertools

_flow_ids = itertools.count(1)
_order_ids = itertools.count(1)


def new_flow():
    return next(_flow_ids)


def new_order():
    return next(_order_ids)
