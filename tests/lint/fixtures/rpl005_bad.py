"""Asserts vanish under ``python -O``; raise real exceptions."""


def place(best_path):
    assert best_path is not None  # EXPECT: RPL005
    return best_path


def check_window(window):
    assert window, "empty window"  # EXPECT: RPL005
    return len(window)
