"""Shard-window aggregation; parity folds here must use math.fsum."""


def barrier_total(samples):
    return sum(samples)  # EXPECT: RPL009


def merge_windows(windows):
    total = 0.0
    for window in windows:
        total += window.barrier_seconds  # EXPECT: RPL009
    return total


def weighted(series, weights):
    return sum(s * w for s, w in zip(series, weights))  # EXPECT: RPL009
