"""Tests for the per-flow state table."""

import pytest

from repro.dataplane import FlowTable, TcpState


class TestObservation:
    def test_new_flow_gets_entry(self):
        table = FlowTable("t")
        entry = table.observe("flow1", now=1.0, size_bytes=100)
        assert entry.packets == 1
        assert entry.bytes == 100
        assert entry.first_seen == 1.0

    def test_counters_accumulate(self):
        table = FlowTable("t")
        table.observe("f", 1.0, size_bytes=100)
        entry = table.observe("f", 2.0, size_bytes=200)
        assert entry.packets == 2
        assert entry.bytes == 300
        assert entry.age == 1.0

    def test_rate_ewma_tracks_throughput(self):
        table = FlowTable("t", rate_ewma_alpha=1.0)
        table.observe("f", 0.0, size_bytes=0)
        entry = table.observe("f", 1.0, size_bytes=1250)  # 10 kbit in 1 s
        assert entry.rate_bps == pytest.approx(10_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowTable("t", capacity=0)
        with pytest.raises(ValueError):
            FlowTable("t", rate_ewma_alpha=0.0)


class TestTcpStateMachine:
    def test_syn_then_ack_establishes(self):
        table = FlowTable("t")
        table.observe("f", 1.0, syn=True)
        assert table.get("f").tcp_state == TcpState.SYN_SEEN
        table.observe("f", 2.0, ack=True)
        assert table.get("f").tcp_state == TcpState.ESTABLISHED

    def test_fin_closes(self):
        table = FlowTable("t")
        table.observe("f", 1.0, syn=True)
        table.observe("f", 2.0, ack=True)
        table.observe("f", 3.0, fin=True)
        assert table.get("f").tcp_state == TcpState.CLOSED

    def test_rst_closes_from_any_state(self):
        table = FlowTable("t")
        table.observe("f", 1.0, rst=True)
        assert table.get("f").tcp_state == TcpState.CLOSED

    def test_plain_data_stays_new(self):
        table = FlowTable("t")
        table.observe("f", 1.0)
        assert table.get("f").tcp_state == TcpState.NEW

    def test_fresh_syn_reopens_closed_flow(self):
        # Regression: a reused port (same 5-tuple) starting a new
        # handshake after FIN used to stay CLOSED forever, evading the
        # LFA persistent-flow query.
        table = FlowTable("t")
        table.observe("f", 1.0, syn=True)
        table.observe("f", 2.0, ack=True)
        table.observe("f", 3.0, fin=True)
        assert table.get("f").tcp_state == TcpState.CLOSED
        table.observe("f", 4.0, syn=True)
        assert table.get("f").tcp_state == TcpState.SYN_SEEN
        table.observe("f", 5.0, ack=True)
        assert table.get("f").tcp_state == TcpState.ESTABLISHED

    def test_straggler_syn_ack_does_not_reopen(self):
        # A SYN+ACK after close is a retransmitted straggler from the old
        # connection, not a fresh handshake.
        table = FlowTable("t")
        table.observe("f", 1.0, rst=True)
        table.observe("f", 2.0, syn=True, ack=True)
        assert table.get("f").tcp_state == TcpState.CLOSED


class TestEviction:
    def test_lru_evicts_oldest_touched(self):
        table = FlowTable("t", capacity=2)
        table.observe("a", 1.0)
        table.observe("b", 2.0)
        table.observe("a", 3.0)  # refresh a
        table.observe("c", 4.0)  # evicts b
        assert "a" in table and "c" in table and "b" not in table
        assert table.evictions == 1

    def test_expire_idle(self):
        table = FlowTable("t")
        table.observe("old", 1.0)
        table.observe("fresh", 9.0)
        removed = table.expire_idle(now=10.0, idle_timeout_s=5.0)
        assert removed == 1
        assert "fresh" in table and "old" not in table

    def test_len_tracks_entries(self):
        table = FlowTable("t", capacity=10)
        for i in range(4):
            table.observe(i, float(i))
        assert len(table) == 4


class TestLfaQuery:
    def test_persistent_low_rate_selects_suspects(self):
        table = FlowTable("t", rate_ewma_alpha=1.0)
        # Long-lived, slow, established flow: the Crossfire signature.
        table.observe("slow", 0.0, syn=True)
        table.observe("slow", 0.5, ack=True, size_bytes=10)
        table.observe("slow", 10.0, size_bytes=10)
        # Fast flow: same age, high rate.
        table.observe("fast", 0.0, syn=True)
        table.observe("fast", 0.5, ack=True, size_bytes=10)
        table.observe("fast", 10.0, size_bytes=10_000_000)
        # Young flow: low rate but too new.
        table.observe("young", 9.9, syn=True)
        table.observe("young", 10.0, ack=True, size_bytes=10)

        suspects = table.persistent_low_rate(min_age_s=5.0,
                                             max_rate_bps=1e6)
        keys = {entry.key for entry in suspects}
        assert keys == {"slow"}

    def test_closed_flows_not_suspicious(self):
        table = FlowTable("t", rate_ewma_alpha=1.0)
        table.observe("gone", 0.0, syn=True)
        table.observe("gone", 10.0, fin=True, size_bytes=10)
        assert table.persistent_low_rate(5.0, 1e9) == []


class TestStateTransfer:
    def test_roundtrip(self):
        table = FlowTable("t")
        table.observe("a", 1.0, size_bytes=10, syn=True)
        table.observe("a", 2.0, size_bytes=20, ack=True)
        table.observe("b", 3.0, size_bytes=30)
        clone = FlowTable("t")
        clone.import_state(table.export_state())
        assert len(clone) == 2
        entry = clone.get("a")
        assert entry.packets == 2
        assert entry.tcp_state == TcpState.ESTABLISHED
        assert entry.bytes == 30

    def test_roundtrip_preserves_extra_and_evictions(self):
        # Regression: export_state used to drop FlowEntry.extra (booster
        # suspicion scores etc.) and the eviction counter, so a migrated
        # detector restarted with amnesia about both.
        table = FlowTable("t", capacity=2)
        table.observe("a", 1.0)
        table.get("a").extra["suspicion"] = 0.75
        table.observe("b", 2.0)
        table.observe("c", 3.0)  # evicts a
        assert table.evictions == 1
        clone = FlowTable("t", capacity=2)
        clone.import_state(table.export_state())
        assert clone.evictions == 1
        assert clone.get("b").extra == {}
        # Mutating the clone must not leak back into the source.
        table.get("b").extra["suspicion"] = 0.1
        assert clone.get("b").extra == {}

    def test_roundtrip_extra_values_survive(self):
        table = FlowTable("t")
        table.observe("a", 1.0)
        table.get("a").extra.update({"suspicion": 0.5, "digest": [1, 2]})
        clone = FlowTable("t")
        clone.import_state(table.export_state())
        assert clone.get("a").extra == {"suspicion": 0.5, "digest": [1, 2]}

    def test_import_legacy_snapshot_without_new_fields(self):
        # Pre-fix snapshots carry neither "evictions" nor per-entry
        # "extra"; they must still import cleanly.
        table = FlowTable("t")
        table.observe("a", 1.0)
        state = table.export_state()
        del state["evictions"]
        for record in state["entries"]:
            del record["extra"]
        clone = FlowTable("t")
        clone.import_state(state)
        assert clone.evictions == 0
        assert clone.get("a").extra == {}
