"""Tests for the XOR-parity FEC codec."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane import FecDecoder, FecEncoder, loss_survival_probability

words_strategy = st.lists(st.integers(0, 2**32 - 1), max_size=40)


class TestEncoding:
    def test_parity_is_group_xor(self):
        encoder = FecEncoder(group_size=4)
        symbols = encoder.encode([1, 2, 4, 8])
        parity = [s for s in symbols if s.is_parity]
        assert len(parity) == 1
        assert parity[0].value == 1 ^ 2 ^ 4 ^ 8

    def test_partial_group_gets_parity(self):
        symbols = FecEncoder(group_size=4).encode([7, 9])
        parity = [s for s in symbols if s.is_parity]
        assert parity[0].value == 7 ^ 9

    def test_negative_word_rejected(self):
        with pytest.raises(ValueError):
            FecEncoder().encode([-1])

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            FecEncoder(group_size=0)
        with pytest.raises(ValueError):
            FecDecoder(group_size=0)

    def test_overhead_ratio(self):
        encoder = FecEncoder(group_size=4)
        assert encoder.overhead_ratio(8) == pytest.approx(0.25)
        assert encoder.overhead_ratio(0) == 0.0


class TestDecoding:
    @settings(max_examples=40, deadline=None)
    @given(words=words_strategy)
    def test_lossless_roundtrip(self, words):
        symbols = FecEncoder(group_size=4).encode(words)
        decoded, recovered = FecDecoder(group_size=4).decode(
            symbols, len(words))
        assert decoded == list(words)
        assert recovered == 0

    @settings(max_examples=40, deadline=None)
    @given(words=st.lists(st.integers(0, 2**32 - 1), min_size=1,
                          max_size=40),
           seed=st.integers(0, 10_000))
    def test_any_single_loss_per_group_recovers(self, words, seed):
        rng = random.Random(seed)
        symbols = FecEncoder(group_size=4).encode(words)
        # Drop exactly one random *data* symbol from one group.
        data_symbols = [s for s in symbols if not s.is_parity]
        victim = rng.choice(data_symbols)
        kept = [s for s in symbols if s is not victim]
        decoded, recovered = FecDecoder(group_size=4).decode(
            kept, len(words))
        assert decoded == list(words)
        assert recovered == 1

    def test_double_loss_in_group_unrecoverable(self):
        words = [10, 20, 30, 40]
        symbols = FecEncoder(group_size=4).encode(words)
        kept = [s for s in symbols if not s.is_parity][2:]  # lose 2 data
        decoded, recovered = FecDecoder(group_size=4).decode(kept, 4)
        assert decoded[:2] == [None, None]
        assert decoded[2:] == [30, 40]
        assert recovered == 0

    def test_lost_parity_alone_is_harmless(self):
        words = [1, 2, 3]
        symbols = [s for s in FecEncoder(group_size=4).encode(words)
                   if not s.is_parity]
        decoded, recovered = FecDecoder(group_size=4).decode(symbols, 3)
        assert decoded == words


class TestSurvivalModel:
    def test_zero_loss_always_survives(self):
        assert loss_survival_probability(0.0, 4) == 1.0

    def test_total_loss_never_survives(self):
        assert loss_survival_probability(1.0, 4) == pytest.approx(0.0)

    def test_monotone_in_loss(self):
        probs = [loss_survival_probability(p / 10, 4) for p in range(11)]
        assert probs == sorted(probs, reverse=True)

    def test_smaller_groups_survive_more(self):
        assert loss_survival_probability(0.2, 2) > \
            loss_survival_probability(0.2, 8)

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            loss_survival_probability(1.5, 4)
