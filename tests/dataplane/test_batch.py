"""Property tests: batch kernels are byte-identical to their sequential twins.

Every vectorized method on the data-plane structures (``update_batch``,
``add_batch``, ``observe_batch``, ...) promises the *exact* end state the
equivalent sequence of scalar calls produces — the contract that lets the
batch engine swap paths freely.  These tests drive both paths with the
same randomized workloads over 50 seeds and compare exported state and
query results, including the nasty edges: ``width_bits=1`` saturation,
table-full LRU eviction, and runs of repeated keys that exercise
HashPipe's run-coalescing.
"""

import random
import zlib

import pytest

from repro.dataplane import (BloomFilter, CountMinSketch, FlowTable,
                             HashPipe, PacketBatch, RegisterArray,
                             encode_keys, hash_batch, salt_seed,
                             stable_hash)

SEEDS = range(50)


def random_keys(rng, n, universe=40):
    """A key stream with deliberate runs (same key repeated), the case
    HashPipe's batch path coalesces."""
    keys = []
    while len(keys) < n:
        key = f"k{rng.randrange(universe)}"
        for _ in range(rng.choice([1, 1, 1, 2, 3, 5])):
            keys.append(key)
            if len(keys) >= n:
                break
    return keys


class TestHashBatch:
    @pytest.mark.parametrize("salt", [0, 1, 7, 123])
    def test_matches_stable_hash(self, salt):
        values = ["a", "b", ("x", 1), 42, 3.5, None, "a"]
        assert hash_batch(values, salt) == [stable_hash(v, salt)
                                            for v in values]

    def test_precomputed_encoding_path(self):
        values = [("f", i) for i in range(20)]
        encoded = encode_keys(values)
        for salt in (0, 3):
            assert (hash_batch(values, salt, encoded=encoded)
                    == [stable_hash(v, salt) for v in values])

    def test_salt_seed_composes_crc(self):
        # The decomposition the whole vectorization rests on:
        # crc32(a + b) == crc32(b, crc32(a)).
        for salt in (0, 9, 255):
            seed = salt_seed(salt)
            assert zlib.crc32(b"payload", seed) == zlib.crc32(
                f"{salt}|".encode() + b"payload")


class TestSketchBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_update_batch_matches_sequential(self, seed):
        rng = random.Random(seed)
        width_bits = rng.choice([1, 8, 32])
        batch_sk = CountMinSketch("b", width=64, depth=3,
                                  width_bits=width_bits)
        seq_sk = CountMinSketch("b", width=64, depth=3,
                                width_bits=width_bits)
        for _ in range(rng.randrange(1, 5)):
            keys = random_keys(rng, rng.randrange(1, 200))
            counts = [rng.randrange(0, 4) for _ in keys]
            batch_sk.update_batch(keys, counts)
            seq_sk.update_batch_reference(keys, counts)
        assert batch_sk.export_state() == seq_sk.export_state()
        assert batch_sk.total == seq_sk.total
        probe = random_keys(rng, 30)
        assert batch_sk.query_batch(probe) == seq_sk.query_batch_reference(probe)

    def test_width_bits_1_saturates_identically(self):
        batch_sk = CountMinSketch("b", width=8, depth=2, width_bits=1)
        seq_sk = CountMinSketch("b", width=8, depth=2, width_bits=1)
        keys = ["a"] * 5 + ["b", "a", "c"] * 3
        batch_sk.update_batch(keys)
        seq_sk.update_batch_reference(keys)
        assert batch_sk.export_state() == seq_sk.export_state()
        assert max(batch_sk.query_batch(["a"])) <= 1

    def test_default_counts_are_ones(self):
        sk = CountMinSketch("b", width=32, depth=2)
        sk.update_batch(["x", "x", "y"])
        assert sk.estimate("x") >= 2
        assert sk.total == 3

    def test_negative_count_rejected_before_mutation(self):
        sk = CountMinSketch("b", width=32, depth=2)
        with pytest.raises(ValueError):
            sk.update_batch(["a", "b"], [1, -1])
        assert sk.total == 0


class TestBloomBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_add_and_contains_match_sequential(self, seed):
        rng = random.Random(seed)
        batch_bf = BloomFilter("b", size_bits=256, n_hashes=3)
        seq_bf = BloomFilter("b", size_bits=256, n_hashes=3)
        keys = random_keys(rng, rng.randrange(1, 120))
        batch_bf.add_batch(keys)
        seq_bf.add_batch_reference(keys)
        assert batch_bf.export_state() == seq_bf.export_state()
        assert batch_bf.inserted == seq_bf.inserted
        probe = random_keys(rng, 60, universe=80)
        assert (batch_bf.contains_batch(probe)
                == seq_bf.contains_batch_reference(probe))
        assert (batch_bf.contains_batch(probe)
                == [k in seq_bf for k in probe])


class TestHashPipeBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_update_batch_matches_sequential(self, seed):
        rng = random.Random(seed)
        # Tiny tables force eviction churn, the order-sensitive path.
        batch_hp = HashPipe("b", stages=2, slots_per_stage=4)
        seq_hp = HashPipe("b", stages=2, slots_per_stage=4)
        for _ in range(rng.randrange(1, 4)):
            keys = random_keys(rng, rng.randrange(1, 150), universe=25)
            counts = [rng.randrange(1, 100) for _ in keys]
            batch_hp.update_batch(keys, counts)
            seq_hp.update_batch_reference(keys, counts)
        assert batch_hp.export_state() == seq_hp.export_state()
        assert batch_hp.total == seq_hp.total
        probe = random_keys(rng, 30, universe=30)
        assert (batch_hp.estimate_batch(probe)
                == seq_hp.estimate_batch_reference(probe))
        assert batch_hp.heavy_hitters(1) == seq_hp.heavy_hitters(1)

    def test_run_coalescing_equals_split_updates(self):
        a = HashPipe("a", stages=2, slots_per_stage=2)
        b = HashPipe("b", stages=2, slots_per_stage=2)
        a.update_batch(["k", "k", "k"], [1, 2, 3])
        for count in (1, 2, 3):
            b.update("k", count)
        assert a.export_state() == b.export_state()

    def test_negative_count_rejected_before_mutation(self):
        hp = HashPipe("b", stages=2, slots_per_stage=4)
        with pytest.raises(ValueError):
            hp.update_batch(["a", "b"], [1, -2])
        assert hp.total == 0


class TestFlowTableBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_observe_batch_matches_sequential(self, seed):
        rng = random.Random(seed)
        # capacity < universe so LRU eviction fires.
        batch_ft = FlowTable("b", capacity=12, rate_ewma_alpha=0.3)
        seq_ft = FlowTable("b", capacity=12, rate_ewma_alpha=0.3)
        now = 0.0
        for _ in range(rng.randrange(2, 6)):
            now += rng.random()
            n = rng.randrange(1, 60)
            keys = random_keys(rng, n, universe=20)
            sizes = [rng.randrange(0, 1500) for _ in range(n)]
            flags = {}
            if rng.random() < 0.7:
                for name in ("syn", "ack", "fin", "rst"):
                    flags[name] = [rng.random() < 0.15 for _ in range(n)]
            batch_ft.observe_batch(keys, now, sizes, **flags)
            seq_ft.observe_batch_reference(keys, now, sizes, **flags)
        assert batch_ft.export_state() == seq_ft.export_state()
        assert batch_ft.evictions == seq_ft.evictions
        # LRU order matters too (it decides future evictions).
        assert ([e.key for e in batch_ft.entries()]
                == [e.key for e in seq_ft.entries()])

    def test_column_length_mismatch_rejected(self):
        ft = FlowTable("b")
        with pytest.raises(ValueError):
            ft.observe_batch(["a", "b"], 1.0, [10])


class TestRegisterBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_add_batch_matches_sequential(self, seed):
        rng = random.Random(seed)
        width_bits = rng.choice([1, 4, 32])
        batch_ra = RegisterArray("b", size=32, width_bits=width_bits)
        seq_ra = RegisterArray("b", size=32, width_bits=width_bits)
        keys = random_keys(rng, rng.randrange(1, 100))
        salt = rng.randrange(4)
        indices = batch_ra.index_batch(keys, salt)
        assert indices == [seq_ra.index_for(k, salt) for k in keys]
        deltas = [rng.randrange(0, 5) for _ in keys]
        batch_ra.add_batch(indices, deltas)
        for index, delta in zip(indices, deltas):
            seq_ra.add(index, delta)
        assert batch_ra.export_state() == seq_ra.export_state()
        assert (batch_ra.read_batch(range(32))
                == [seq_ra.read(i) for i in range(32)])

    def test_write_batch_last_write_wins(self):
        ra = RegisterArray("b", size=8, width_bits=8)
        ra.write_batch([3, 3, 5], [10, 20, 999])
        assert ra.read(3) == 20
        assert ra.read(5) == 255  # clamped to max_value

    def test_add_batch_rejects_negative_deltas(self):
        ra = RegisterArray("b", size=8)
        with pytest.raises(ValueError):
            ra.add_batch([0, 1], [1, -1])
        assert ra.read(0) == 0


class TestPacketBatch:
    def _packets(self):
        from repro.netsim.packet import Packet, PacketKind
        pkts = [Packet(src=f"h{i}", dst="d", size_bytes=100 + i,
                       sport=i, ttl=60 + i) for i in range(4)]
        pkts[2].kind = PacketKind.PROBE
        for i, p in enumerate(pkts):
            p.created_at = float(i)
        return pkts

    def test_columns_are_parallel_and_cached(self):
        batch = PacketBatch(self._packets())
        assert list(batch.src) == ["h0", "h1", "h2", "h3"]
        assert list(batch.size_bytes) == [100, 101, 102, 103]
        assert list(batch.sport) == [0, 1, 2, 3]
        assert list(batch.ts) == [0.0, 1.0, 2.0, 3.0]
        assert batch.column("src") is batch.column("src")  # cached
        assert len(batch.flow_keys) == 4

    def test_data_mask_excludes_non_data_and_dead(self):
        batch = PacketBatch(self._packets())
        batch.drop(0, "test")
        mask = batch.data_mask()
        assert list(mask) == [0, 1, 0, 1]  # 0 dropped, 2 is a PROBE

    def test_drop_consume_bookkeeping(self):
        batch = PacketBatch(self._packets())
        batch.drop(1, "why")
        batch.drop(1, "again")  # idempotent
        batch.consume(3)
        assert batch.dropped == 1 and batch.consumed == 1
        assert batch.alive_count() == 2
        assert batch.alive_indices() == [0, 2]
        assert [i for i, _ in batch.survivors()] == [0, 2]
        assert batch.packets[1].dropped == "why"  # first reason wins

    def test_as_numpy_roundtrips_when_available(self):
        from repro.dataplane import HAVE_NUMPY
        batch = PacketBatch(self._packets())
        if HAVE_NUMPY:
            arr = batch.as_numpy("size_bytes")
            assert list(arr) == [100, 101, 102, 103]
        else:
            with pytest.raises(RuntimeError):
                batch.as_numpy("size_bytes")
