"""Tests for the HashPipe heavy-hitter structure."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane import HashPipe


class TestBasics:
    def test_single_key_counted_exactly(self):
        pipe = HashPipe("p", stages=3, slots_per_stage=8)
        for _ in range(10):
            pipe.update("k")
        assert pipe.estimate("k") == 10

    def test_unseen_key_estimates_zero(self):
        pipe = HashPipe("p")
        assert pipe.estimate("ghost") == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            HashPipe("p").update("k", -1)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            HashPipe("p", stages=0)
        with pytest.raises(ValueError):
            HashPipe("p", slots_per_stage=0)

    def test_clear(self):
        pipe = HashPipe("p", stages=2, slots_per_stage=4)
        pipe.update("a", 5)
        pipe.clear()
        assert pipe.estimate("a") == 0
        assert pipe.total == 0


class TestHeavyHitters:
    def test_dominant_key_survives_churn(self):
        rng = random.Random(7)
        pipe = HashPipe("p", stages=4, slots_per_stage=32)
        for _ in range(2000):
            pipe.update("elephant", 10)
            pipe.update(f"mouse{rng.randrange(500)}", 1)
        hitters = pipe.heavy_hitters(threshold=10_000)
        assert "elephant" in hitters

    def test_top_k_ordering(self):
        pipe = HashPipe("p", stages=4, slots_per_stage=64)
        pipe.update("big", 100)
        pipe.update("mid", 50)
        pipe.update("small", 1)
        top = pipe.top_k(2)
        assert [k for k, _ in top] == ["big", "mid"]

    def test_threshold_filters(self):
        pipe = HashPipe("p", stages=4, slots_per_stage=64)
        pipe.update("a", 100)
        pipe.update("b", 5)
        assert "b" not in pipe.heavy_hitters(50)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_estimate_never_exceeds_truth(self, seed):
        rng = random.Random(seed)
        pipe = HashPipe("p", stages=3, slots_per_stage=16)
        truth = {}
        for _ in range(300):
            key = rng.randrange(50)
            pipe.update(key)
            truth[key] = truth.get(key, 0) + 1
        # HashPipe can lose counts to evictions but never invents them.
        for key, count in truth.items():
            assert pipe.estimate(key) <= count

    def test_total_is_conserved(self):
        pipe = HashPipe("p", stages=2, slots_per_stage=4)
        for i in range(100):
            pipe.update(i % 17, 2)
        assert pipe.total == 200


class TestStateTransfer:
    def test_roundtrip(self):
        pipe = HashPipe("p", stages=3, slots_per_stage=8)
        for i in range(60):
            pipe.update(i % 11, i)
        clone = HashPipe("p", stages=3, slots_per_stage=8)
        clone.import_state(pipe.export_state())
        for key in range(11):
            assert clone.estimate(key) == pipe.estimate(key)
        assert clone.total == pipe.total

    def test_shape_mismatch_rejected(self):
        a = HashPipe("p", stages=2, slots_per_stage=8)
        b = HashPipe("p", stages=3, slots_per_stage=8)
        with pytest.raises(ValueError):
            b.import_state(a.export_state())


class TestResourceModel:
    def test_requirement_tracks_stages(self):
        pipe = HashPipe("p", stages=5, slots_per_stage=16)
        req = pipe.resource_requirement()
        assert req.stages == 5
        assert req.alus == 10
