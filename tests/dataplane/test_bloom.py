"""Tests for the bloom filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane import BloomFilter


class TestBasics:
    def test_added_keys_are_members(self):
        bloom = BloomFilter("b", size_bits=1024, n_hashes=3)
        bloom.add("key")
        assert "key" in bloom

    def test_fresh_filter_is_empty(self):
        bloom = BloomFilter("b")
        assert "anything" not in bloom
        assert bloom.expected_fp_rate() == 0.0

    def test_clear(self):
        bloom = BloomFilter("b", size_bits=256)
        bloom.add("x")
        bloom.clear()
        assert "x" not in bloom
        assert bloom.inserted == 0

    def test_invalid_hash_count(self):
        with pytest.raises(ValueError):
            BloomFilter("b", n_hashes=0)


class TestNoFalseNegatives:
    @settings(max_examples=25, deadline=None)
    @given(keys=st.lists(st.text(max_size=12), max_size=100))
    def test_every_inserted_key_found(self, keys):
        bloom = BloomFilter("b", size_bits=4096, n_hashes=4)
        for key in keys:
            bloom.add(key)
        for key in keys:
            assert key in bloom


class TestFalsePositiveRate:
    def test_fp_rate_near_design_target(self):
        bloom = BloomFilter.for_capacity("b", capacity=500, fp_rate=0.02)
        for i in range(500):
            bloom.add(f"member{i}")
        false_positives = sum(
            1 for i in range(5000) if f"outsider{i}" in bloom)
        measured = false_positives / 5000
        assert measured < 0.06  # 3x the design target as slack

    def test_expected_fp_rate_monotone_in_fill(self):
        bloom = BloomFilter("b", size_bits=512, n_hashes=3)
        rates = []
        for i in range(50):
            bloom.add(i)
            rates.append(bloom.expected_fp_rate())
        assert rates == sorted(rates)


class TestSizing:
    def test_for_capacity_validates(self):
        with pytest.raises(ValueError):
            BloomFilter.for_capacity("b", 0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity("b", 10, fp_rate=1.5)

    def test_lower_fp_rate_needs_more_bits(self):
        loose = BloomFilter.for_capacity("b", 1000, fp_rate=0.1)
        tight = BloomFilter.for_capacity("b", 1000, fp_rate=0.001)
        assert tight.size_bits > loose.size_bits


class TestStateTransfer:
    def test_roundtrip_preserves_membership(self):
        bloom = BloomFilter("b", size_bits=512, n_hashes=3)
        for i in range(30):
            bloom.add(i)
        clone = BloomFilter("b", size_bits=512, n_hashes=3)
        clone.import_state(bloom.export_state())
        assert all(i in clone for i in range(30))
        assert clone.inserted == 30
