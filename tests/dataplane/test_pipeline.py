"""Tests for match-action tables and stage layout."""

import pytest

from repro.dataplane import (MatchActionTable, MatchKind,
                             PipelineLayoutError, layout_tables)


class TestTable:
    def test_exact_lookup(self):
        table = MatchActionTable("t")
        table.insert("10.0.0.1", "drop")
        assert table.lookup("10.0.0.1") == ("drop", {})
        assert table.lookup("10.0.0.2") == ("no_op", {})

    def test_params_returned(self):
        table = MatchActionTable("t")
        table.insert("k", "forward", params={"port": 3})
        assert table.lookup("k") == ("forward", {"port": 3})

    def test_priority_breaks_ties(self):
        table = MatchActionTable("t", match_kind=MatchKind.TERNARY)
        table.insert(lambda k: k.startswith("10."), "low", priority=1)
        table.insert(lambda k: k.startswith("10.0."), "high", priority=5)
        assert table.lookup("10.0.0.1")[0] == "high"
        assert table.lookup("10.1.0.1")[0] == "low"

    def test_capacity_enforced(self):
        table = MatchActionTable("t", max_entries=1)
        table.insert("a", "x")
        with pytest.raises(OverflowError):
            table.insert("b", "y")

    def test_delete_by_match(self):
        table = MatchActionTable("t")
        table.insert("a", "x")
        table.insert("b", "y")
        assert table.delete("a") == 1
        assert len(table) == 1
        assert table.lookup("a") == ("no_op", {})

    def test_exact_insert_upserts_duplicate_match(self):
        # Regression: duplicate exact-match inserts used to leave two
        # entries — lookup returned the stale first one while delete
        # removed both.  Exact tables have one slot per key: re-insert
        # updates in place.
        table = MatchActionTable("t")
        first = table.insert("a", "x", params={"old": 1})
        second = table.insert("a", "y", params={"new": 2}, priority=5)
        assert second is first
        assert len(table) == 1
        assert table.lookup("a") == ("y", {"new": 2})
        assert table.delete("a") == 1
        assert table.lookup("a") == ("no_op", {})

    def test_exact_upsert_does_not_trip_capacity(self):
        table = MatchActionTable("t", max_entries=1)
        table.insert("a", "x")
        table.insert("a", "y")  # upsert, not a second entry
        assert table.lookup("a") == ("y", {})

    def test_ternary_duplicates_keep_priority_tie_order(self):
        # Ternary tables allow overlapping entries; on a priority tie the
        # earlier insert wins (documented hardware semantics).
        table = MatchActionTable("t", match_kind=MatchKind.TERNARY)
        table.insert(lambda k: True, "first", priority=3)
        table.insert(lambda k: True, "second", priority=3)
        assert table.lookup("anything")[0] == "first"

    def test_lookup_batch_matches_scalar_lookup(self):
        table = MatchActionTable("t")
        table.insert("k1", "drop")
        table.insert("k2", "forward", params={"port": 9})
        keys = ["k1", "k2", "k3", "k1"]
        assert table.lookup_batch(keys) == [table.lookup(k) for k in keys]

    def test_lookup_batch_ternary_memoizes_per_key(self):
        table = MatchActionTable("t", match_kind=MatchKind.TERNARY)
        table.insert(lambda k: k.startswith("10."), "internal", priority=2)
        keys = ["10.0.0.1", "192.168.0.1", "10.0.0.1"]
        assert table.lookup_batch(keys) == [table.lookup(k) for k in keys]

    def test_memory_kind_depends_on_match(self):
        exact = MatchActionTable("e", MatchKind.EXACT, max_entries=100,
                                 entry_bytes=10)
        ternary = MatchActionTable("t", MatchKind.TERNARY, max_entries=100,
                                   entry_bytes=10)
        assert exact.memory_requirement().sram_mb > 0
        assert exact.memory_requirement().tcam_kb == 0
        assert ternary.memory_requirement().tcam_kb > 0
        assert ternary.memory_requirement().sram_mb == 0


class TestLayout:
    def make_tables(self, n, entry_bytes=1000):
        return [MatchActionTable(f"t{i}", max_entries=100,
                                 entry_bytes=entry_bytes)
                for i in range(n)]

    def test_independent_tables_pack_into_first_stage(self):
        tables = self.make_tables(3, entry_bytes=10)
        layout = layout_tables(tables, {}, n_stages=4,
                               stage_sram_mb=1.0, stage_tcam_kb=10)
        assert layout.stages_used == 1

    def test_dependency_forces_later_stage(self):
        tables = self.make_tables(2, entry_bytes=10)
        layout = layout_tables(tables, {"t1": ["t0"]}, n_stages=4,
                               stage_sram_mb=1.0, stage_tcam_kb=10)
        assert layout.stage_of("t1") > layout.stage_of("t0")

    def test_chain_uses_one_stage_per_link(self):
        tables = self.make_tables(4, entry_bytes=10)
        deps = {"t1": ["t0"], "t2": ["t1"], "t3": ["t2"]}
        layout = layout_tables(tables, deps, n_stages=4,
                               stage_sram_mb=1.0, stage_tcam_kb=10)
        assert layout.stages_used == 4

    def test_memory_pressure_spills_to_next_stage(self):
        # Each table needs 0.1 MB; a stage holds 0.15 MB.
        tables = self.make_tables(3)  # 100 entries x 1000 B = 0.1 MB
        layout = layout_tables(tables, {}, n_stages=4,
                               stage_sram_mb=0.15, stage_tcam_kb=0)
        assert layout.stages_used == 3

    def test_insufficient_stages_raises(self):
        tables = self.make_tables(3, entry_bytes=10)
        deps = {"t1": ["t0"], "t2": ["t1"]}
        with pytest.raises(PipelineLayoutError):
            layout_tables(tables, deps, n_stages=2,
                          stage_sram_mb=1.0, stage_tcam_kb=0)

    def test_cycle_detected(self):
        tables = self.make_tables(2, entry_bytes=10)
        with pytest.raises(PipelineLayoutError):
            layout_tables(tables, {"t0": ["t1"], "t1": ["t0"]},
                          n_stages=4, stage_sram_mb=1.0, stage_tcam_kb=0)

    def test_unknown_dependency_rejected(self):
        tables = self.make_tables(1, entry_bytes=10)
        with pytest.raises(ValueError):
            layout_tables(tables, {"t0": ["ghost"]}, n_stages=2,
                          stage_sram_mb=1.0, stage_tcam_kb=0)

    def test_stage_of_unknown_table(self):
        tables = self.make_tables(1, entry_bytes=10)
        layout = layout_tables(tables, {}, n_stages=2,
                               stage_sram_mb=1.0, stage_tcam_kb=0)
        with pytest.raises(KeyError):
            layout.stage_of("ghost")
