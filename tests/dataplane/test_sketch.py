"""Tests for the count-min sketch."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane import CountMinSketch


class TestBasics:
    def test_estimate_of_unseen_key_is_zero(self):
        sketch = CountMinSketch("s", width=64, depth=3)
        assert sketch.estimate("ghost") == 0

    def test_single_key_exact(self):
        sketch = CountMinSketch("s", width=64, depth=3)
        sketch.update("k", 5)
        sketch.update("k", 2)
        assert sketch.estimate("k") == 7

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch("s").update("k", -1)

    def test_total_tracks_updates(self):
        sketch = CountMinSketch("s")
        sketch.update("a", 3)
        sketch.update("b", 4)
        assert sketch.total == 7

    def test_clear(self):
        sketch = CountMinSketch("s", width=16, depth=2)
        sketch.update("a", 3)
        sketch.clear()
        assert sketch.estimate("a") == 0
        assert sketch.total == 0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            CountMinSketch("s", depth=0)


class TestSizing:
    def test_for_error_dimensions(self):
        sketch = CountMinSketch.for_error("s", epsilon=0.01, delta=0.01)
        assert sketch.width >= 271  # ceil(e / 0.01)
        assert sketch.depth >= 4    # ceil(ln 100)

    def test_for_error_validates(self):
        with pytest.raises(ValueError):
            CountMinSketch.for_error("s", epsilon=0.0, delta=0.5)
        with pytest.raises(ValueError):
            CountMinSketch.for_error("s", epsilon=0.5, delta=1.0)


class TestGuarantees:
    @settings(max_examples=25, deadline=None)
    @given(updates=st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 100)), max_size=200))
    def test_never_undercounts(self, updates):
        sketch = CountMinSketch("s", width=128, depth=4)
        truth = {}
        for key, count in updates:
            sketch.update(key, count)
            truth[key] = truth.get(key, 0) + count
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_error_bound_holds_in_expectation(self):
        rng = random.Random(1)
        sketch = CountMinSketch("s", width=256, depth=4)
        truth = {}
        for _ in range(5000):
            key = rng.randrange(500)
            sketch.update(key)
            truth[key] = truth.get(key, 0) + 1
        # CM bound: overestimate <= total/width with high probability.
        bound = sketch.total / sketch.width * 8  # generous slack
        violations = sum(
            1 for key, count in truth.items()
            if sketch.estimate(key) - count > bound)
        assert violations == 0


class TestStateTransfer:
    def test_roundtrip(self):
        sketch = CountMinSketch("s", width=32, depth=3)
        for key in range(20):
            sketch.update(key, key + 1)
        clone = CountMinSketch("s", width=32, depth=3)
        clone.import_state(sketch.export_state())
        for key in range(20):
            assert clone.estimate(key) == sketch.estimate(key)
        assert clone.total == sketch.total

    def test_depth_mismatch_rejected(self):
        a = CountMinSketch("s", width=32, depth=3)
        b = CountMinSketch("s", width=32, depth=4)
        with pytest.raises(ValueError):
            b.import_state(a.export_state())


class TestResourceModel:
    def test_requirement_scales_with_depth(self):
        shallow = CountMinSketch("a", width=64, depth=2)
        deep = CountMinSketch("b", width=64, depth=4)
        assert deep.resource_requirement().stages == 4
        assert deep.resource_requirement().sram_mb == pytest.approx(
            2 * shallow.resource_requirement().sram_mb)
