"""Tests for resource vectors and the per-switch ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane import (DIMENSIONS, ResourceExhausted, ResourceLedger,
                             ResourceVector, TOFINO_LIKE)

vectors = st.builds(
    ResourceVector,
    stages=st.floats(0, 20), sram_mb=st.floats(0, 20),
    tcam_kb=st.floats(0, 2000), alus=st.floats(0, 100))


class TestVector:
    def test_addition_is_componentwise(self):
        total = ResourceVector(stages=1, sram_mb=2) + \
            ResourceVector(stages=3, tcam_kb=4)
        assert total == ResourceVector(stages=4, sram_mb=2, tcam_kb=4)

    def test_subtraction(self):
        diff = ResourceVector(stages=5) - ResourceVector(stages=2)
        assert diff.stages == 3

    def test_scaled(self):
        assert ResourceVector(stages=2).scaled(2.5).stages == 5.0

    def test_fits_within_all_dimensions(self):
        small = ResourceVector(stages=1, sram_mb=1)
        big = ResourceVector(stages=2, sram_mb=2, tcam_kb=1, alus=1)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_from_dict_rejects_unknown_dimension(self):
        with pytest.raises(ValueError):
            ResourceVector.from_dict({"gpu": 1.0})

    def test_from_dict_roundtrip(self):
        vec = ResourceVector(stages=1, sram_mb=2, tcam_kb=3, alus=4)
        assert ResourceVector.from_dict(vec.as_dict()) == vec

    def test_dominating_fraction(self):
        need = ResourceVector(stages=6, sram_mb=1)
        budget = ResourceVector(stages=12, sram_mb=10, tcam_kb=1, alus=1)
        assert need.dominating_fraction(budget) == pytest.approx(0.5)

    def test_dominating_fraction_infinite_when_impossible(self):
        need = ResourceVector(tcam_kb=1)
        budget = ResourceVector(stages=10)
        assert need.dominating_fraction(budget) == float("inf")

    def test_total(self):
        vecs = [ResourceVector(stages=1)] * 3
        assert ResourceVector.total(vecs).stages == 3

    @given(a=vectors, b=vectors)
    def test_add_then_subtract_is_identity(self, a, b):
        restored = (a + b) - b
        for dim in DIMENSIONS:
            assert getattr(restored, dim) == pytest.approx(getattr(a, dim))

    @given(a=vectors, b=vectors)
    def test_sum_fits_iff_components_fit(self, a, b):
        budget = a + b
        assert a.fits_within(budget)
        assert b.fits_within(budget)


class TestLedger:
    def test_allocate_and_release(self):
        ledger = ResourceLedger(TOFINO_LIKE)
        ledger.allocate("x", ResourceVector(stages=4))
        assert ledger.used.stages == 4
        assert ledger.free.stages == TOFINO_LIKE.stages - 4
        ledger.release("x")
        assert ledger.used.stages == 0

    def test_exhaustion_raises_and_leaves_state_clean(self):
        ledger = ResourceLedger(ResourceVector(stages=4))
        ledger.allocate("a", ResourceVector(stages=3))
        with pytest.raises(ResourceExhausted):
            ledger.allocate("b", ResourceVector(stages=2))
        assert "b" not in ledger.allocations()
        assert ledger.used.stages == 3

    def test_duplicate_name_rejected(self):
        ledger = ResourceLedger(TOFINO_LIKE)
        ledger.allocate("x", ResourceVector(stages=1))
        with pytest.raises(ValueError):
            ledger.allocate("x", ResourceVector(stages=1))

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            ResourceLedger(TOFINO_LIKE).release("ghost")

    def test_can_allocate_is_side_effect_free(self):
        ledger = ResourceLedger(ResourceVector(stages=2))
        assert ledger.can_allocate(ResourceVector(stages=2))
        assert ledger.used.stages == 0

    def test_utilization_fractions(self):
        ledger = ResourceLedger(ResourceVector(stages=10, sram_mb=10,
                                               tcam_kb=0, alus=10))
        ledger.allocate("x", ResourceVector(stages=5, sram_mb=2.5))
        util = ledger.utilization()
        assert util["stages"] == pytest.approx(0.5)
        assert util["sram_mb"] == pytest.approx(0.25)
        assert util["tcam_kb"] == 0.0  # zero-budget dimension

    @given(reqs=st.lists(vectors, min_size=1, max_size=10))
    def test_ledger_never_overcommits(self, reqs):
        ledger = ResourceLedger(TOFINO_LIKE)
        for index, req in enumerate(reqs):
            try:
                ledger.allocate(f"p{index}", req)
            except ResourceExhausted:
                pass
        assert ledger.used.fits_within(TOFINO_LIKE)
