"""Tests for declarative header parsers."""

import pytest

from repro.dataplane import ROUTING_PARSER, HeaderParser
from repro.netsim import Packet


class TestParse:
    def test_extracts_base_fields(self):
        parser = HeaderParser.of("p", base=("src", "dst", "ttl"))
        pkt = Packet(src="a", dst="b", ttl=7)
        values = parser.parse(pkt)
        assert values == {"src": "a", "dst": "b", "ttl": 7}

    def test_extracts_custom_headers(self):
        parser = HeaderParser.of("p", custom=("epoch",))
        pkt = Packet(src="a", dst="b", headers={"epoch": 3})
        assert parser.parse(pkt)["epoch"] == 3

    def test_missing_custom_header_is_none(self):
        parser = HeaderParser.of("p", custom=("ghost",))
        assert parser.parse(Packet(src="a", dst="b"))["ghost"] is None

    def test_unknown_base_field_rejected(self):
        with pytest.raises(ValueError):
            HeaderParser.of("p", base=("not_a_field",))


class TestDeparse:
    def test_writes_base_and_custom(self):
        parser = HeaderParser.of("p", base=("ttl",), custom=("mark",))
        pkt = Packet(src="a", dst="b", ttl=10)
        parser.deparse(pkt, {"ttl": 5, "mark": "x"})
        assert pkt.ttl == 5
        assert pkt.headers["mark"] == "x"


class TestComposition:
    def test_covers_requires_superset(self):
        big = HeaderParser.of("big", base=("src", "dst", "ttl"),
                              custom=("a",))
        small = HeaderParser.of("small", base=("src",), custom=("a",))
        assert big.covers(small)
        assert not small.covers(big)

    def test_merged_is_union(self):
        a = HeaderParser.of("a", base=("src",), custom=("x",))
        b = HeaderParser.of("b", base=("dst",), custom=("y",))
        merged = a.merged_with(b)
        assert merged.base_fields == frozenset({"src", "dst"})
        assert merged.custom_fields == frozenset({"x", "y"})
        assert merged.covers(a) and merged.covers(b)

    def test_routing_parser_covers_basic_needs(self):
        five_tuple = HeaderParser.of(
            "ft", base=("src", "dst", "proto", "sport", "dport"))
        assert ROUTING_PARSER.covers(five_tuple)

    def test_requirement_grows_with_fields(self):
        small = HeaderParser.of("s", base=("src",))
        big = HeaderParser.of("b", base=("src", "dst", "ttl"))
        assert big.resource_requirement().sram_mb > \
            small.resource_requirement().sram_mb

    def test_parsers_cost_no_stages(self):
        # Parsers run in the dedicated parser block, not match stages.
        assert ROUTING_PARSER.resource_requirement().stages == 0
