"""Tests for register arrays."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane import RegisterArray, stable_hash


class TestBasics:
    def test_read_write(self):
        reg = RegisterArray("r", 8)
        reg.write(3, 42)
        assert reg.read(3) == 42
        assert reg.read(0) == 0

    def test_index_bounds_checked(self):
        reg = RegisterArray("r", 4)
        with pytest.raises(IndexError):
            reg.read(4)
        with pytest.raises(IndexError):
            reg.write(-1, 0)

    def test_add_returns_new_value(self):
        reg = RegisterArray("r", 4)
        assert reg.add(0) == 1
        assert reg.add(0, 5) == 6

    def test_saturation_at_width(self):
        reg = RegisterArray("r", 2, width_bits=8)
        reg.write(0, 300)
        assert reg.read(0) == 255
        reg.add(0, 100)
        assert reg.read(0) == 255

    def test_negative_clamps_to_zero(self):
        reg = RegisterArray("r", 2)
        reg.add(0, -5)
        assert reg.read(0) == 0

    def test_maximum_keeps_larger(self):
        reg = RegisterArray("r", 2)
        reg.write(0, 10)
        assert reg.maximum(0, 5) == 10
        assert reg.maximum(0, 20) == 20

    def test_clear_and_nonzero(self):
        reg = RegisterArray("r", 4)
        reg.write(1, 1)
        reg.write(3, 1)
        assert list(reg.nonzero()) == [1, 3]
        reg.clear()
        assert list(reg.nonzero()) == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegisterArray("r", 0)
        with pytest.raises(ValueError):
            RegisterArray("r", 4, width_bits=0)
        with pytest.raises(ValueError):
            RegisterArray("r", 4, width_bits=65)


class TestHashing:
    def test_stable_hash_is_deterministic(self):
        assert stable_hash("key", 1) == stable_hash("key", 1)

    def test_salt_changes_hash(self):
        assert stable_hash("key", 0) != stable_hash("key", 1)

    def test_index_for_in_range(self):
        reg = RegisterArray("r", 7)
        for key in range(100):
            assert 0 <= reg.index_for(key) < 7


class TestStateTransfer:
    def test_export_is_sparse(self):
        reg = RegisterArray("r", 100)
        reg.write(5, 9)
        state = reg.export_state()
        assert state["cells"] == {5: 9}

    def test_roundtrip(self):
        reg = RegisterArray("r", 16)
        for i in (1, 5, 9):
            reg.write(i, i * 10)
        clone = RegisterArray("r", 16)
        clone.write(2, 99)  # stale value must be cleared on import
        clone.import_state(reg.export_state())
        assert [clone.read(i) for i in range(16)] == \
            [reg.read(i) for i in range(16)]

    def test_incompatible_snapshot_rejected(self):
        reg = RegisterArray("r", 8)
        other = RegisterArray("r", 16)
        with pytest.raises(ValueError):
            other.import_state(reg.export_state())

    @given(writes=st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 2**32 - 1)),
        max_size=40))
    def test_roundtrip_property(self, writes):
        reg = RegisterArray("r", 32)
        for index, value in writes:
            reg.write(index, value)
        clone = RegisterArray("r", 32)
        clone.import_state(reg.export_state())
        assert all(clone.read(i) == reg.read(i) for i in range(32))


class TestResourceModel:
    def test_sram_cost_scales_with_size(self):
        small = RegisterArray("a", 1000, width_bits=32)
        big = RegisterArray("b", 2000, width_bits=32)
        assert big.sram_cost_mb() == pytest.approx(2 * small.sram_cost_mb())

    def test_requirement_includes_alu(self):
        assert RegisterArray("a", 10).resource_requirement().alus == 1
