"""Tests for topology construction and the canned networks."""

import pytest

from repro.netsim import (Simulator, Topology, abilene_like, fat_tree,
                          figure2_topology, random_topology)


class TestBuilder:
    def test_duplicate_node_rejected(self, sim):
        topo = Topology(sim)
        topo.add_switch("s1")
        with pytest.raises(ValueError):
            topo.add_host("s1")

    def test_duplex_link_creates_both_directions(self, sim):
        topo = Topology(sim)
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_duplex_link("a", "b", 1e9, 0.001)
        assert topo.link("a", "b").capacity_bps == 1e9
        assert topo.link("b", "a").capacity_bps == 1e9

    def test_attach_host_sets_gateway(self, sim):
        topo = Topology(sim)
        topo.add_switch("s1")
        host = topo.attach_host("h1", "s1")
        assert host.gateway == "s1"
        assert topo.link("h1", "s1") is not None

    def test_typed_lookup_enforced(self, sim):
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.attach_host("h1", "s1")
        with pytest.raises(TypeError):
            topo.switch("h1")
        with pytest.raises(TypeError):
            topo.host("s1")

    def test_unknown_lookups_raise_keyerror(self, sim):
        topo = Topology(sim)
        with pytest.raises(KeyError):
            topo.node("ghost")
        with pytest.raises(KeyError):
            topo.link("a", "b")

    def test_duplex_pairs_count_each_link_once(self, sim):
        topo = Topology(sim)
        for name in ("a", "b", "c"):
            topo.add_switch(name)
        topo.add_duplex_link("a", "b", 1e9, 0.001)
        topo.add_duplex_link("b", "c", 1e9, 0.001)
        assert topo.duplex_pairs() == [("a", "b"), ("b", "c")]

    def test_graph_export_has_attributes(self, sim):
        topo = Topology(sim)
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_duplex_link("a", "b", 2e9, 0.005)
        graph = topo.graph()
        assert graph.edges["a", "b"]["capacity"] == 2e9
        assert graph.edges["a", "b"]["delay"] == 0.005
        assert graph.nodes["a"]["is_switch"] is True


class TestFigure2:
    def test_structure(self, sim):
        net = figure2_topology(sim, n_clients=3, n_bots=5)
        topo = net.topo
        assert len(topo.switch_names) == 8
        assert len(net.client_hosts) == 3
        assert len(net.bot_hosts) == 5
        assert len(net.decoy_servers) == 2
        assert net.victim in topo.host_names

    def test_two_critical_links(self, sim):
        net = figure2_topology(sim)
        assert net.critical_links == [("s1", "sR"), ("s2", "sR")]
        for a, b in net.critical_links:
            assert net.topo.link(a, b) is not None

    def test_detour_paths_exist(self, sim):
        net = figure2_topology(sim)
        for path in net.detour_paths:
            for a, b in zip(path, path[1:]):
                assert net.topo.link(a, b) is not None

    def test_detours_have_higher_delay(self, sim):
        net = figure2_topology(sim)
        critical = net.topo.link("s1", "sR").delay_s
        detour = net.topo.link("s3", "s4").delay_s
        assert detour > critical


class TestFatTree:
    def test_k4_counts(self, sim):
        topo = fat_tree(sim, k=4)
        switches = topo.switch_names
        assert len([s for s in switches if s.startswith("core")]) == 4
        assert len([s for s in switches if s.startswith("agg")]) == 8
        assert len([s for s in switches if s.startswith("edge")]) == 8
        assert len(topo.host_names) == 8  # one per edge by default

    def test_odd_k_rejected(self, sim):
        with pytest.raises(ValueError):
            fat_tree(sim, k=3)

    def test_all_hosts_mutually_reachable(self, sim):
        import networkx as nx
        topo = fat_tree(sim, k=4)
        assert nx.is_connected(topo.graph())


class TestAbilene:
    def test_city_count(self, sim):
        topo = abilene_like(sim)
        assert len(topo.switch_names) == 11
        assert len(topo.host_names) == 11

    def test_connected(self, sim):
        import networkx as nx
        assert nx.is_connected(abilene_like(sim).graph())


class TestRandom:
    def test_always_connected(self):
        import networkx as nx
        for seed in range(5):
            sim = Simulator(seed=seed)
            topo = random_topology(sim, n_switches=12, n_hosts=6,
                                   extra_edges=4)
            assert nx.is_connected(topo.graph())

    def test_host_count(self, sim):
        topo = random_topology(sim, n_switches=5, n_hosts=7)
        assert len(topo.host_names) == 7

    def test_zero_switches_rejected(self, sim):
        with pytest.raises(ValueError):
            random_topology(sim, n_switches=0, n_hosts=1)


class TestNodeRemoval:
    """Regression tests: removing a node mid-run used to leave its
    engine-scheduled work (monitor samples, periodic agents, queued link
    deliveries) live, and ``remove_switch`` type-checked its target so
    hosts could never be removed at all."""

    def test_remove_switch_cancels_owned_periodic_work(self, sim):
        topo = Topology(sim)
        switch = topo.add_switch("s1")
        fired = []
        switch.own(sim.every(0.1, lambda: fired.append(sim.now)))
        sim.run(until=0.55)
        assert len(fired) == 6  # t=0.0 .. t=0.5
        topo.remove_switch("s1")
        sim.run(until=2.0)
        assert len(fired) == 6  # nothing after removal
        assert switch.retired

    def test_remove_monitored_switch_mid_run(self, sim):
        from repro.netsim import FlowSet, FluidNetwork, Monitor
        from repro.netsim.routing import install_host_routes
        from repro.netsim.sources import PacketSource

        net = figure2_topology(sim)
        topo = net.topo
        fluid = FluidNetwork(topo, FlowSet(), update_interval=0.1).start()
        monitor = Monitor(fluid, period=0.25).start()
        monitor.watch_link_utilization("s1", "sR")
        install_host_routes(topo)
        PacketSource(topo, "client0", "victim", rate_pps=500).start()
        sim.run(until=1.0)
        topo.remove_switch("s1")
        # Must not raise: queued deliveries on removed links degrade to
        # drops, the monitor keeps sampling the (detached) link probe,
        # and forwarding fails over to the surviving ECMP paths.
        sim.run(until=3.0)
        assert "s1" not in topo.nodes
        assert ("s1", "sR") not in topo.links
        assert ("sL", "s1") not in topo.links
        # Traffic still flows end to end via s2/detours after removal.
        assert topo.host("victim").received_count() > 500

    def test_queued_packets_on_removed_link_are_dropped(self, sim):
        from repro.netsim.packet import Packet

        topo = Topology(sim)
        topo.add_switch("s1")
        topo.add_switch("s2")
        # Tiny capacity so packets queue behind the serializer.
        topo.add_duplex_link("s1", "s2", capacity_bps=8_000, delay_s=0.01)
        link = topo.link("s1", "s2")
        packets = [Packet(src="s1", dst="s2", size_bytes=1000)
                   for _ in range(5)]
        for packet in packets:
            link.send(packet)
        sim.run(until=1.0)  # first transmission starts
        topo.remove_link("s1", "s2")
        sim.run(until=60.0)
        assert all(p.dropped for p in packets[1:])
        assert any(p.dropped == "link_removed" for p in packets)

    def test_remove_host(self, sim):
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.attach_host("h0", "s1")
        topo.remove_host("h0")
        assert "h0" not in topo.nodes
        assert ("h0", "s1") not in topo.links
        assert ("s1", "h0") not in topo.links

    def test_remove_switch_accepts_hosts(self, sim):
        # The historical entry point no longer type-checks its target.
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.attach_host("h0", "s1")
        topo.remove_switch("h0")
        assert "h0" not in topo.nodes

    def test_orphaned_host_drops_instead_of_crashing(self, sim):
        from repro.netsim.packet import Packet

        topo = Topology(sim)
        topo.add_switch("s1")
        host = topo.attach_host("h0", "s1")
        topo.remove_switch("s1")
        packet = Packet(src="h0", dst="elsewhere", size_bytes=100)
        assert host.originate(packet) is False
        assert packet.dropped == "no_gateway"

    def test_remove_unknown_node_raises(self, sim):
        topo = Topology(sim)
        with pytest.raises(KeyError):
            topo.remove_node("ghost")


class TestSubtopology:
    def test_induced_members_and_links(self, sim):
        net = figure2_topology(sim)
        sub = net.topo.subtopology(["sL", "s1", "s2", "client0"])
        assert sorted(sub.nodes) == ["client0", "s1", "s2", "sL"]
        assert ("sL", "s1") in sub.links and ("s1", "sL") in sub.links
        # Cut links (one endpoint outside) are not copied.
        assert ("s1", "sR") not in sub.links
        assert sub.host("client0").gateway == "sL"

    def test_link_parameters_copied(self, sim):
        net = figure2_topology(sim)
        sub = net.topo.subtopology(["sL", "s1"])
        original = net.topo.link("sL", "s1")
        copy = sub.link("sL", "s1")
        assert copy.capacity_bps == original.capacity_bps
        assert copy.delay_s == original.delay_s

    def test_gateway_outside_members_is_dropped(self, sim):
        net = figure2_topology(sim)
        sub = net.topo.subtopology(["client0", "s1"])
        assert sub.host("client0").gateway is None

    def test_unknown_member_rejected(self, sim):
        net = figure2_topology(sim)
        with pytest.raises(KeyError):
            net.topo.subtopology(["sL", "ghost"])

    def test_separate_simulator(self, sim):
        other = Simulator(seed=99)
        net = figure2_topology(sim)
        sub = net.topo.subtopology(["sL", "s1"], sim=other)
        assert sub.sim is other
        assert net.topo.sim is sim
