"""Tests for topology construction and the canned networks."""

import pytest

from repro.netsim import (Simulator, Topology, abilene_like, fat_tree,
                          figure2_topology, random_topology)


class TestBuilder:
    def test_duplicate_node_rejected(self, sim):
        topo = Topology(sim)
        topo.add_switch("s1")
        with pytest.raises(ValueError):
            topo.add_host("s1")

    def test_duplex_link_creates_both_directions(self, sim):
        topo = Topology(sim)
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_duplex_link("a", "b", 1e9, 0.001)
        assert topo.link("a", "b").capacity_bps == 1e9
        assert topo.link("b", "a").capacity_bps == 1e9

    def test_attach_host_sets_gateway(self, sim):
        topo = Topology(sim)
        topo.add_switch("s1")
        host = topo.attach_host("h1", "s1")
        assert host.gateway == "s1"
        assert topo.link("h1", "s1") is not None

    def test_typed_lookup_enforced(self, sim):
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.attach_host("h1", "s1")
        with pytest.raises(TypeError):
            topo.switch("h1")
        with pytest.raises(TypeError):
            topo.host("s1")

    def test_unknown_lookups_raise_keyerror(self, sim):
        topo = Topology(sim)
        with pytest.raises(KeyError):
            topo.node("ghost")
        with pytest.raises(KeyError):
            topo.link("a", "b")

    def test_duplex_pairs_count_each_link_once(self, sim):
        topo = Topology(sim)
        for name in ("a", "b", "c"):
            topo.add_switch(name)
        topo.add_duplex_link("a", "b", 1e9, 0.001)
        topo.add_duplex_link("b", "c", 1e9, 0.001)
        assert topo.duplex_pairs() == [("a", "b"), ("b", "c")]

    def test_graph_export_has_attributes(self, sim):
        topo = Topology(sim)
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_duplex_link("a", "b", 2e9, 0.005)
        graph = topo.graph()
        assert graph.edges["a", "b"]["capacity"] == 2e9
        assert graph.edges["a", "b"]["delay"] == 0.005
        assert graph.nodes["a"]["is_switch"] is True


class TestFigure2:
    def test_structure(self, sim):
        net = figure2_topology(sim, n_clients=3, n_bots=5)
        topo = net.topo
        assert len(topo.switch_names) == 8
        assert len(net.client_hosts) == 3
        assert len(net.bot_hosts) == 5
        assert len(net.decoy_servers) == 2
        assert net.victim in topo.host_names

    def test_two_critical_links(self, sim):
        net = figure2_topology(sim)
        assert net.critical_links == [("s1", "sR"), ("s2", "sR")]
        for a, b in net.critical_links:
            assert net.topo.link(a, b) is not None

    def test_detour_paths_exist(self, sim):
        net = figure2_topology(sim)
        for path in net.detour_paths:
            for a, b in zip(path, path[1:]):
                assert net.topo.link(a, b) is not None

    def test_detours_have_higher_delay(self, sim):
        net = figure2_topology(sim)
        critical = net.topo.link("s1", "sR").delay_s
        detour = net.topo.link("s3", "s4").delay_s
        assert detour > critical


class TestFatTree:
    def test_k4_counts(self, sim):
        topo = fat_tree(sim, k=4)
        switches = topo.switch_names
        assert len([s for s in switches if s.startswith("core")]) == 4
        assert len([s for s in switches if s.startswith("agg")]) == 8
        assert len([s for s in switches if s.startswith("edge")]) == 8
        assert len(topo.host_names) == 8  # one per edge by default

    def test_odd_k_rejected(self, sim):
        with pytest.raises(ValueError):
            fat_tree(sim, k=3)

    def test_all_hosts_mutually_reachable(self, sim):
        import networkx as nx
        topo = fat_tree(sim, k=4)
        assert nx.is_connected(topo.graph())


class TestAbilene:
    def test_city_count(self, sim):
        topo = abilene_like(sim)
        assert len(topo.switch_names) == 11
        assert len(topo.host_names) == 11

    def test_connected(self, sim):
        import networkx as nx
        assert nx.is_connected(abilene_like(sim).graph())


class TestRandom:
    def test_always_connected(self):
        import networkx as nx
        for seed in range(5):
            sim = Simulator(seed=seed)
            topo = random_topology(sim, n_switches=12, n_hosts=6,
                                   extra_edges=4)
            assert nx.is_connected(topo.graph())

    def test_host_count(self, sim):
        topo = random_topology(sim, n_switches=5, n_hosts=7)
        assert len(topo.host_names) == 7

    def test_zero_switches_rejected(self, sim):
        with pytest.raises(ValueError):
            random_topology(sim, n_switches=0, n_hosts=1)
