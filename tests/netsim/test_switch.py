"""Tests for the programmable switch: pipeline, routing, repurposing."""

import pytest

from repro.dataplane import ResourceExhausted, ResourceVector
from repro.netsim import (Consume, Drop, Forward, Packet, PacketKind,
                          SwitchProgram, Topology)


class Recorder(SwitchProgram):
    """Test program: records packets, returns a scripted result."""

    def __init__(self, name="recorder", result=None,
                 requirement=ResourceVector.zero()):
        super().__init__(name, requirement)
        self.seen = []
        self.result = result

    def process(self, switch, packet):
        self.seen.append(packet)
        return self.result


@pytest.fixture
def net(sim):
    """h1 - s1 - s2 - h2 plus an alternate s1 - s3 - s2 path."""
    topo = Topology(sim)
    for name in ("s1", "s2", "s3"):
        topo.add_switch(name)
    topo.attach_host("h1", "s1")
    topo.attach_host("h2", "s2")
    topo.add_duplex_link("s1", "s2", 1e9, 0.001)
    topo.add_duplex_link("s1", "s3", 1e9, 0.001)
    topo.add_duplex_link("s3", "s2", 1e9, 0.001)
    topo.switch("s1").set_route("h2", ["s2"])
    topo.switch("s2").set_route("h2", ["h2"])
    topo.switch("s3").set_route("h2", ["s2"])
    topo.switch("s2").set_route("h1", ["s1"])
    topo.switch("s1").set_route("h1", ["h1"])
    return topo


def send(topo, sim, **kwargs):
    kwargs.setdefault("src", "h1")
    kwargs.setdefault("dst", "h2")
    pkt = Packet(**kwargs)
    topo.host("h1").originate(pkt)
    sim.run()
    return pkt


class TestForwarding:
    def test_packet_reaches_destination(self, net, sim):
        pkt = send(net, sim)
        assert net.host("h2").received_count() == 1
        assert pkt.path_taken == ["h1", "s1", "s2", "h2"]

    def test_no_route_drops(self, net, sim):
        pkt = send(net, sim, dst="nowhere")
        assert pkt.dropped == "no_route"
        assert net.switch("s1").stats.packets_dropped_no_route == 1

    def test_ecmp_is_deterministic_per_pair(self, net, sim):
        net.switch("s1").set_route("h2", ["s2", "s3"])
        first = send(net, sim)
        second = send(net, sim, sport=9999)  # ports must not matter
        assert first.path_taken == second.path_taken

    def test_flow_route_overrides_destination_table(self, net, sim):
        net.switch("s1").flow_routes[("h1", "h2")] = "s3"
        pkt = send(net, sim)
        assert "s3" in pkt.path_taken

    def test_ttl_decrements_per_switch_hop(self, net, sim):
        pkt = send(net, sim, ttl=10)
        assert pkt.ttl == 8  # two switches


class TestTtlExpiry:
    def test_expiry_generates_icmp_reply(self, net, sim):
        send(net, sim, ttl=1, kind=PacketKind.TRACEROUTE,
             headers={"probe_id": 1, "probe_ttl": 1})
        replies = [p for p in net.host("h1").received_packets
                   if p.kind == PacketKind.ICMP_TTL_EXCEEDED]
        assert len(replies) == 1
        assert replies[0].headers["reporter"] == "s1"

    def test_reporter_mutator_obfuscates(self, net, sim):
        net.switch("s1").scratch["icmp_reporter_mutator"] = \
            lambda sw, pkt: "fake_switch"
        send(net, sim, ttl=1, kind=PacketKind.TRACEROUTE,
             headers={"probe_id": 2, "probe_ttl": 1})
        replies = [p for p in net.host("h1").received_packets
                   if p.kind == PacketKind.ICMP_TTL_EXCEEDED]
        assert replies[0].headers["reporter"] == "fake_switch"


class TestPipeline:
    def test_programs_run_in_order(self, net, sim):
        first = Recorder("first")
        second = Recorder("second")
        net.switch("s1").install_program(first)
        net.switch("s1").install_program(second)
        send(net, sim)
        assert len(first.seen) == 1 and len(second.seen) == 1

    def test_drop_decision_stops_pipeline(self, net, sim):
        dropper = Recorder("dropper", result=Drop("policy"))
        after = Recorder("after")
        net.switch("s1").install_program(dropper)
        net.switch("s1").install_program(after)
        pkt = send(net, sim)
        assert pkt.dropped == "policy"
        assert after.seen == []
        assert net.host("h2").received_count() == 0

    def test_consume_absorbs_packet(self, net, sim):
        net.switch("s1").install_program(Recorder("sink", result=Consume()))
        send(net, sim)
        assert net.host("h2").received_count() == 0
        assert net.switch("s1").stats.packets_consumed == 1

    def test_forward_overrides_next_hop(self, net, sim):
        net.switch("s1").install_program(
            Recorder("steer", result=Forward("s3")))
        pkt = send(net, sim)
        assert pkt.path_taken == ["h1", "s1", "s3", "s2", "h2"]

    def test_position_inserts_before(self, net, sim):
        seen_order = []

        class Tagger(SwitchProgram):
            def __init__(self, tag):
                super().__init__(tag)
                self.tag = tag

            def process(self, switch, packet):
                seen_order.append(self.tag)
                return None

        net.switch("s1").install_program(Tagger("b"))
        net.switch("s1").install_program(Tagger("a"), position=0)
        send(net, sim)
        assert seen_order == ["a", "b"]

    def test_invalid_program_result_raises(self, net, sim):
        net.switch("s1").install_program(Recorder("bad", result=42))
        with pytest.raises(TypeError):
            send(net, sim)


class TestResourceAccounting:
    def test_install_reserves_resources(self, net):
        switch = net.switch("s1")
        program = Recorder(requirement=ResourceVector(stages=2, sram_mb=1.0))
        switch.install_program(program)
        assert switch.ledger.used.stages == 2

    def test_over_budget_install_rejected(self, net):
        switch = net.switch("s1")
        huge = Recorder("huge", requirement=ResourceVector(stages=1000))
        with pytest.raises(ResourceExhausted):
            switch.install_program(huge)
        assert not switch.has_program("huge")

    def test_remove_releases_resources(self, net):
        switch = net.switch("s1")
        switch.install_program(
            Recorder(requirement=ResourceVector(stages=2)))
        switch.remove_program("recorder")
        assert switch.ledger.used.stages == 0

    def test_duplicate_name_rejected(self, net):
        switch = net.switch("s1")
        switch.install_program(Recorder())
        with pytest.raises(ValueError):
            switch.install_program(Recorder())


class TestReconfiguration:
    def test_reconfiguring_switch_drops_transit(self, net, sim):
        net.switch("s1").reconfiguring = True
        pkt = send(net, sim)
        assert pkt.dropped == "switch_reconfiguring"

    def test_neighbors_learn_and_forget_avoidance(self, net, sim):
        s1 = net.switch("s1")
        s1.notify_neighbors_of_reconfig()
        sim.run()
        assert "s1" in net.switch("s2").avoid_neighbors
        assert "s1" in net.switch("s3").avoid_neighbors
        s1.notify_neighbors_of_reconfig(clearing=True)
        sim.run()
        assert "s1" not in net.switch("s2").avoid_neighbors

    def test_fast_reroute_around_reconfiguring_neighbor(self, net, sim):
        # s1's primary next hop s2 announces a reconfiguration; FRR
        # sends via s3 instead.  (Without the notice, s1 has no way to
        # know — see the repurposing ablation benchmark.)
        net.switch("s1").frr["s2"] = "s3"
        net.switch("s2").reconfiguring = True
        net.switch("s1").avoid_neighbors.add("s2")

        # The direct deliver path would hit s2; packets via s3 still work
        # because s3 forwards to s2... which is down. Use a topology where
        # s3 reaches h2 without s2: rewire s3 - h2 directly.
        net.add_duplex_link("s3", "h2", 1e9, 0.001)
        net.switch("s3").set_route("h2", ["h2"])
        pkt = send(net, sim)
        assert net.switch("s1").stats.fast_reroutes == 1
        assert "s3" in pkt.path_taken
        assert net.host("h2").received_count() == 1

    def test_begin_reconfiguration_completes(self, net, sim):
        s1 = net.switch("s1")
        done = []
        s1.begin_reconfiguration(1.0, on_complete=lambda: done.append(True))
        assert s1.reconfiguring
        sim.run()
        assert done == [True]
        assert not s1.reconfiguring

    def test_hitless_reconfiguration_keeps_forwarding(self, net, sim):
        s1 = net.switch("s1")
        s1.begin_reconfiguration(1.0, hitless=True)
        pkt = send(net, sim)
        assert net.host("h2").received_count() == 1

    def test_negative_duration_rejected(self, net):
        with pytest.raises(ValueError):
            net.switch("s1").begin_reconfiguration(-1.0)
