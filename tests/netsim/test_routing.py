"""Tests for route computation and table installation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import (GBPS, NoRouteError, Packet, Path, Simulator,
                          all_shortest_paths, clear_flow_route,
                          default_path_for, edge_disjoint_paths,
                          install_flow_route, install_host_routes,
                          k_shortest_paths, random_topology, shortest_path)


class TestPath:
    def test_links_are_consecutive_pairs(self):
        path = Path.of(["a", "b", "c"])
        assert path.links() == [("a", "b"), ("b", "c")]

    def test_loop_rejected(self):
        with pytest.raises(ValueError):
            Path.of(["a", "b", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Path.of([])

    def test_contains_link_either_direction(self):
        path = Path.of(["a", "b", "c"])
        assert path.contains_link("b", "a")
        assert not path.contains_link("b", "a", either_direction=False)

    def test_latency_and_capacity(self, fig2):
        path = Path.of(["sL", "s1", "sR"])
        assert path.latency(fig2.topo) == pytest.approx(0.002)
        assert path.min_capacity(fig2.topo) == 10 * GBPS

    def test_iteration_and_len(self):
        path = Path.of(["a", "b"])
        assert list(path) == ["a", "b"]
        assert len(path) == 2
        assert path.hops == 1


class TestComputation:
    def test_shortest_path_prefers_low_delay(self, fig2):
        path = shortest_path(fig2.topo, "client0", "victim")
        # Critical paths have half the delay of detours.
        assert path.nodes[1] == "sL"
        assert path.nodes[-2] == "sR"
        assert len(path.nodes) == 5

    def test_no_route_raises(self, sim):
        from repro.netsim import Topology
        topo = Topology(sim)
        topo.add_switch("a")
        topo.add_switch("b")  # disconnected
        with pytest.raises(NoRouteError):
            shortest_path(topo, "a", "b")

    def test_k_shortest_ordered_by_delay(self, fig2):
        paths = k_shortest_paths(fig2.topo, "client0", "victim", 4)
        delays = [p.latency(fig2.topo) for p in paths]
        assert delays == sorted(delays)
        assert len(paths) == 4

    def test_k_shortest_validates_k(self, fig2):
        with pytest.raises(ValueError):
            k_shortest_paths(fig2.topo, "client0", "victim", 0)

    def test_all_shortest_paths_equal_cost(self, fig2):
        paths = all_shortest_paths(fig2.topo, "client0", "victim")
        assert len(paths) == 2  # via s1 and via s2
        delays = {p.latency(fig2.topo) for p in paths}
        assert len(delays) == 1

    def test_edge_disjoint_paths_share_no_link(self, fig2):
        paths = edge_disjoint_paths(fig2.topo, "sL", "sR")
        seen = set()
        for path in paths:
            for link in path.links():
                canonical = tuple(sorted(link))
                assert canonical not in seen
                seen.add(canonical)
        assert len(paths) >= 3


class TestInstallation:
    def test_host_routes_deliver_everywhere(self, fig2, sim):
        for dst in ("victim", "decoy0", "client0"):
            pkt = Packet(src="bot0", dst=dst)
            fig2.topo.host("bot0").originate(pkt)
        sim.run()
        assert fig2.topo.host("victim").received_count() == 1
        assert fig2.topo.host("decoy0").received_count() == 1
        assert fig2.topo.host("client0").received_count() == 1

    def test_switch_routes_reach_remote_switches(self, fig2, sim):
        table = fig2.topo.switch("sL").routes
        assert "sR" in table
        assert "s4" in table

    def test_default_path_matches_packet_forwarding(self, fig2, sim):
        expected = default_path_for(fig2.topo, "bot0", "victim")
        pkt = Packet(src="bot0", dst="victim")
        fig2.topo.host("bot0").originate(pkt)
        sim.run()
        assert tuple(pkt.path_taken) == expected.nodes

    def test_install_flow_route_changes_forwarding(self, fig2, sim):
        detour = Path.of(["bot0", "sL", "s3", "s4", "sR", "victim"])
        install_flow_route(fig2.topo, detour)
        pkt = Packet(src="bot0", dst="victim")
        fig2.topo.host("bot0").originate(pkt)
        sim.run()
        assert tuple(pkt.path_taken) == detour.nodes

    def test_clear_flow_route_restores_default(self, fig2, sim):
        detour = Path.of(["bot0", "sL", "s5", "s6", "sR", "victim"])
        install_flow_route(fig2.topo, detour)
        clear_flow_route(fig2.topo, "bot0", "victim")
        expected = default_path_for(fig2.topo, "bot0", "victim")
        pkt = Packet(src="bot0", dst="victim")
        fig2.topo.host("bot0").originate(pkt)
        sim.run()
        assert tuple(pkt.path_taken) == expected.nodes

    def test_flow_route_only_affects_its_pair(self, fig2, sim):
        detour = Path.of(["bot0", "sL", "s3", "s4", "sR", "victim"])
        install_flow_route(fig2.topo, detour)
        other = Packet(src="bot1", dst="victim")
        fig2.topo.host("bot1").originate(other)
        sim.run()
        assert "s3" not in other.path_taken or \
            default_path_for(fig2.topo, "bot1", "victim").nodes == \
            tuple(other.path_taken)


class TestRoutingProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_installed_routes_are_loop_free(self, seed):
        sim = Simulator(seed=seed)
        topo = random_topology(sim, n_switches=8, n_hosts=4, extra_edges=3)
        install_host_routes(topo)
        for src in topo.host_names:
            for dst in topo.host_names:
                if src == dst:
                    continue
                path = default_path_for(topo, src, dst)
                assert len(set(path.nodes)) == len(path.nodes)
                assert path.src == src and path.dst == dst
