"""Tests for heavy-tailed / diurnal workload generation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import FlowSet, FluidNetwork, Path, Topology, make_flow
from repro.netsim.workloads import (DemandModulator, diurnal_profile,
                                    elephant_mice_split, enterprise_workload,
                                    pareto_sizes)


class TestParetoSizes:
    def test_sizes_bounded_below_and_capped(self):
        rng = random.Random(1)
        sizes = pareto_sizes(rng, 1000, min_bytes=1e4, cap_bytes=1e8)
        assert all(1e4 <= s <= 1e8 for s in sizes)

    def test_heavy_tail_shape(self):
        # The top decile should carry a disproportionate share of bytes.
        rng = random.Random(2)
        sizes = pareto_sizes(rng, 5000, alpha=1.1, cap_bytes=None)
        elephants, mice = elephant_mice_split(sizes, 0.1)
        assert sum(elephants) > sum(mice)

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            pareto_sizes(rng, -1)
        with pytest.raises(ValueError):
            pareto_sizes(rng, 10, alpha=0.0)
        with pytest.raises(ValueError):
            elephant_mice_split([1.0], elephant_fraction=1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(0, 200))
    def test_count_and_positivity(self, seed, n):
        sizes = pareto_sizes(random.Random(seed), n)
        assert len(sizes) == n
        assert all(s > 0 for s in sizes)


class TestDiurnalProfile:
    def test_peak_and_trough(self):
        demand = diurnal_profile(100.0, amplitude=0.5, period_s=100.0,
                                 peak_at_s=25.0)
        assert demand(25.0) == pytest.approx(150.0)
        assert demand(75.0) == pytest.approx(50.0)

    def test_periodicity(self):
        demand = diurnal_profile(10.0, period_s=60.0)
        assert demand(10.0) == pytest.approx(demand(70.0))

    def test_zero_amplitude_is_constant(self):
        demand = diurnal_profile(10.0, amplitude=0.0)
        assert demand(0.0) == demand(12345.0) == 10.0

    def test_never_negative(self):
        demand = diurnal_profile(10.0, amplitude=1.0, period_s=10.0)
        assert min(demand(t / 10) for t in range(200)) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_profile(-1.0)
        with pytest.raises(ValueError):
            diurnal_profile(1.0, amplitude=2.0)
        with pytest.raises(ValueError):
            diurnal_profile(1.0, period_s=0.0)


class TestDemandModulator:
    def test_demands_follow_profiles(self, sim):
        flow = make_flow("a", "b", 100.0)
        modulator = DemandModulator(sim, update_interval_s=1.0)
        modulator.attach(flow, lambda t: 100.0 + t)
        modulator.start()
        sim.run(until=5.5)
        assert flow.demand_bps == pytest.approx(105.0)

    def test_negative_profile_clamped(self, sim):
        flow = make_flow("a", "b", 100.0)
        modulator = DemandModulator(sim, update_interval_s=1.0)
        modulator.attach(flow, lambda t: -5.0)
        modulator.start()
        sim.run(until=2.0)
        assert flow.demand_bps == 0.0

    def test_stop(self, sim):
        flow = make_flow("a", "b", 1.0)
        modulator = DemandModulator(sim, update_interval_s=1.0)
        modulator.attach(flow, lambda t: t)
        modulator.start()
        sim.schedule(2.5, modulator.stop)
        sim.run(until=10.0)
        assert flow.demand_bps == pytest.approx(2.0)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            DemandModulator(sim, update_interval_s=0.0)


class TestEnterpriseWorkload:
    def test_total_demand_matches(self, sim):
        workload = enterprise_workload(
            sim, clients=[f"c{i}" for i in range(10)], servers=["srv"],
            total_bps=1e9)
        assert workload.total_base_demand == pytest.approx(1e9)

    def test_elephants_dominate(self, sim):
        workload = enterprise_workload(
            sim, clients=[f"c{i}" for i in range(10)], servers=["srv"],
            total_bps=1e9, elephant_fraction=0.1, elephant_share=0.6)
        demands = sorted((f.demand_bps for f in workload.flows),
                         reverse=True)
        assert demands[0] == pytest.approx(0.6e9)

    def test_diurnal_workload_modulates_under_fluid(self, sim):
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.attach_host("c0", "s1", capacity_bps=1e12)
        topo.attach_host("srv", "s1", capacity_bps=1e12)
        workload = enterprise_workload(
            sim, clients=["c0"], servers=["srv"], total_bps=1e8,
            diurnal_amplitude=0.5, period_s=20.0, update_interval_s=0.5)
        flows = FlowSet()
        for flow in workload.flows:
            flow.set_path(Path.of(["c0", "s1", "srv"]))
            flows.add(flow)
        workload.modulator.start()
        FluidNetwork(topo, flows, tcp_tau=0.0).start()
        observed = []
        sim.every(1.0, lambda: observed.append(flows.normal()[0].rate_bps))
        sim.run(until=21.0)
        # Demand (and thus allocated rate) swings over the period.
        assert max(observed) > 1.3 * min(o for o in observed if o > 0)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            enterprise_workload(sim, clients=[], servers=["s"],
                                total_bps=1.0)
        with pytest.raises(ValueError):
            enterprise_workload(sim, clients=["c"], servers=["s"],
                                total_bps=1.0, elephant_share=1.5)
