"""Tests for packets, flow keys, and header machinery."""


from repro.netsim import (FlowKey, Packet, PacketKind, Protocol, TcpFlags,
                          make_probe)


class TestFlowKey:
    def test_reversed_swaps_endpoints_and_ports(self):
        key = FlowKey("a", "b", Protocol.TCP, 1234, 80)
        rev = key.reversed()
        assert rev == FlowKey("b", "a", Protocol.TCP, 80, 1234)

    def test_double_reverse_is_identity(self):
        key = FlowKey("a", "b", Protocol.UDP, 5, 6)
        assert key.reversed().reversed() == key

    def test_as_tuple_is_hashable_and_stable(self):
        key = FlowKey("a", "b", Protocol.TCP, 1, 2)
        assert key.as_tuple() == ("a", "b", 6, 1, 2)
        assert hash(key) == hash(FlowKey("a", "b", Protocol.TCP, 1, 2))

    def test_str_is_readable(self):
        key = FlowKey("h1", "h2", Protocol.TCP, 1000, 80)
        assert "h1" in str(key) and "h2" in str(key)


class TestPacket:
    def test_flow_key_matches_fields(self):
        pkt = Packet(src="a", dst="b", proto=Protocol.UDP, sport=9, dport=53)
        assert pkt.flow_key == FlowKey("a", "b", Protocol.UDP, 9, 53)

    def test_size_bits(self):
        assert Packet(src="a", dst="b", size_bytes=100).size_bits == 800

    def test_packet_ids_are_unique(self):
        a = Packet(src="a", dst="b")
        b = Packet(src="a", dst="b")
        assert a.pkt_id != b.pkt_id

    def test_first_drop_reason_wins(self):
        pkt = Packet(src="a", dst="b")
        pkt.mark_dropped("first")
        pkt.mark_dropped("second")
        assert pkt.dropped == "first"

    def test_copy_for_duplicate_fresh_identity(self):
        pkt = Packet(src="a", dst="b", headers={"x": 1})
        clone = pkt.copy_for_duplicate()
        assert clone.pkt_id != pkt.pkt_id
        assert clone.headers == {"x": 1}
        clone.headers["x"] = 2
        assert pkt.headers["x"] == 1  # deep enough: header dict copied
        assert clone.path_taken == []

    def test_tcp_flags_combine(self):
        flags = TcpFlags.SYN | TcpFlags.ACK
        assert flags & TcpFlags.SYN
        assert flags & TcpFlags.ACK
        assert not flags & TcpFlags.FIN


class TestMakeProbe:
    def test_probe_defaults(self):
        probe = make_probe("s1", "s2", PacketKind.MODE_CHANGE,
                           {"epoch": 3})
        assert probe.kind == PacketKind.MODE_CHANGE
        assert probe.proto == Protocol.UDP
        assert probe.size_bytes == 64
        assert probe.headers["epoch"] == 3

    def test_probe_headers_are_copied(self):
        headers = {"a": 1}
        probe = make_probe("x", "y", PacketKind.PROBE, headers)
        headers["a"] = 2
        assert probe.headers["a"] == 1
