"""Tests for the fluid max-min allocator and the FluidNetwork driver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import (FlowSet, FluidNetwork, Path, Simulator, Topology,
                          make_flow, max_min_allocate)
from repro.netsim.fluid import _stall_freeze


def tandem(sim, capacities=(1e9, 1e9)):
    """h1 - s1 - s2 - h2 with configurable switch-switch capacity, plus a
    second host pair sharing only the middle link."""
    topo = Topology(sim)
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.attach_host("h1", "s1", capacity_bps=100e9)
    topo.attach_host("h2", "s2", capacity_bps=100e9)
    topo.attach_host("h3", "s1", capacity_bps=100e9)
    topo.attach_host("h4", "s2", capacity_bps=100e9)
    topo.add_duplex_link("s1", "s2", capacities[0], 0.001)
    return topo


PATH_A = Path.of(["h1", "s1", "s2", "h2"])
PATH_B = Path.of(["h3", "s1", "s2", "h4"])


class TestMaxMinBasics:
    def test_two_equal_flows_split_evenly(self, sim):
        topo = tandem(sim)
        flows = [make_flow("h1", "h2", 2e9, path=PATH_A),
                 make_flow("h3", "h4", 2e9, path=PATH_B)]
        result = max_min_allocate(topo, flows)
        assert result.rates[flows[0].flow_id] == pytest.approx(0.5e9)
        assert result.rates[flows[1].flow_id] == pytest.approx(0.5e9)

    def test_weights_scale_shares(self, sim):
        topo = tandem(sim)
        flows = [make_flow("h1", "h2", 2e9, weight=3.0, path=PATH_A),
                 make_flow("h3", "h4", 2e9, weight=1.0, path=PATH_B)]
        result = max_min_allocate(topo, flows)
        assert result.rates[flows[0].flow_id] == pytest.approx(0.75e9)
        assert result.rates[flows[1].flow_id] == pytest.approx(0.25e9)

    def test_demand_cap_redistributes_surplus(self, sim):
        topo = tandem(sim)
        flows = [make_flow("h1", "h2", 0.2e9, path=PATH_A),
                 make_flow("h3", "h4", 5e9, path=PATH_B)]
        result = max_min_allocate(topo, flows)
        assert result.rates[flows[0].flow_id] == pytest.approx(0.2e9)
        assert result.rates[flows[1].flow_id] == pytest.approx(0.8e9)

    def test_pathless_flow_gets_zero(self, sim):
        topo = tandem(sim)
        flow = make_flow("h1", "h2", 1e9)
        result = max_min_allocate(topo, [flow])
        assert result.rates[flow.flow_id] == 0.0

    def test_elastic_traffic_never_overloads_links(self, sim):
        topo = tandem(sim)
        flows = [make_flow("h1", "h2", 10e9, path=PATH_A),
                 make_flow("h3", "h4", 10e9, path=PATH_B)]
        result = max_min_allocate(topo, flows)
        for key, load in result.link_load.items():
            assert load <= topo.links[key].capacity_bps * (1 + 1e-9)

    def test_inelastic_charges_full_demand_and_loses_excess(self, sim):
        topo = tandem(sim)
        udp = make_flow("h1", "h2", 2e9, elastic=False, path=PATH_A)
        result = max_min_allocate(topo, [udp])
        assert result.rates[udp.flow_id] == pytest.approx(2e9)
        assert result.link_loss[("s1", "s2")] == pytest.approx(0.5)

    def test_inelastic_starves_elastic(self, sim):
        topo = tandem(sim)
        udp = make_flow("h1", "h2", 1e9, elastic=False, path=PATH_A)
        tcp = make_flow("h3", "h4", 1e9, path=PATH_B)
        result = max_min_allocate(topo, [udp, tcp])
        assert result.rates[tcp.flow_id] == pytest.approx(0.0, abs=1e3)

    def test_policed_flow_capped(self, sim):
        topo = tandem(sim)
        flow = make_flow("h1", "h2", 1e9, path=PATH_A)
        flow.police_rate_bps = 0.1e9
        result = max_min_allocate(topo, [flow])
        assert result.rates[flow.flow_id] == pytest.approx(0.1e9)


def diamond(sim, capacity=1e9):
    """h1 - s1 - {s2 | s3-s4} - s5 - h2: two distinct s1->s5 routes."""
    topo = Topology(sim)
    for name in ("s1", "s2", "s3", "s4", "s5"):
        topo.add_switch(name)
    topo.attach_host("h1", "s1", capacity_bps=100e9)
    topo.attach_host("h2", "s5", capacity_bps=100e9)
    topo.add_duplex_link("s1", "s2", capacity, 0.001)
    topo.add_duplex_link("s2", "s5", capacity, 0.001)
    topo.add_duplex_link("s1", "s3", capacity, 0.001)
    topo.add_duplex_link("s3", "s4", capacity, 0.001)
    topo.add_duplex_link("s4", "s5", capacity, 0.001)
    return topo


SHORT = Path.of(["h1", "s1", "s2", "s5", "h2"])
LONG = Path.of(["h1", "s1", "s3", "s4", "s5", "h2"])


class TestAllocatorRegressions:
    """Pins for the epsilon, stall-guard, and removed-link bugs."""

    def test_bps_scale_links_saturate_fully(self, sim):
        """Regression: the saturation epsilon must be capacity-relative.
        With an absolute 1e-6 epsilon, float residue on 10 Gbps-scale
        capacities (~2e-6 after x - (x/w)*w) kept links unfrozen and the
        filling loop spinning; every overdemanded flow must end with its
        exact fair share and the link exactly full."""
        topo = tandem(sim, capacities=(10e9,))
        flows = []
        for i in range(7):
            path = PATH_A if i % 2 == 0 else PATH_B
            flows.append(make_flow(path.src, path.dst, 20e9,
                                   weight=1.0 + 0.3 * i, path=path))
        result = max_min_allocate(topo, flows)
        total_weight = sum(f.weight for f in flows)
        for flow in flows:
            expected = 10e9 * flow.weight / total_weight
            assert result.rates[flow.flow_id] == pytest.approx(expected,
                                                               rel=1e-9)
        assert result.link_load[("s1", "s2")] == pytest.approx(10e9,
                                                               rel=1e-9)

    def test_no_flow_left_unfrozen_below_fair_share(self, sim):
        """Regression for the silent stall `break`: every elastic flow
        must end at its demand or pinned by a saturated link — never
        abandoned mid-fill with a partial rate."""
        import random
        rng = random.Random(5)
        topo = tandem(sim, capacities=(10e9,))
        flows = []
        for i in range(40):
            path = PATH_A if i % 2 == 0 else PATH_B
            flows.append(make_flow(path.src, path.dst,
                                   rng.uniform(1e6, 40e9),
                                   weight=rng.uniform(0.5, 80.0),
                                   path=path))
        result = max_min_allocate(topo, flows)
        capacities = {k: l.capacity_bps for k, l in topo.links.items()}
        for flow in flows:
            rate = result.rates[flow.flow_id]
            if rate >= flow.demand_bps * (1 - 1e-9):
                continue
            saturated = [key for key in flow.path.links()
                         if result.link_load[key]
                         >= capacities[key] * (1 - 1e-6)]
            assert saturated, (
                f"flow {flow.flow_id} stopped at {rate:.0f} bps below its "
                f"demand with no saturated link on its path")

    def test_stall_guard_freezes_most_loaded_link_members(self):
        link_count = {("a", "b"): 2, ("b", "c"): 1, ("c", "d"): 0}
        remaining = {("a", "b"): 5e8, ("b", "c"): 1e6, ("c", "d"): 0.0}
        capacities = {("a", "b"): 1e9, ("b", "c"): 1e9, ("c", "d"): 1e9}
        f1 = make_flow("h1", "h2", 1e9, path=Path.of(["h1", "h2"]))
        f2 = make_flow("h1", "h2", 1e9, path=Path.of(["h1", "h2"]))
        members = {("a", "b"): [f1, f2], ("b", "c"): [f2], ("c", "d"): []}
        unfrozen = {f1.flow_id: (f1, ()), f2.flow_id: (f2, ())}
        # ("c", "d") has zero headroom but no unfrozen members; the guard
        # must pick ("b", "c") — the least-headroom *active* link.
        assert _stall_freeze(link_count, remaining, capacities, members,
                             unfrozen) == [f2.flow_id]

    def test_flow_over_removed_link_allocated_zero(self, sim):
        topo = diamond(sim)
        short = make_flow("h1", "h2", 1e9, path=SHORT)
        long = make_flow("h1", "h2", 1e9, path=LONG, sport=1)
        topo.remove_link("s2", "s5")
        result = max_min_allocate(topo, [short, long])
        assert result.rates[short.flow_id] == 0.0
        assert result.rates[long.flow_id] == pytest.approx(1e9)
        assert ("s2", "s5") not in result.link_load


class TestMaxMinProperties:
    """Water-filling invariants under random workloads (hypothesis)."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_invariants(self, data):
        sim = Simulator(seed=0)
        topo = tandem(sim)
        n_flows = data.draw(st.integers(1, 8))
        flows = []
        for index in range(n_flows):
            demand = data.draw(st.floats(1e6, 5e9))
            weight = data.draw(st.floats(0.5, 100.0))
            path = PATH_A if index % 2 == 0 else PATH_B
            flows.append(make_flow(path.src, path.dst, demand,
                                   weight=weight, path=path))
        result = max_min_allocate(topo, flows)

        capacities = {k: l.capacity_bps for k, l in topo.links.items()}
        eps = 1e-3
        for flow in flows:
            rate = result.rates[flow.flow_id]
            # Non-negative and demand-bounded.
            assert rate >= -eps
            assert rate <= flow.demand_bps + eps
        for key, load in result.link_load.items():
            assert load <= capacities[key] * (1 + 1e-6)

        # Max-min: a flow below its demand must have a saturated link on
        # its path where no co-resident flow has a larger per-weight rate.
        for flow in flows:
            rate = result.rates[flow.flow_id]
            if rate >= flow.demand_bps - eps:
                continue
            normalized = rate / flow.weight
            bottlenecked = False
            for key in flow.path.links():
                if result.link_load[key] < capacities[key] * (1 - 1e-6):
                    continue
                others = [f for f in flows if key in f.path.links()]
                if all(result.rates[o.flow_id] / o.weight
                       <= normalized + eps or
                       result.rates[o.flow_id] >= o.demand_bps - eps
                       for o in others):
                    bottlenecked = True
                    break
            assert bottlenecked, (
                f"flow {flow.flow_id} is rate-limited without a "
                f"justifying bottleneck")


class TestFluidNetwork:
    def test_update_interval_validated(self, sim):
        topo = tandem(sim)
        with pytest.raises(ValueError):
            FluidNetwork(topo, update_interval=0.0)

    def test_rates_converge_with_smoothing(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        # Start mid-run so the flow ramps from zero (TCP-style) instead of
        # being part of the initial allocation.
        flow = flows.add(make_flow("h1", "h2", 0.5e9, path=PATH_A,
                                   start_time=0.1))
        fluid = FluidNetwork(topo, flows, update_interval=0.01,
                             tcp_tau=0.05).start()
        sim.run(until=0.15)
        partial = flow.rate_bps
        sim.run(until=1.5)
        assert 0 < partial < 0.5e9
        assert flow.rate_bps == pytest.approx(0.5e9, rel=1e-3)

    def test_goodput_deducts_congestion_loss(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        udp = flows.add(make_flow("h1", "h2", 2e9, elastic=False,
                                  path=PATH_A))
        fluid = FluidNetwork(topo, flows).start()
        sim.run(until=0.5)
        assert udp.rate_bps == pytest.approx(2e9)
        assert udp.goodput_bps == pytest.approx(1e9, rel=1e-6)
        assert udp.loss_rate == pytest.approx(0.5, rel=1e-6)

    def test_bytes_delivered_accumulate(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 0.8e9, path=PATH_A))
        FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.run(until=1.0)
        expected = 0.8e9 / 8  # one second at full rate
        assert flow.bytes_delivered == pytest.approx(expected, rel=0.05)

    def test_links_see_fluid_load(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flows.add(make_flow("h1", "h2", 0.6e9, path=PATH_A))
        FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.run(until=0.2)
        assert topo.link("s1", "s2").utilization == pytest.approx(0.6,
                                                                  rel=1e-3)

    def test_inactive_flows_zeroed(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 1e9, path=PATH_A,
                                   end_time=0.5))
        FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.run(until=1.0)
        assert flow.rate_bps == 0.0
        assert flow.goodput_bps == 0.0

    def test_normal_goodput_excludes_malicious(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flows.add(make_flow("h1", "h2", 0.3e9, path=PATH_A))
        flows.add(make_flow("h3", "h4", 0.3e9, path=PATH_B,
                            malicious=True))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.run(until=0.2)
        assert fluid.normal_goodput() == pytest.approx(0.3e9, rel=1e-3)

    def test_stop_halts_updates(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 1e9, path=PATH_A,
                                   start_time=0.5))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.schedule(0.2, fluid.stop)
        sim.run(until=1.0)
        assert flow.rate_bps == 0.0  # never observed after its start

    def test_observers_called(self, sim):
        topo = tandem(sim)
        fluid = FluidNetwork(topo, FlowSet(), update_interval=0.1)
        ticks = []
        fluid.on_update.append(lambda now, result: ticks.append(now))
        fluid.start()
        sim.run(until=0.35)
        assert len(ticks) == 4  # t = 0, 0.1, 0.2, 0.3


class TestSteadyStateFastPath:
    """The dirty-flag contract: unchanged epochs skip reallocation."""

    def test_unchanged_epochs_reuse_allocation(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 0.5e9, path=PATH_A))
        fluid = FluidNetwork(topo, flows, update_interval=0.01).start()
        sim.run(until=1.0)
        assert fluid.updates >= 100  # one per 10 ms epoch
        assert fluid.allocation_passes == 1
        # Smoothing still ran every epoch: the rate converged.
        assert flow.rate_bps == pytest.approx(0.5e9, rel=1e-3)

    def test_reroute_marks_dirty(self, sim):
        topo = diamond(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 0.5e9, path=SHORT))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0,
                             update_interval=0.01).start()
        sim.schedule(0.1, flow.set_path, LONG)
        sim.run(until=0.2)
        assert fluid.allocation_passes == 2
        assert fluid.last_result.link_load[("s3", "s4")] == \
            pytest.approx(0.5e9)

    def test_rewriting_same_path_stays_clean(self, sim):
        topo = diamond(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 0.5e9, path=SHORT))
        fluid = FluidNetwork(topo, flows, update_interval=0.01).start()
        # A TE pass that re-installs the identical route must not defeat
        # the fast path.
        sim.schedule(0.1, flow.set_path, Path.of(list(SHORT.nodes)))
        sim.run(until=0.2)
        assert fluid.allocation_passes == 1

    def test_demand_change_marks_dirty(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 0.2e9, path=PATH_A))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0,
                             update_interval=0.01).start()

        def pulse():
            flow.demand_bps = 0.9e9

        sim.schedule(0.1, pulse)
        sim.run(until=0.2)
        assert fluid.allocation_passes == 2
        assert flow.rate_bps == pytest.approx(0.9e9)

    def test_policing_marks_dirty(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 0.8e9, path=PATH_A))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0,
                             update_interval=0.01).start()

        def police():
            flow.police_rate_bps = 0.1e9

        sim.schedule(0.1, police)
        sim.run(until=0.2)
        assert fluid.allocation_passes == 2
        assert flow.rate_bps == pytest.approx(0.1e9)

    def test_flow_add_and_activation_mark_dirty(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flows.add(make_flow("h1", "h2", 0.2e9, path=PATH_A))
        fluid = FluidNetwork(topo, flows, update_interval=0.01).start()

        def join():
            flows.add(make_flow("h3", "h4", 0.2e9, path=PATH_B, sport=1))

        sim.schedule(0.05, join)
        # A third flow is registered up front but only activates at 0.15;
        # the activation alone must also trigger a pass.
        flows.add(make_flow("h3", "h4", 0.2e9, path=PATH_B, sport=2,
                            start_time=0.15))
        sim.run(until=0.25)
        assert fluid.allocation_passes == 3

    def test_link_capacity_change_marks_dirty(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 2e9, path=PATH_A))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0,
                             update_interval=0.01).start()
        sim.schedule(0.1, topo.link("s1", "s2").set_capacity, 0.5e9)
        sim.run(until=0.2)
        assert fluid.allocation_passes == 2
        assert flow.rate_bps == pytest.approx(0.5e9)


class TestRemovedLinks:
    """Switch repurposing removes links under live flows (satellite 3)."""

    def test_update_survives_link_removal(self, sim):
        topo = diamond(sim)
        flows = FlowSet()
        stranded = flows.add(make_flow("h1", "h2", 0.5e9, path=SHORT))
        detoured = flows.add(make_flow("h1", "h2", 0.5e9, path=LONG,
                                       sport=1))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0,
                             update_interval=0.01).start()
        sim.schedule(0.1, topo.remove_link, "s2", "s5")
        sim.run(until=0.2)  # would KeyError before the guard
        assert stranded.rate_bps == 0.0
        assert stranded.goodput_bps == 0.0
        assert stranded.loss_rate == 1.0
        assert detoured.rate_bps == pytest.approx(0.5e9)

    def test_rerouted_flow_recovers_after_removal(self, sim):
        topo = diamond(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 0.5e9, path=SHORT))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0,
                             update_interval=0.01).start()
        sim.schedule(0.1, topo.remove_link, "s2", "s5")
        sim.schedule(0.15, flow.set_path, LONG)
        sim.run(until=0.25)
        assert flow.rate_bps == pytest.approx(0.5e9)
        assert flow.loss_rate == 0.0
