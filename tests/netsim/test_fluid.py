"""Tests for the fluid max-min allocator and the FluidNetwork driver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import (FlowSet, FluidNetwork, Path, Simulator, Topology,
                          make_flow, max_min_allocate)


def tandem(sim, capacities=(1e9, 1e9)):
    """h1 - s1 - s2 - h2 with configurable switch-switch capacity, plus a
    second host pair sharing only the middle link."""
    topo = Topology(sim)
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.attach_host("h1", "s1", capacity_bps=100e9)
    topo.attach_host("h2", "s2", capacity_bps=100e9)
    topo.attach_host("h3", "s1", capacity_bps=100e9)
    topo.attach_host("h4", "s2", capacity_bps=100e9)
    topo.add_duplex_link("s1", "s2", capacities[0], 0.001)
    return topo


PATH_A = Path.of(["h1", "s1", "s2", "h2"])
PATH_B = Path.of(["h3", "s1", "s2", "h4"])


class TestMaxMinBasics:
    def test_two_equal_flows_split_evenly(self, sim):
        topo = tandem(sim)
        flows = [make_flow("h1", "h2", 2e9, path=PATH_A),
                 make_flow("h3", "h4", 2e9, path=PATH_B)]
        result = max_min_allocate(topo, flows)
        assert result.rates[flows[0].flow_id] == pytest.approx(0.5e9)
        assert result.rates[flows[1].flow_id] == pytest.approx(0.5e9)

    def test_weights_scale_shares(self, sim):
        topo = tandem(sim)
        flows = [make_flow("h1", "h2", 2e9, weight=3.0, path=PATH_A),
                 make_flow("h3", "h4", 2e9, weight=1.0, path=PATH_B)]
        result = max_min_allocate(topo, flows)
        assert result.rates[flows[0].flow_id] == pytest.approx(0.75e9)
        assert result.rates[flows[1].flow_id] == pytest.approx(0.25e9)

    def test_demand_cap_redistributes_surplus(self, sim):
        topo = tandem(sim)
        flows = [make_flow("h1", "h2", 0.2e9, path=PATH_A),
                 make_flow("h3", "h4", 5e9, path=PATH_B)]
        result = max_min_allocate(topo, flows)
        assert result.rates[flows[0].flow_id] == pytest.approx(0.2e9)
        assert result.rates[flows[1].flow_id] == pytest.approx(0.8e9)

    def test_pathless_flow_gets_zero(self, sim):
        topo = tandem(sim)
        flow = make_flow("h1", "h2", 1e9)
        result = max_min_allocate(topo, [flow])
        assert result.rates[flow.flow_id] == 0.0

    def test_elastic_traffic_never_overloads_links(self, sim):
        topo = tandem(sim)
        flows = [make_flow("h1", "h2", 10e9, path=PATH_A),
                 make_flow("h3", "h4", 10e9, path=PATH_B)]
        result = max_min_allocate(topo, flows)
        for key, load in result.link_load.items():
            assert load <= topo.links[key].capacity_bps * (1 + 1e-9)

    def test_inelastic_charges_full_demand_and_loses_excess(self, sim):
        topo = tandem(sim)
        udp = make_flow("h1", "h2", 2e9, elastic=False, path=PATH_A)
        result = max_min_allocate(topo, [udp])
        assert result.rates[udp.flow_id] == pytest.approx(2e9)
        assert result.link_loss[("s1", "s2")] == pytest.approx(0.5)

    def test_inelastic_starves_elastic(self, sim):
        topo = tandem(sim)
        udp = make_flow("h1", "h2", 1e9, elastic=False, path=PATH_A)
        tcp = make_flow("h3", "h4", 1e9, path=PATH_B)
        result = max_min_allocate(topo, [udp, tcp])
        assert result.rates[tcp.flow_id] == pytest.approx(0.0, abs=1e3)

    def test_policed_flow_capped(self, sim):
        topo = tandem(sim)
        flow = make_flow("h1", "h2", 1e9, path=PATH_A)
        flow.police_rate_bps = 0.1e9
        result = max_min_allocate(topo, [flow])
        assert result.rates[flow.flow_id] == pytest.approx(0.1e9)


class TestMaxMinProperties:
    """Water-filling invariants under random workloads (hypothesis)."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_invariants(self, data):
        sim = Simulator(seed=0)
        topo = tandem(sim)
        n_flows = data.draw(st.integers(1, 8))
        flows = []
        for index in range(n_flows):
            demand = data.draw(st.floats(1e6, 5e9))
            weight = data.draw(st.floats(0.5, 100.0))
            path = PATH_A if index % 2 == 0 else PATH_B
            flows.append(make_flow(path.src, path.dst, demand,
                                   weight=weight, path=path))
        result = max_min_allocate(topo, flows)

        capacities = {k: l.capacity_bps for k, l in topo.links.items()}
        eps = 1e-3
        for flow in flows:
            rate = result.rates[flow.flow_id]
            # Non-negative and demand-bounded.
            assert rate >= -eps
            assert rate <= flow.demand_bps + eps
        for key, load in result.link_load.items():
            assert load <= capacities[key] * (1 + 1e-6)

        # Max-min: a flow below its demand must have a saturated link on
        # its path where no co-resident flow has a larger per-weight rate.
        for flow in flows:
            rate = result.rates[flow.flow_id]
            if rate >= flow.demand_bps - eps:
                continue
            normalized = rate / flow.weight
            bottlenecked = False
            for key in flow.path.links():
                if result.link_load[key] < capacities[key] * (1 - 1e-6):
                    continue
                others = [f for f in flows if key in f.path.links()]
                if all(result.rates[o.flow_id] / o.weight
                       <= normalized + eps or
                       result.rates[o.flow_id] >= o.demand_bps - eps
                       for o in others):
                    bottlenecked = True
                    break
            assert bottlenecked, (
                f"flow {flow.flow_id} is rate-limited without a "
                f"justifying bottleneck")


class TestFluidNetwork:
    def test_update_interval_validated(self, sim):
        topo = tandem(sim)
        with pytest.raises(ValueError):
            FluidNetwork(topo, update_interval=0.0)

    def test_rates_converge_with_smoothing(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        # Start mid-run so the flow ramps from zero (TCP-style) instead of
        # being part of the initial allocation.
        flow = flows.add(make_flow("h1", "h2", 0.5e9, path=PATH_A,
                                   start_time=0.1))
        fluid = FluidNetwork(topo, flows, update_interval=0.01,
                             tcp_tau=0.05).start()
        sim.run(until=0.15)
        partial = flow.rate_bps
        sim.run(until=1.5)
        assert 0 < partial < 0.5e9
        assert flow.rate_bps == pytest.approx(0.5e9, rel=1e-3)

    def test_goodput_deducts_congestion_loss(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        udp = flows.add(make_flow("h1", "h2", 2e9, elastic=False,
                                  path=PATH_A))
        fluid = FluidNetwork(topo, flows).start()
        sim.run(until=0.5)
        assert udp.rate_bps == pytest.approx(2e9)
        assert udp.goodput_bps == pytest.approx(1e9, rel=1e-6)
        assert udp.loss_rate == pytest.approx(0.5, rel=1e-6)

    def test_bytes_delivered_accumulate(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 0.8e9, path=PATH_A))
        FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.run(until=1.0)
        expected = 0.8e9 / 8  # one second at full rate
        assert flow.bytes_delivered == pytest.approx(expected, rel=0.05)

    def test_links_see_fluid_load(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flows.add(make_flow("h1", "h2", 0.6e9, path=PATH_A))
        FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.run(until=0.2)
        assert topo.link("s1", "s2").utilization == pytest.approx(0.6,
                                                                  rel=1e-3)

    def test_inactive_flows_zeroed(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 1e9, path=PATH_A,
                                   end_time=0.5))
        FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.run(until=1.0)
        assert flow.rate_bps == 0.0
        assert flow.goodput_bps == 0.0

    def test_normal_goodput_excludes_malicious(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flows.add(make_flow("h1", "h2", 0.3e9, path=PATH_A))
        flows.add(make_flow("h3", "h4", 0.3e9, path=PATH_B,
                            malicious=True))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.run(until=0.2)
        assert fluid.normal_goodput() == pytest.approx(0.3e9, rel=1e-3)

    def test_stop_halts_updates(self, sim):
        topo = tandem(sim)
        flows = FlowSet()
        flow = flows.add(make_flow("h1", "h2", 1e9, path=PATH_A,
                                   start_time=0.5))
        fluid = FluidNetwork(topo, flows, tcp_tau=0.0).start()
        sim.schedule(0.2, fluid.stop)
        sim.run(until=1.0)
        assert flow.rate_bps == 0.0  # never observed after its start

    def test_observers_called(self, sim):
        topo = tandem(sim)
        fluid = FluidNetwork(topo, FlowSet(), update_interval=0.1)
        ticks = []
        fluid.on_update.append(lambda now, result: ticks.append(now))
        fluid.start()
        sim.run(until=0.35)
        assert len(ticks) == 4  # t = 0, 0.1, 0.2, 0.3
