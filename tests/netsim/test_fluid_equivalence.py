"""Equivalence of the optimized allocator against the reference.

The incremental-index :func:`max_min_allocate` must match the
O(rounds × links × flows) :func:`max_min_allocate_reference` — rates,
link_load, and link_loss within 1e-9 relative — across randomized
topology/flow configurations (seeded, so failures reproduce exactly).
"""

import random

import pytest

from repro.netsim import (Simulator, make_flow, max_min_allocate,
                          max_min_allocate_reference, random_topology,
                          shortest_path)

N_CONFIGS = 50


def random_scenario(seed):
    """A random topology plus a mixed flow population."""
    rng = random.Random(seed)
    sim = Simulator(seed=seed)
    n_switches = rng.randint(3, 12)
    n_hosts = rng.randint(2, 10)
    topo = random_topology(sim, n_switches, n_hosts,
                           extra_edges=rng.randint(0, 6),
                           link_capacity=rng.choice([1e6, 1e9, 4e10]),
                           seed=seed)
    hosts = topo.host_names
    flows = []
    for index in range(rng.randint(1, 40)):
        src, dst = rng.sample(hosts, 2) if len(hosts) > 1 else (hosts[0],) * 2
        if src == dst:
            continue
        flow = make_flow(src, dst, rng.uniform(0.0, 5e9),
                         weight=rng.uniform(0.1, 100.0),
                         elastic=rng.random() > 0.2,
                         sport=index)
        roll = rng.random()
        if roll < 0.1:
            pass  # pathless flow
        else:
            flow.set_path(shortest_path(topo, src, dst))
        if rng.random() < 0.15:
            flow.police_rate_bps = rng.uniform(0.0, flow.demand_bps + 1.0)
        flows.append(flow)
    return topo, flows


def assert_close(label, seed, got, want, rel=1e-9):
    scale = max(abs(got), abs(want), 1.0)
    assert abs(got - want) <= rel * scale, (
        f"seed {seed}: {label} diverged: optimized={got!r} "
        f"reference={want!r}")


@pytest.mark.parametrize("seed", range(N_CONFIGS))
def test_optimized_matches_reference(seed):
    topo, flows = random_scenario(seed)
    optimized = max_min_allocate(topo, flows)
    reference = max_min_allocate_reference(topo, flows)

    assert optimized.rates.keys() == reference.rates.keys()
    for fid in reference.rates:
        assert_close(f"rate[{fid}]", seed,
                     optimized.rates[fid], reference.rates[fid])
    assert optimized.link_load.keys() == reference.link_load.keys()
    for key in reference.link_load:
        assert_close(f"link_load[{key}]", seed,
                     optimized.link_load[key], reference.link_load[key])
        assert_close(f"link_loss[{key}]", seed,
                     optimized.link_loss[key], reference.link_loss[key])


def test_equivalence_under_removed_links():
    """Both allocators zero-route flows stranded by link removal."""
    rng = random.Random(99)
    sim = Simulator(seed=99)
    topo = random_topology(sim, 8, 6, extra_edges=5, seed=99)
    hosts = topo.host_names
    flows = []
    for index in range(20):
        src, dst = rng.sample(hosts, 2)
        flow = make_flow(src, dst, rng.uniform(1e6, 2e9), sport=index)
        flow.set_path(shortest_path(topo, src, dst))
        flows.append(flow)
    victim = next(iter(topo.links))
    topo.remove_link(*victim)
    optimized = max_min_allocate(topo, flows)
    reference = max_min_allocate_reference(topo, flows)
    assert optimized.rates == reference.rates
    stranded = [f for f in flows
                if f.path is not None and victim in f.path.links()]
    for flow in stranded:
        assert optimized.rates[flow.flow_id] == 0.0
