"""Tests for link transmission, queues, and congestion accounting."""

import pytest

from repro.netsim import Host, Link, Packet


def make_pair(sim, capacity=1e9, delay=0.001, queue_bytes=3000):
    a = Host(sim, "a")
    b = Host(sim, "b")
    link = Link(sim, a, b, capacity, delay, queue_bytes=queue_bytes)
    a.attach_link(link)
    return a, b, link


class TestDelivery:
    def test_packet_arrives_after_serialization_plus_propagation(self, sim):
        a, b, link = make_pair(sim, capacity=1e6, delay=0.01)
        pkt = Packet(src="a", dst="b", size_bytes=1250)  # 10 kbit
        link.send(pkt)
        sim.run()
        # 10 kbit / 1 Mbps = 10 ms serialization + 10 ms propagation.
        assert b.received_count() == 1
        assert sim.now == pytest.approx(0.02)

    def test_back_to_back_packets_serialize(self, sim):
        a, b, link = make_pair(sim, capacity=1e6, delay=0.0)
        for _ in range(3):
            link.send(Packet(src="a", dst="b", size_bytes=1250))
        sim.run()
        assert b.received_count() == 3
        assert sim.now == pytest.approx(0.03)

    def test_stats_count_sent_bytes(self, sim):
        a, b, link = make_pair(sim)
        link.send(Packet(src="a", dst="b", size_bytes=500))
        sim.run()
        assert link.stats.packets_sent == 1
        assert link.stats.bytes_sent == 500


class TestQueueing:
    def test_queue_overflow_drops(self, sim):
        a, b, link = make_pair(sim, capacity=1e3, queue_bytes=2500)
        results = [link.send(Packet(src="a", dst="b", size_bytes=1000))
                   for _ in range(5)]
        # First packet starts transmitting immediately; the queue holds at
        # most 2500 bytes beyond it.
        assert results.count(False) >= 1
        assert link.stats.packets_dropped_queue >= 1

    def test_dropped_packet_has_reason(self, sim):
        a, b, link = make_pair(sim, capacity=1e3, queue_bytes=1000)
        packets = [Packet(src="a", dst="b", size_bytes=1000)
                   for _ in range(4)]
        for pkt in packets:
            link.send(pkt)
        dropped = [p for p in packets if p.dropped]
        assert dropped and all(p.dropped == "queue_overflow" for p in dropped)


class TestFailure:
    def test_down_link_refuses_traffic(self, sim):
        a, b, link = make_pair(sim)
        link.set_down()
        assert link.send(Packet(src="a", dst="b")) is False
        assert link.stats.packets_dropped_down == 1

    def test_link_down_mid_flight_drops_delivery(self, sim):
        a, b, link = make_pair(sim, delay=1.0)
        link.send(Packet(src="a", dst="b"))
        sim.schedule(0.5, link.set_down)
        sim.run()
        assert b.received_count() == 0

    def test_link_recovers(self, sim):
        a, b, link = make_pair(sim)
        link.set_down()
        link.set_up()
        assert link.send(Packet(src="a", dst="b")) is True


class TestCongestionCoupling:
    def test_utilization_tracks_fluid_load(self, sim):
        a, b, link = make_pair(sim, capacity=1e9)
        link.fluid_load_bps = 5e8
        assert link.utilization == pytest.approx(0.5)

    def test_no_loss_below_capacity(self, sim):
        a, b, link = make_pair(sim, capacity=1e9)
        link.fluid_load_bps = 0.99e9
        assert link.congestion_loss_rate == 0.0

    def test_loss_rate_matches_excess(self, sim):
        a, b, link = make_pair(sim, capacity=1e9)
        link.fluid_load_bps = 2e9
        assert link.congestion_loss_rate == pytest.approx(0.5)

    def test_flooded_link_drops_control_packets(self, sim):
        a, b, link = make_pair(sim)
        link.fluid_load_bps = 100e9  # 99% loss
        delivered = sum(
            1 for _ in range(200)
            if link.send(Packet(src="a", dst="b", size_bytes=64)))
        assert delivered < 50  # overwhelming majority dropped

    def test_queuing_delay_grows_with_utilization(self, sim):
        a, b, link = make_pair(sim)
        link.fluid_load_bps = 0.0
        idle = link.queuing_delay_estimate
        link.fluid_load_bps = link.capacity_bps
        busy = link.queuing_delay_estimate
        assert idle == 0.0
        assert busy > 0.0


class TestValidation:
    def test_zero_capacity_rejected(self, sim):
        a, b = Host(sim, "a"), Host(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a, b, 0.0, 0.001)

    def test_negative_delay_rejected(self, sim):
        a, b = Host(sim, "a"), Host(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a, b, 1e9, -0.001)

    def test_observer_called_on_transmit(self, sim):
        a, b, link = make_pair(sim)
        seen = []
        link.on_transmit.append(lambda l, p: seen.append(p.pkt_id))
        pkt = Packet(src="a", dst="b")
        link.send(pkt)
        sim.run()
        assert seen == [pkt.pkt_id]
