"""Property tests: native SSSP/Yen kernels vs the networkx references.

The contract (DESIGN.md "Routing cache"):

* Distances and equal-cost predecessor sets are **bitwise identical**
  to ``nx.dijkstra_predecessor_and_distance`` — same floating-point
  accumulation order, so installed routing tables (which derive from
  predecessors) are byte-identical to the reference installers.
* Single-path and k-shortest-path queries return the same *costs* as
  networkx; the node sequences themselves may differ only where
  networkx's bidirectional search breaks an equal-cost tie differently
  (the documented ECMP tie-break divergence).  On topologies with
  distinct path costs — including the paper's Figure 2 network — the
  sequences are identical too.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.netsim import (GBPS, MS, Simulator, Topology, figure2_topology,
                          all_shortest_paths, all_shortest_paths_reference,
                          install_fast_reroute_alternates,
                          install_fast_reroute_alternates_reference,
                          install_host_routes, install_host_routes_reference,
                          install_switch_routes,
                          install_switch_routes_reference,
                          k_shortest_paths, k_shortest_paths_reference,
                          shortest_path, shortest_path_reference)

SEEDS = range(50)


def random_weighted_topology(seed: int, n_switches: int = 9,
                             n_hosts: int = 5,
                             extra_edges: int = 5) -> Topology:
    """A connected random topology with randomized per-link delays.

    Distinct delays make equal-cost ties rare, so most assertions are
    exact sequence equality; uniform-delay tie behaviour is covered
    separately below.
    """
    sim = Simulator(seed=seed)
    rng = random.Random(f"routing-equivalence:{seed}")
    topo = Topology(sim, name=f"rand{seed}")
    names = [topo.add_switch(f"sw{i}").name for i in range(n_switches)]
    for i in range(1, n_switches):
        parent = names[rng.randrange(i)]
        topo.add_duplex_link(names[i], parent, 10 * GBPS,
                             rng.uniform(0.5, 5.0) * MS)
    added, attempts = 0, 0
    while added < extra_edges and attempts < 200:
        attempts += 1
        a, b = rng.sample(names, 2)
        if (a, b) not in topo.links:
            topo.add_duplex_link(a, b, 10 * GBPS,
                                 rng.uniform(0.5, 5.0) * MS)
            added += 1
    for i in range(n_hosts):
        topo.attach_host(f"h{i}", names[rng.randrange(n_switches)])
    return topo


def path_cost(topo: Topology, nodes) -> float:
    return sum(topo.link(a, b).delay_s for a, b in zip(nodes, nodes[1:]))


# ---------------------------------------------------------------------------
# Layer 0: the Dijkstra kernel itself — bitwise dist, identical pred sets
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_sssp_tree_matches_networkx_bitwise(seed):
    topo = random_weighted_topology(seed)
    graph = topo.build_graph()
    cache = topo.route_cache
    for root in topo.nodes:
        nx_preds, nx_dist = nx.dijkstra_predecessor_and_distance(
            graph, root, weight="weight")
        tree = cache.sssp_tree(root)
        # Bitwise float equality, not approx: the kernel replicates
        # networkx's accumulation order exactly.
        assert tree.dist == nx_dist
        assert {n: sorted(p) for n, p in tree.preds.items()} == \
               {n: sorted(p) for n, p in nx_preds.items()}


# ---------------------------------------------------------------------------
# Pairwise queries: equal cost always; equal sequence unless a tie
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_shortest_path_equivalence(seed):
    topo = random_weighted_topology(seed)
    hosts = topo.host_names
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            native = shortest_path(topo, src, dst)
            ref = shortest_path_reference(topo, src, dst)
            if native.nodes != ref.nodes:
                # Documented divergence: networkx's bidirectional
                # Dijkstra may break an equal-cost tie differently.
                assert path_cost(topo, native.nodes) == pytest.approx(
                    path_cost(topo, ref.nodes), abs=1e-15)
            assert native.nodes[0] == src and native.nodes[-1] == dst


@pytest.mark.parametrize("seed", SEEDS)
def test_k_shortest_paths_equivalence(seed):
    topo = random_weighted_topology(seed)
    hosts = topo.host_names
    k = 4
    for src in hosts[:3]:
        for dst in hosts:
            if src == dst:
                continue
            native = k_shortest_paths(topo, src, dst, k)
            ref = k_shortest_paths_reference(topo, src, dst, k)
            assert len(native) == len(ref)
            native_costs = [path_cost(topo, p.nodes) for p in native]
            ref_costs = [path_cost(topo, p.nodes) for p in ref]
            # Rank-by-rank cost agreement (ties may reorder sequences).
            for a, b in zip(native_costs, ref_costs):
                assert a == pytest.approx(b, abs=1e-15)
            assert native_costs == sorted(native_costs)
            for p in native:
                assert len(set(p.nodes)) == len(p.nodes)  # loop-free
                for a, b in zip(p.nodes, p.nodes[1:]):
                    assert (a, b) in topo.links


@pytest.mark.parametrize("seed", range(10))
def test_all_shortest_paths_equivalence(seed):
    topo = random_weighted_topology(seed)
    hosts = topo.host_names
    for src in hosts[:3]:
        for dst in hosts:
            if src == dst:
                continue
            native = {p.nodes for p in all_shortest_paths(topo, src, dst)}
            ref = {p.nodes for p in
                   all_shortest_paths_reference(topo, src, dst)}
            assert native == ref


# ---------------------------------------------------------------------------
# Installed tables: byte-identical (pred-set derived, no tie exposure)
# ---------------------------------------------------------------------------
def _tables(topo: Topology):
    out = {}
    for name in topo.switch_names:
        sw = topo.switch(name)
        out[name] = (dict(sw.routes), dict(sw.frr_dst))
    return out


@pytest.mark.parametrize("seed", range(10))
def test_installed_tables_identical(seed):
    native_topo = random_weighted_topology(seed)
    install_host_routes(native_topo)
    install_switch_routes(native_topo)
    install_fast_reroute_alternates(native_topo)

    ref_topo = random_weighted_topology(seed)
    install_host_routes_reference(ref_topo)
    install_switch_routes_reference(ref_topo)
    install_fast_reroute_alternates_reference(ref_topo)

    assert _tables(native_topo) == _tables(ref_topo)


# Uniform delays — maximal tie pressure; tables must still be identical
# because they derive from the (exactly matching) predecessor sets.
@pytest.mark.parametrize("seed", range(5))
def test_installed_tables_identical_uniform_delays(seed):
    def build():
        sim = Simulator(seed=seed)
        from repro.netsim import random_topology
        return random_topology(sim, n_switches=10, n_hosts=6,
                               extra_edges=8, seed=seed)

    native_topo = build()
    install_host_routes(native_topo)
    install_switch_routes(native_topo)
    install_fast_reroute_alternates(native_topo)

    ref_topo = build()
    install_host_routes_reference(ref_topo)
    install_switch_routes_reference(ref_topo)
    install_fast_reroute_alternates_reference(ref_topo)

    assert _tables(native_topo) == _tables(ref_topo)


# ---------------------------------------------------------------------------
# Figure 2: the experiments' topology — exact sequence equality everywhere
# ---------------------------------------------------------------------------
def test_figure2_exact_equality():
    net = figure2_topology(Simulator(seed=7))
    topo = net.topo
    hosts = topo.host_names
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            assert shortest_path(topo, src, dst).nodes == \
                shortest_path_reference(topo, src, dst).nodes
            for k in (1, 2, 4):
                assert [p.nodes for p in k_shortest_paths(topo, src,
                                                          dst, k)] == \
                    [p.nodes for p in k_shortest_paths_reference(topo, src,
                                                                 dst, k)]


# ---------------------------------------------------------------------------
# Error contract
# ---------------------------------------------------------------------------
def test_k_shortest_paths_rejects_same_endpoint():
    topo = random_weighted_topology(0)
    with pytest.raises(ValueError, match="distinct endpoints"):
        k_shortest_paths(topo, "h0", "h0", 3)
    with pytest.raises(ValueError, match="distinct endpoints"):
        k_shortest_paths_reference(topo, "h0", "h0", 3)
