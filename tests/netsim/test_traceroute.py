"""Tests for the traceroute client (renamed from netsim.tracing)."""


from repro.netsim import TracerouteClient


class TestTraceroute:
    def test_full_path_reported(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        results = []
        tracer.trace("victim", callback=results.append)
        sim.run(until=2.0)
        assert len(results) == 1
        result = results[0]
        assert result.reached
        # bot0 -> sL -> (s1|s2) -> sR -> victim
        assert result.path[0] == "sL"
        assert result.path[-1] == "victim"
        assert len(result.path) == 4

    def test_hops_indexed_by_ttl(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        results = []
        tracer.trace("decoy0", callback=results.append)
        sim.run(until=2.0)
        result = results[0]
        assert result.hops_by_ttl[1] == "sL"
        assert result.reached_ttl == 4

    def test_reported_links_pair_consecutive_hops(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        results = []
        tracer.trace("victim", callback=results.append)
        sim.run(until=2.0)
        links = results[0].reported_links()
        assert links[0][0] == "sL"
        assert links[-1][1] == "victim"

    def test_timeout_fires_when_unreachable(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0", timeout_s=0.5)
        results = []
        tracer.trace("ghost_host", callback=results.append)
        sim.run(until=2.0)
        assert len(results) == 1
        assert not results[0].reached

    def test_concurrent_traces_do_not_mix(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        results = {}
        tracer.trace("victim", callback=lambda r: results.update(v=r))
        tracer.trace("decoy0", callback=lambda r: results.update(d=r))
        sim.run(until=2.0)
        assert results["v"].path[-1] == "victim"
        assert results["d"].path[-1] == "decoy0"

    def test_result_lookup_by_id(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        trace_id = tracer.trace("victim")
        sim.run(until=2.0)
        assert tracer.result(trace_id).reached

    def test_two_clients_independent(self, fig2, sim):
        tracer_a = TracerouteClient(fig2.topo, "bot0")
        tracer_b = TracerouteClient(fig2.topo, "client0")
        results = []
        tracer_a.trace("victim", callback=results.append)
        tracer_b.trace("victim", callback=results.append)
        sim.run(until=2.0)
        assert len(results) == 2
        assert all(r.reached for r in results)
        assert {r.src for r in results} == {"bot0", "client0"}


class TestDeprecatedTracingAlias:
    def test_old_module_still_imports_with_warning(self):
        import importlib
        import sys
        import warnings

        sys.modules.pop("repro.netsim.tracing", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = importlib.import_module("repro.netsim.tracing")
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert legacy.TracerouteClient is TracerouteClient
