"""Tests for the traceroute client (renamed from netsim.tracing)."""


import pytest

from repro.netsim import TracerouteClient


class TestTraceroute:
    def test_full_path_reported(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        results = []
        tracer.trace("victim", callback=results.append)
        sim.run(until=2.0)
        assert len(results) == 1
        result = results[0]
        assert result.reached
        # bot0 -> sL -> (s1|s2) -> sR -> victim
        assert result.path[0] == "sL"
        assert result.path[-1] == "victim"
        assert len(result.path) == 4

    def test_hops_indexed_by_ttl(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        results = []
        tracer.trace("decoy0", callback=results.append)
        sim.run(until=2.0)
        result = results[0]
        assert result.hops_by_ttl[1] == "sL"
        assert result.reached_ttl == 4

    def test_reported_links_pair_consecutive_hops(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        results = []
        tracer.trace("victim", callback=results.append)
        sim.run(until=2.0)
        links = results[0].reported_links()
        assert links[0][0] == "sL"
        assert links[-1][1] == "victim"

    def test_timeout_fires_when_unreachable(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0", timeout_s=0.5)
        results = []
        tracer.trace("ghost_host", callback=results.append)
        sim.run(until=2.0)
        assert len(results) == 1
        assert not results[0].reached

    def test_concurrent_traces_do_not_mix(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        results = {}
        tracer.trace("victim", callback=lambda r: results.update(v=r))
        tracer.trace("decoy0", callback=lambda r: results.update(d=r))
        sim.run(until=2.0)
        assert results["v"].path[-1] == "victim"
        assert results["d"].path[-1] == "decoy0"

    def test_result_lookup_by_id(self, fig2, sim):
        tracer = TracerouteClient(fig2.topo, "bot0")
        trace_id = tracer.trace("victim")
        sim.run(until=2.0)
        assert tracer.result(trace_id).reached

    def test_two_clients_independent(self, fig2, sim):
        tracer_a = TracerouteClient(fig2.topo, "bot0")
        tracer_b = TracerouteClient(fig2.topo, "client0")
        results = []
        tracer_a.trace("victim", callback=results.append)
        tracer_b.trace("victim", callback=results.append)
        sim.run(until=2.0)
        assert len(results) == 2
        assert all(r.reached for r in results)
        assert {r.src for r in results} == {"bot0", "client0"}


class TestTracingShimRemoved:
    """The ``repro.netsim.tracing`` deprecation shim is gone: it fired a
    module-level DeprecationWarning on import, which polluted warning
    capture in every downstream test that transitively imported it."""

    def test_traceroute_imports_clean(self):
        import importlib
        import sys
        import warnings

        sys.modules.pop("repro.netsim.traceroute", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module("repro.netsim.traceroute")
        assert caught == []
        assert module.TracerouteClient is not None

    def test_old_alias_is_gone(self):
        import importlib
        import sys

        sys.modules.pop("repro.netsim.tracing", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.netsim.tracing")
