"""Tests for hosts and the node base class."""

import pytest

from repro.netsim import Host, Link, Packet, PacketKind, Topology


@pytest.fixture
def wired(sim):
    topo = Topology(sim)
    topo.add_switch("s1")
    topo.attach_host("h1", "s1")
    topo.attach_host("h2", "s1")
    topo.switch("s1").set_route("h2", ["h2"])
    topo.switch("s1").set_route("h1", ["h1"])
    return topo


class TestHostBasics:
    def test_originate_delivers_via_gateway(self, wired, sim):
        wired.host("h1").originate(Packet(src="h1", dst="h2"))
        sim.run()
        assert wired.host("h2").received_count() == 1

    def test_originate_to_self_is_local(self, wired, sim):
        wired.host("h1").originate(Packet(src="h1", dst="h1"))
        assert wired.host("h1").received_count() == 1

    def test_originate_without_gateway_raises(self, sim):
        lonely = Host(sim, "x")
        with pytest.raises(RuntimeError):
            lonely.originate(Packet(src="x", dst="y"))

    def test_host_drops_transit_traffic(self, wired, sim):
        pkt = Packet(src="h1", dst="elsewhere")
        wired.host("h2").receive(pkt)
        assert pkt.dropped == "host_not_destination"

    def test_callbacks_fire_per_packet(self, wired, sim):
        seen = []
        wired.host("h2").on_packet(lambda p: seen.append(p.src))
        wired.host("h1").originate(Packet(src="h1", dst="h2"))
        sim.run()
        assert seen == ["h1"]

    def test_retain_limit_caps_stored_packets(self, wired, sim):
        h2 = wired.host("h2")
        h2.retain_limit = 3
        for _ in range(5):
            wired.host("h1").originate(Packet(src="h1", dst="h2"))
        sim.run()
        assert len(h2.received_packets) == 3
        assert h2.received_count() == 5

    def test_received_by_kind_separates_traffic(self, wired, sim):
        wired.host("h1").originate(Packet(src="h1", dst="h2"))
        wired.host("h1").originate(
            Packet(src="h1", dst="h2", kind=PacketKind.PROBE))
        sim.run()
        assert wired.host("h2").received_count(PacketKind.DATA) == 1
        assert wired.host("h2").received_count(PacketKind.PROBE) == 1


class TestTracerouteReply:
    def test_destination_answers_traceroute(self, wired, sim):
        probe = Packet(src="h1", dst="h2", kind=PacketKind.TRACEROUTE,
                       ttl=8, headers={"probe_id": 7, "probe_ttl": 2})
        wired.host("h1").originate(probe)
        sim.run()
        replies = [p for p in wired.host("h1").received_packets
                   if p.kind == PacketKind.ICMP_TTL_EXCEEDED]
        assert len(replies) == 1
        assert replies[0].headers["destination_reached"] is True
        assert replies[0].headers["reporter"] == "h2"
        assert replies[0].headers["probe_id"] == 7


class TestNodePlumbing:
    def test_attach_foreign_link_rejected(self, sim):
        a, b, c = Host(sim, "a"), Host(sim, "b"), Host(sim, "c")
        link = Link(sim, a, b, 1e9, 0.001)
        with pytest.raises(ValueError):
            c.attach_link(link)

    def test_link_to_unknown_neighbor_raises(self, sim):
        host = Host(sim, "a")
        with pytest.raises(KeyError):
            host.link_to("ghost")

    def test_neighbors_lists_attached(self, wired):
        assert wired.host("h1").neighbors == ["s1"]
        assert set(wired.switch("s1").neighbors) == {"h1", "h2"}
