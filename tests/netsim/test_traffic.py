"""Tests for traffic matrices and workload generators."""

import pytest

from repro.netsim import (GBPS, TrafficMatrix, client_server_flows,
                          figure2_topology, gravity_matrix, make_flow,
                          poisson_flow_arrivals, uniform_matrix)


class TestTrafficMatrix:
    def test_set_and_get(self):
        tm = TrafficMatrix()
        tm.set_demand("a", "b", 1e9)
        assert tm.demand("a", "b") == 1e9
        assert tm.demand("b", "a") == 0.0

    def test_self_demand_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix().set_demand("a", "a", 1.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix().set_demand("a", "b", -1.0)

    def test_total_and_scaled(self):
        tm = TrafficMatrix()
        tm.set_demand("a", "b", 2.0)
        tm.set_demand("b", "c", 3.0)
        assert tm.total() == 5.0
        assert tm.scaled(2.0).total() == 10.0

    def test_from_flows_aggregates_pairs(self):
        flows = [make_flow("a", "b", 1.0, sport=1),
                 make_flow("a", "b", 2.0, sport=2),
                 make_flow("b", "c", 4.0)]
        tm = TrafficMatrix.from_flows(flows)
        assert tm.demand("a", "b") == 3.0
        assert tm.demand("b", "c") == 4.0

    def test_to_flows_skips_zero_entries(self):
        tm = TrafficMatrix()
        tm.set_demand("a", "b", 0.0)
        tm.set_demand("b", "c", 1.0)
        flows = tm.to_flows()
        assert len(flows) == 1
        assert flows[0].src == "b"


class TestGenerators:
    def test_uniform_matrix_covers_all_pairs(self, sim):
        net = figure2_topology(sim, n_clients=2, n_bots=0)
        tm = uniform_matrix(net.topo, 1e6,
                            hosts=["client0", "client1", "victim"])
        assert len(tm.pairs()) == 6
        assert tm.demand("client0", "victim") == 1e6

    def test_gravity_matrix_total_preserved(self, sim):
        net = figure2_topology(sim)
        hosts = ["client0", "client1", "victim"]
        tm = gravity_matrix(net.topo, 10 * GBPS, hosts=hosts)
        assert tm.total() == pytest.approx(10 * GBPS)
        assert all(v >= 0 for v in tm.demands.values())

    def test_gravity_needs_two_hosts(self, sim):
        net = figure2_topology(sim)
        with pytest.raises(ValueError):
            gravity_matrix(net.topo, 1e9, hosts=["victim"])

    def test_client_server_flows(self):
        flows = client_server_flows(["c0", "c1"], "srv", 5e6)
        assert len(flows) == 2
        assert all(f.dst == "srv" and f.demand_bps == 5e6 for f in flows)

    def test_poisson_arrivals_within_horizon(self):
        import random
        rng = random.Random(3)
        flows = poisson_flow_arrivals(rng, ["c0", "c1"], "srv",
                                      rate_per_s=20.0,
                                      mean_size_bytes=1e6, horizon_s=5.0)
        assert flows, "expected some arrivals at 20/s over 5s"
        for flow in flows:
            assert 0 <= flow.start_time < 5.0
            assert flow.end_time > flow.start_time

    def test_poisson_rate_must_be_positive(self):
        import random
        with pytest.raises(ValueError):
            poisson_flow_arrivals(random.Random(0), ["c"], "s", 0.0,
                                  1e6, 1.0)

    def test_poisson_sports_stay_in_16bit_port_space(self):
        """Regression: sport was len(flows)+1024 without wrapping, which
        overflows the 16-bit port space once a horizon produces more than
        ~64.5k flows."""
        import random
        rng = random.Random(11)
        flows = poisson_flow_arrivals(rng, ["c0"], "srv",
                                      rate_per_s=20000.0,
                                      mean_size_bytes=1e4, horizon_s=4.0)
        assert len(flows) > 65535, "need enough flows to wrap"
        for flow in flows:
            assert 1024 <= flow.key.sport < 65535
        # The wrap is deterministic: flow i gets 1024 + i mod 64511.
        assert flows[0].key.sport == 1024
        assert flows[64511].key.sport == 1024
