"""Batch-path equivalence and plumbing tests at the netsim layer.

The contract under test: delivering a window of packets through
``ProgrammableSwitch.receive_batch`` / ``Link.send_batch`` leaves every
program structure, every counter, and every per-packet drop decision in
exactly the state the per-packet path produces.  Plus the plumbing:
batch sources, host batch origination, scalar-program fallback, and the
batch telemetry counters.
"""

import random

import pytest

from repro.boosters.heavy_hitter import (HeavyHitterFilterProgram,
                                         HeavyHitterProgram)
from repro.boosters.hop_count import (HopCountFilterBooster,
                                      HopCountFilterProgram)
from repro.boosters.packet_dropper import PacketDropperProgram
from repro.boosters.rate_limiter import (TENANT_HEADER,
                                         GlobalRateLimiterBooster,
                                         RateLimiterProgram)
from repro.netsim import (BatchPacketSource, Consume, Drop, Forward, Packet,
                          PacketKind, Protocol, Simulator, SwitchProgram,
                          Topology)

SEEDS = range(50)


def build_topology(seed):
    """One switch, one destination host, the four batch-capable boosters."""
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    topo.add_switch("s1")
    topo.add_host("h_dst", gateway="s1")
    topo.add_duplex_link("s1", "h_dst", 10e9, 0.001)
    sw = topo.switch("s1")
    sw.set_route("h_dst", ["h_dst"])
    hh = HeavyHitterProgram("hh", "hh.counter", stages=2, slots_per_stage=8)
    filt = HeavyHitterFilterProgram("hh.filter", "hh.filter")
    filt.flag("src3")
    filt.flag("src7")
    dropper = PacketDropperProgram("dropper", "dropper.blocklist",
                                   size_bits=512)
    limiter = RateLimiterProgram(
        GlobalRateLimiterBooster(limits={"tA": 1.0}),
        "rate_limiter.tenant_counts")
    hop = HopCountFilterProgram(HopCountFilterBooster(),
                                "hop_count.hc_table")
    for program in (hh, filt, dropper, limiter, hop):
        sw.install_program(program)
    return sim, topo, sw, (hh, filt, dropper, limiter, hop)


def make_packets(seed, dropper):
    rng = random.Random(seed)
    packets = []
    for _ in range(150):
        packet = Packet(
            src=f"src{rng.randrange(10)}", dst="h_dst",
            size_bytes=rng.choice([64, 512, 1500]),
            proto=Protocol.UDP, sport=rng.randrange(4), dport=80,
            ttl=64 - rng.randrange(3),
            headers=({TENANT_HEADER: "tA"} if rng.random() < 0.5 else {}))
        if rng.random() < 0.1:
            packet.kind = PacketKind.PROBE
        packets.append(packet)
        if rng.random() < 0.05:
            dropper.block(packet.flow_key)
    return packets


class TestSwitchBatchEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_path_is_byte_identical(self, seed):
        sim_a, topo_a, sw_a, progs_a = build_topology(seed)
        sim_b, topo_b, sw_b, progs_b = build_topology(seed)
        pkts_a = make_packets(seed + 1000, progs_a[2])
        pkts_b = make_packets(seed + 1000, progs_b[2])

        for packet in pkts_a:
            sw_a.receive(packet)
        sw_b.receive_batch(pkts_b)
        sim_a.run()
        sim_b.run()

        # Per-structure state is byte-identical.
        hh_a, filt_a, dropper_a, limiter_a, hop_a = progs_a
        hh_b, filt_b, dropper_b, limiter_b, hop_b = progs_b
        assert hh_a.pipe.export_state() == hh_b.pipe.export_state()
        assert (dropper_a.blocklist.export_state()
                == dropper_b.blocklist.export_state())
        assert limiter_a.export_state() == limiter_b.export_state()
        assert hop_a.learned == hop_b.learned
        assert (filt_a.packets_dropped, dropper_a.packets_dropped,
                limiter_a.packets_dropped, hop_a.packets_dropped,
                hop_a.mismatches) == \
               (filt_b.packets_dropped, dropper_b.packets_dropped,
                limiter_b.packets_dropped, hop_b.packets_dropped,
                hop_b.mismatches)

        # Same forwarding stats and the same per-packet drop decisions.
        stats_a, stats_b = sw_a.stats, sw_b.stats
        assert (stats_a.packets_forwarded, stats_a.packets_dropped_by_program,
                stats_a.packets_consumed, stats_a.ttl_expired,
                stats_a.packets_dropped_no_route) == \
               (stats_b.packets_forwarded, stats_b.packets_dropped_by_program,
                stats_b.packets_consumed, stats_b.ttl_expired,
                stats_b.packets_dropped_no_route)
        assert ([p.dropped for p in pkts_a]
                == [p.dropped for p in pkts_b])
        host_a, host_b = topo_a.host("h_dst"), topo_b.host("h_dst")
        assert dict(host_a.received_by_kind) == dict(host_b.received_by_kind)


class _ScalarTagger(SwitchProgram):
    """A per-packet-only program (no batch kernel) used to exercise the
    fallback path."""

    def __init__(self):
        super().__init__("tagger")
        self.seen = 0

    def process(self, switch, packet):
        self.seen += 1
        packet.headers["tagged"] = True
        if packet.headers.get("please_drop"):
            return Drop("tagged_drop")
        if packet.headers.get("please_consume"):
            return Consume()
        if packet.headers.get("detour"):
            return Forward(packet.headers["detour"])
        return None


class TestFallbackAndDecisions:
    def test_scalar_program_falls_back_per_packet(self):
        sim = Simulator(seed=0)
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.add_host("h_dst", gateway="s1")
        topo.add_duplex_link("s1", "h_dst", 10e9, 0.001)
        sw = topo.switch("s1")
        sw.set_route("h_dst", ["h_dst"])
        tagger = _ScalarTagger()
        sw.install_program(tagger)

        packets = [Packet(src="a", dst="h_dst") for _ in range(5)]
        packets[1].headers["please_drop"] = True
        packets[3].headers["please_consume"] = True
        sw.receive_batch(packets)
        sim.run()

        assert tagger.seen == 5
        assert all(p.headers.get("tagged") for p in packets)
        assert packets[1].dropped == "tagged_drop"
        assert sw.stats.packets_dropped_by_program == 1
        assert sw.stats.packets_consumed == 1
        assert sw.stats.packets_forwarded == 3
        assert topo.host("h_dst").received_count() == 3

    def test_forward_override_applies_on_batch_path(self):
        sim = Simulator(seed=0)
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.add_switch("s2")
        topo.add_host("h_dst", gateway="s2")
        topo.add_duplex_link("s1", "h_dst", 10e9, 0.001)
        topo.add_duplex_link("s1", "s2", 10e9, 0.001)
        topo.add_duplex_link("s2", "h_dst", 10e9, 0.001)
        sw1, sw2 = topo.switch("s1"), topo.switch("s2")
        sw1.set_route("h_dst", ["h_dst"])  # default: direct
        sw2.set_route("h_dst", ["h_dst"])
        sw1.install_program(_ScalarTagger())

        packet = Packet(src="a", dst="h_dst", headers={"detour": "s2"})
        sw1.receive_batch([packet])
        sim.run()
        assert packet.path_taken[:2] == ["s1", "s2"]

    def test_reconfiguring_switch_drops_whole_batch(self):
        sim = Simulator(seed=0)
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.add_host("h_dst", gateway="s1")
        topo.add_duplex_link("s1", "h_dst", 10e9, 0.001)
        sw = topo.switch("s1")
        sw.set_route("h_dst", ["h_dst"])
        sw.reconfiguring = True
        packets = [Packet(src="a", dst="h_dst") for _ in range(3)]
        sw.receive_batch(packets)
        assert sw.stats.packets_dropped_reconfig == 3
        assert all(p.dropped == "switch_reconfiguring" for p in packets)

    def test_ttl_expiry_leaves_batch_and_replies(self):
        sim = Simulator(seed=0)
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.add_host("h_src", gateway="s1")
        topo.add_host("h_dst", gateway="s1")
        topo.add_duplex_link("s1", "h_src", 10e9, 0.001)
        topo.add_duplex_link("s1", "h_dst", 10e9, 0.001)
        sw = topo.switch("s1")
        sw.set_route("h_dst", ["h_dst"])
        sw.set_route("h_src", ["h_src"])
        expired = Packet(src="h_src", dst="h_dst", ttl=1,
                         kind=PacketKind.TRACEROUTE)
        healthy = Packet(src="h_src", dst="h_dst")
        sw.receive_batch([expired, healthy])
        sim.run()
        assert sw.stats.ttl_expired == 1
        assert topo.host("h_dst").received_count() == 1
        assert topo.host("h_src").received_count(
            PacketKind.ICMP_TTL_EXCEEDED) == 1


class TestLinkSendBatch:
    def _link(self, queue_bytes=None):
        sim = Simulator(seed=0)
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.add_host("h", gateway="s1")
        kwargs = {} if queue_bytes is None else {"queue_bytes": queue_bytes}
        topo.add_duplex_link("s1", "h", 1e9, 0.001, **kwargs)
        return sim, topo, topo.link("s1", "h")

    def test_accepts_and_delivers_as_one_window(self):
        sim, topo, link = self._link()
        packets = [Packet(src="a", dst="h", size_bytes=1000)
                   for _ in range(10)]
        events_before = sim.pending()
        assert link.send_batch(packets) == 10
        # One delivery event + one serializer-free event, not 10 pairs.
        assert sim.pending() - events_before == 2
        sim.run()
        assert topo.host("h").received_count() == 10
        assert link.stats.packets_sent == 10
        assert link.stats.bytes_sent == 10_000

    def test_queue_overflow_matches_sequential_admission(self):
        # Queue fits 3 x 1000B: the 4th+ packets tail-drop, like send().
        sim, topo, link = self._link(queue_bytes=3000)
        packets = [Packet(src="a", dst="h", size_bytes=1000)
                   for _ in range(5)]
        accepted = link.send_batch(packets)
        assert accepted == 3
        assert link.stats.packets_dropped_queue == 2
        assert [p.dropped for p in packets] == \
            [None, None, None, "queue_overflow", "queue_overflow"]

    def test_down_link_drops_everything(self):
        sim, topo, link = self._link()
        link.set_down()
        packets = [Packet(src="a", dst="h") for _ in range(3)]
        assert link.send_batch(packets) == 0
        assert link.stats.packets_dropped_down == 3
        assert all(p.dropped == "link_down" for p in packets)

    def test_congestion_draws_match_sequential(self):
        # Same seed, same loss rate -> identical RNG verdicts on both
        # paths (the draw-order contract).
        def run(batched):
            sim, topo, link = self._link()
            link.fluid_load_bps = 2e9  # 50% congestion loss
            packets = [Packet(src="a", dst="h") for _ in range(40)]
            if batched:
                link.send_batch(packets)
            else:
                for packet in packets:
                    link.send(packet)
            return [p.dropped for p in packets]

        assert run(batched=True) == run(batched=False)


class TestHostAndSource:
    def _topo(self):
        sim = Simulator(seed=0)
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.add_host("h_src", gateway="s1")
        topo.add_host("h_dst", gateway="s1")
        topo.add_duplex_link("s1", "h_src", 10e9, 0.001)
        topo.add_duplex_link("s1", "h_dst", 10e9, 0.001)
        topo.switch("s1").set_route("h_dst", ["h_dst"])
        topo.switch("s1").set_route("h_src", ["h_src"])
        return sim, topo

    def test_originate_batch_short_circuits_local(self):
        sim, topo = self._topo()
        host = topo.host("h_src")
        packets = [Packet(src="h_src", dst="h_src"),
                   Packet(src="h_src", dst="h_dst")]
        assert host.originate_batch(packets) == 2
        sim.run()
        assert host.received_count() == 1
        assert topo.host("h_dst").received_count() == 1

    def test_batch_source_hits_exact_rate(self):
        sim, topo = self._topo()
        source = BatchPacketSource(topo, "h_src", "h_dst",
                                   rate_pps=330.0, window_s=0.01).start()
        sim.run(until=1.0)
        source.stop()
        # 3.3 packets/window: credit accumulation must not lose the
        # fractional remainder (within one window's worth at the edge).
        assert abs(source.packets_sent - 330) <= 4
        assert source.batches_sent > 0
        assert topo.host("h_dst").received_count() == source.packets_sent

    def test_batch_source_validation(self):
        sim, topo = self._topo()
        with pytest.raises(ValueError):
            BatchPacketSource(topo, "h_src", "h_dst", rate_pps=0)
        with pytest.raises(ValueError):
            BatchPacketSource(topo, "h_src", "h_dst", rate_pps=10,
                              window_s=0)


class TestGatedBatch:
    def test_disabled_booster_skips_batch_kernel(self):
        sim = Simulator(seed=0)
        topo = Topology(sim)
        topo.add_switch("s1")
        topo.add_host("h_dst", gateway="s1")
        topo.add_duplex_link("s1", "h_dst", 10e9, 0.001)
        sw = topo.switch("s1")
        sw.set_route("h_dst", ["h_dst"])
        filt = HeavyHitterFilterProgram("hh.filter", "hh.filter")
        filt.flag("bad")
        filt.enabled_on = lambda switch: False  # gate closed
        sw.install_program(filt)
        packets = [Packet(src="bad", dst="h_dst") for _ in range(3)]
        sw.receive_batch(packets)
        sim.run()
        assert filt.packets_dropped == 0
        assert topo.host("h_dst").received_count() == 3
