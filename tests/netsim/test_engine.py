"""Tests for the discrete-event engine."""

import pytest

from repro.netsim import SimContext, SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(3.0, order.append, "latest")
        sim.run()
        assert order == ["early", "late", "latest"]

    def test_ties_break_by_insertion_order(self, sim):
        order = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_schedule_in_past_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_before_now_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0

    def test_kwargs_passed_through(self, sim):
        result = {}
        sim.schedule(0.5, lambda **kw: result.update(kw), value=7)
        sim.run()
        assert result == {"value": 7}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending() == 1
        del keep


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0

    def test_run_until_advances_clock_on_empty_queue(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_budget(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_max_events_truncation_does_not_jump_clock(self, sim):
        """Regression: when `max_events` truncates a bounded run, the
        clock must not jump to `until` past still-queued events — a later
        run() would then set `now` backwards (time travel)."""
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(until=20.0, max_events=3)
        assert sim.now == 3.0  # at the last executed event, not 20.0
        observed = []
        sim.add_tracer(lambda t, h: observed.append(t))
        sim.run(until=20.0)
        assert observed == sorted(observed)
        assert fired == list(range(10))
        assert sim.now == 20.0

    def test_truncated_run_resumes_without_losing_events(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(until=10.0, max_events=2)
        assert fired == [0, 1]
        sim.run(until=10.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_still_advances_when_only_cancelled_events_remain(
            self, sim):
        handle = sim.schedule(3.0, lambda: None)
        handle.cancel()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_step_executes_one_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_events_executed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestPeriodic:
    def test_periodic_fires_at_interval(self, sim):
        times = []
        sim.every(1.0, lambda: times.append(sim.now))
        sim.run(until=4.5)
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_periodic_with_start_offset(self, sim):
        times = []
        sim.every(2.0, lambda: times.append(sim.now), start=1.0)
        sim.run(until=6.0)
        assert times == [1.0, 3.0, 5.0]

    def test_stop_halts_recurrence(self, sim):
        times = []
        proc = sim.every(1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, proc.stop)
        sim.run(until=10.0)
        assert times == [0.0, 1.0, 2.0]

    def test_interval_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_interval_change_applies_next_cycle(self, sim):
        times = []
        proc = sim.every(1.0, lambda: times.append(sim.now))

        def widen():
            proc.interval = 3.0

        sim.schedule(1.5, widen)
        sim.run(until=9.0)
        assert times == [0.0, 1.0, 2.0, 5.0, 8.0]


class TestDeterminism:
    def test_same_seed_same_rng_stream(self):
        a = Simulator(seed=123)
        b = Simulator(seed=123)
        assert [a.rng.random() for _ in range(5)] == \
            [b.rng.random() for _ in range(5)]

    def test_different_seed_different_stream(self):
        a = Simulator(seed=1)
        b = Simulator(seed=2)
        assert a.rng.random() != b.rng.random()


class TestContext:
    def test_context_exposes_clock_and_rng(self, sim):
        ctx = SimContext(sim=sim)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert ctx.now == 2.0
        assert ctx.rng is sim.rng

    def test_tracer_sees_events(self, sim):
        traced = []
        sim.add_tracer(lambda t, h: traced.append(t))
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert traced == [1.0, 2.0]


class TestWindowedRun:
    """run_windows slices a run into fixed windows without changing any
    observable — the mechanism the sharded coordinator barriers on."""

    def test_windowing_is_observationally_free(self):
        def build():
            sim = Simulator(seed=7)
            log = []
            sim.every(0.3, lambda: log.append(round(sim.now, 6)))
            sim.schedule(1.0, lambda: log.append("one-shot"))
            return sim, log

        plain_sim, plain_log = build()
        plain_sim.run(until=2.0)
        windowed_sim, windowed_log = build()
        windowed_sim.run_windows(2.0, window=0.25)
        assert windowed_log == plain_log
        assert windowed_sim.now == plain_sim.now

    def test_on_window_called_at_each_boundary(self):
        sim = Simulator()
        boundaries = []
        sim.run_windows(1.0, window=0.4,
                        on_window=lambda s, b: boundaries.append(b))
        assert boundaries == [0.4, 0.8, 1.0]

    def test_invalid_windows_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run_windows(1.0, window=0.0)
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.run_windows(1.0, window=0.5)

    def test_next_event_time(self):
        sim = Simulator()
        assert sim.next_event_time() is None
        handle = sim.schedule(0.5, lambda: None)
        sim.schedule(1.5, lambda: None)
        assert sim.next_event_time() == 0.5
        handle.cancel()
        assert sim.next_event_time() == 1.5
