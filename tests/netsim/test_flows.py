"""Tests for flow descriptors and the flow set."""

import pytest

from repro.netsim import FlowSet, Path, make_flow


class TestFlow:
    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            make_flow("a", "b", -1.0)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            make_flow("a", "b", 1e6, weight=0.0)

    def test_active_window(self):
        flow = make_flow("a", "b", 1e6, start_time=5.0, end_time=10.0)
        assert not flow.active(4.9)
        assert flow.active(5.0)
        assert flow.active(9.9)
        assert not flow.active(10.0)

    def test_open_ended_flow_stays_active(self):
        flow = make_flow("a", "b", 1e6)
        assert flow.active(1e9)

    def test_set_path_validates_endpoints(self):
        flow = make_flow("a", "b", 1e6)
        with pytest.raises(ValueError):
            flow.set_path(Path.of(["a", "c"]))
        flow.set_path(Path.of(["a", "s", "b"]))
        assert flow.path.nodes == ("a", "s", "b")

    def test_set_path_none_clears(self):
        flow = make_flow("a", "b", 1e6, path=Path.of(["a", "b"]))
        flow.set_path(None)
        assert flow.path is None

    def test_effective_demand_respects_policing(self):
        flow = make_flow("a", "b", 10e6)
        assert flow.effective_demand_bps == 10e6
        flow.police_rate_bps = 2e6
        assert flow.effective_demand_bps == 2e6
        flow.police_rate_bps = 50e6  # cap above demand is inert
        assert flow.effective_demand_bps == 10e6

    def test_flow_ids_unique(self):
        a = make_flow("a", "b", 1.0)
        b = make_flow("a", "b", 1.0)
        assert a.flow_id != b.flow_id


class TestFlowSet:
    def test_add_and_iterate(self):
        flows = FlowSet()
        flow = flows.add(make_flow("a", "b", 1e6))
        assert list(flows) == [flow]
        assert len(flows) == 1

    def test_double_add_rejected(self):
        flows = FlowSet()
        flow = flows.add(make_flow("a", "b", 1e6))
        with pytest.raises(ValueError):
            flows.add(flow)

    def test_remove_is_silent_for_unknown(self):
        flows = FlowSet()
        flows.remove(make_flow("a", "b", 1e6))

    def test_active_filters_by_time(self):
        flows = FlowSet()
        early = flows.add(make_flow("a", "b", 1e6, end_time=5.0))
        late = flows.add(make_flow("a", "b", 1e6, start_time=10.0))
        assert flows.active(2.0) == [early]
        assert flows.active(12.0) == [late]

    def test_normal_and_malicious_partitions(self):
        flows = FlowSet()
        good = flows.add(make_flow("a", "b", 1e6))
        bad = flows.add(make_flow("c", "b", 1e6, malicious=True))
        assert flows.normal() == [good]
        assert flows.malicious() == [bad]

    def test_to_destination(self):
        flows = FlowSet()
        hit = flows.add(make_flow("a", "victim", 1e6))
        flows.add(make_flow("a", "other", 1e6))
        assert flows.to_destination("victim") == [hit]

    def test_crossing_link_is_directional(self):
        flows = FlowSet()
        flow = flows.add(make_flow("a", "b", 1e6,
                                   path=Path.of(["a", "s1", "s2", "b"])))
        assert flows.crossing_link("s1", "s2") == [flow]
        assert flows.crossing_link("s2", "s1") == []
