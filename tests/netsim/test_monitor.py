"""Tests for the metric monitor."""

import pytest

from repro.netsim import (FlowSet, FluidNetwork, Monitor, Path, TimeSeries,
                          Topology, make_flow)


@pytest.fixture
def small_fluid(sim):
    topo = Topology(sim)
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.attach_host("h1", "s1")
    topo.attach_host("h2", "s2")
    topo.add_duplex_link("s1", "s2", 1e9, 0.001)
    flows = FlowSet()
    flows.add(make_flow("h1", "h2", 0.5e9,
                        path=Path.of(["h1", "s1", "s2", "h2"])))
    return FluidNetwork(topo, flows, tcp_tau=0.0).start()


class TestTimeSeries:
    def test_window_selects_half_open_interval(self):
        series = TimeSeries("x")
        for t in (0.0, 1.0, 2.0, 3.0):
            series.record(t, t * 10)
        assert series.window(1.0, 3.0) == [(1.0, 10.0), (2.0, 20.0)]

    def test_mean_and_min_over(self):
        series = TimeSeries("x")
        for t, v in ((0.0, 1.0), (1.0, 3.0), (2.0, 5.0)):
            series.record(t, v)
        assert series.mean_over(0.0, 3.0) == pytest.approx(3.0)
        assert series.min_over(1.0, 3.0) == 3.0

    def test_empty_window_raises(self):
        series = TimeSeries("x")
        with pytest.raises(ValueError):
            series.mean_over(0.0, 1.0)

    def test_last(self):
        series = TimeSeries("x")
        with pytest.raises(ValueError):
            series.last()
        series.record(1.0, 42.0)
        assert series.last() == 42.0


class TestMonitor:
    def test_period_validated(self, small_fluid):
        with pytest.raises(ValueError):
            Monitor(small_fluid, period=0.0)

    def test_samples_at_period(self, small_fluid, sim):
        monitor = Monitor(small_fluid, period=0.5)
        monitor.add_gauge("const", lambda: 7.0)
        monitor.start()
        sim.run(until=2.2)
        series = monitor.get("const")
        assert series.times == [0.0, 0.5, 1.0, 1.5, 2.0]
        assert all(v == 7.0 for v in series.values)

    def test_normalized_goodput_gauge(self, small_fluid, sim):
        monitor = Monitor(small_fluid, period=0.5)
        monitor.watch_normal_goodput(baseline_bps=0.5e9)
        monitor.start()
        sim.run(until=1.1)
        assert monitor.get("normal_goodput_norm").last() == \
            pytest.approx(1.0, rel=1e-3)

    def test_link_utilization_gauge(self, small_fluid, sim):
        monitor = Monitor(small_fluid, period=0.5)
        monitor.watch_link_utilization("s1", "s2")
        monitor.start()
        sim.run(until=1.1)
        assert monitor.get("util:s1->s2").last() == pytest.approx(0.5,
                                                                  rel=1e-3)

    def test_duplicate_gauge_rejected(self, small_fluid):
        monitor = Monitor(small_fluid)
        monitor.add_gauge("x", lambda: 0.0)
        with pytest.raises(ValueError):
            monitor.add_gauge("x", lambda: 1.0)

    def test_unknown_series_raises(self, small_fluid):
        with pytest.raises(KeyError):
            Monitor(small_fluid).get("ghost")

    def test_zero_baseline_rejected(self, small_fluid):
        with pytest.raises(ValueError):
            Monitor(small_fluid).watch_normal_goodput(0.0)

    def test_stop_halts_sampling(self, small_fluid, sim):
        monitor = Monitor(small_fluid, period=0.5)
        monitor.add_gauge("x", lambda: 1.0)
        monitor.start()
        sim.schedule(1.1, monitor.stop)
        sim.run(until=3.0)
        assert len(monitor.get("x")) == 3


class TestMonitorEdgeCases:
    def test_duplicate_rejected_across_stop_start_cycles(self, small_fluid,
                                                         sim):
        monitor = Monitor(small_fluid, period=0.5)
        monitor.add_gauge("x", lambda: 1.0)
        monitor.start()
        sim.run(until=0.6)
        monitor.stop()
        # The name is the series identity: a stop()/start() cycle must not
        # reopen it for re-registration (that would silently fork history).
        with pytest.raises(ValueError):
            monitor.add_gauge("x", lambda: 2.0)
        monitor.start()
        with pytest.raises(ValueError):
            monitor.add_gauge("x", lambda: 3.0)
        sim.run(until=1.1)
        # ...and the original callable keeps feeding the original series.
        assert all(v == 1.0 for v in monitor.get("x").values)

    def test_new_names_allowed_after_restart(self, small_fluid, sim):
        monitor = Monitor(small_fluid, period=0.5)
        monitor.add_gauge("x", lambda: 1.0)
        monitor.start()
        sim.run(until=0.6)
        monitor.stop()
        monitor.add_gauge("y", lambda: 2.0)
        monitor.start()
        sim.run(until=1.7)
        # restart samples immediately: t = 0.6, 1.1, 1.6
        assert monitor.get("y").values == [2.0, 2.0, 2.0]
        assert len(monitor.get("x")) == 5

    def test_repeated_stop_is_idempotent(self, small_fluid, sim):
        monitor = Monitor(small_fluid, period=0.5)
        monitor.add_gauge("x", lambda: 1.0)
        monitor.start()
        sim.run(until=0.6)
        monitor.stop()
        monitor.stop()  # no process to stop: must be a no-op
        sim.run(until=2.0)
        assert len(monitor.get("x")) == 2


class TestWindowBoundaries:
    """window() is half-open [t0, t1): t0 included, t1 excluded."""

    def test_sample_exactly_at_t0_included(self):
        series = TimeSeries("x")
        series.record(1.0, 10.0)
        assert series.window(1.0, 2.0) == [(1.0, 10.0)]

    def test_sample_exactly_at_t1_excluded(self):
        series = TimeSeries("x")
        series.record(2.0, 20.0)
        assert series.window(1.0, 2.0) == []

    def test_degenerate_window_empty(self):
        series = TimeSeries("x")
        series.record(1.0, 10.0)
        assert series.window(1.0, 1.0) == []

    def test_mean_over_respects_boundaries(self):
        series = TimeSeries("x")
        for t, v in ((0.0, 1.0), (1.0, 3.0), (2.0, 100.0)):
            series.record(t, v)
        # [0, 2) picks up t=0 and t=1 but not t=2.
        assert series.mean_over(0.0, 2.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            series.mean_over(2.0, 2.0)
