"""Cache-invalidation contract of the versioned route cache.

DESIGN.md "Routing cache" states the contract these tests pin down:
every structural mutation bumps ``Topology.version``; capacity-only
changes keep the delay-derived layers (SSSP trees, Yen candidates);
removals flush trees but drop only the candidate sets whose paths cross
a removed link; additions and delay changes flush everything.  A stale
cached path through a removed link must never be served, and sweep
workers must never leak routing-cache counters between tasks.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.netsim import (GBPS, MS, NoRouteError, Path, Simulator, Topology,
                          install_host_routes, k_shortest_paths,
                          shortest_path)
from repro.sweep.drivers import register_driver
from repro.sweep.runner import run_task


def diamond_topology() -> Topology:
    """Two hosts, four switches, two disjoint equal-ish routes::

        hA - s1 - s2 - s4 - hB      (fast: 1ms per hop)
               \\- s3 -/            (slow: 3ms per hop)
    """
    sim = Simulator(seed=1)
    topo = Topology(sim, name="diamond")
    for name in ("s1", "s2", "s3", "s4"):
        topo.add_switch(name)
    topo.add_duplex_link("s1", "s2", 10 * GBPS, 1 * MS)
    topo.add_duplex_link("s2", "s4", 10 * GBPS, 1 * MS)
    topo.add_duplex_link("s1", "s3", 10 * GBPS, 3 * MS)
    topo.add_duplex_link("s3", "s4", 10 * GBPS, 3 * MS)
    topo.attach_host("hA", "s1")
    topo.attach_host("hB", "s4")
    return topo


# ---------------------------------------------------------------------------
# Version bumps and stale-path protection
# ---------------------------------------------------------------------------
def test_remove_link_invalidates_cached_path():
    topo = diamond_topology()
    before = topo.version
    fast = shortest_path(topo, "hA", "hB")
    assert fast.contains_link("s1", "s2")
    topo.remove_link("s1", "s2")
    assert topo.version > before
    rerouted = shortest_path(topo, "hA", "hB")
    assert not rerouted.contains_link("s1", "s2")
    assert rerouted.contains_link("s1", "s3")


def test_remove_switch_invalidates_cached_path():
    topo = diamond_topology()
    assert shortest_path(topo, "hA", "hB").contains_link("s2", "s4")
    topo.remove_switch("s2")
    assert not shortest_path(topo, "hA", "hB").contains_link("s2", "s4")


def test_removed_link_never_served_from_candidates():
    topo = diamond_topology()
    warm = k_shortest_paths(topo, "hA", "hB", 4)
    assert any(p.contains_link("s1", "s2") for p in warm)
    topo.remove_link("s1", "s2")
    for path in k_shortest_paths(topo, "hA", "hB", 4):
        assert not path.contains_link("s1", "s2")


def test_disconnection_raises_no_route():
    topo = diamond_topology()
    shortest_path(topo, "hA", "hB")  # warm the cache
    topo.remove_switch("s2")
    topo.remove_switch("s3")
    with pytest.raises(NoRouteError):
        shortest_path(topo, "hA", "hB")


def test_link_addition_flushes_cached_paths():
    topo = diamond_topology()
    assert shortest_path(topo, "hA", "hB").hops == 4
    topo.add_duplex_link("s1", "s4", 10 * GBPS, 0.1 * MS)
    shortcut = shortest_path(topo, "hA", "hB")
    assert shortcut.contains_link("s1", "s4")


# ---------------------------------------------------------------------------
# What survives: capacity-only changes and untouched candidate sets
# ---------------------------------------------------------------------------
def test_set_capacity_bumps_version_but_keeps_sssp_state():
    topo = diamond_topology()
    cache = topo.route_cache
    warm = shortest_path(topo, "hA", "hB")
    k_shortest_paths(topo, "hA", "hB", 3)
    roots = cache.cached_tree_roots
    keys = cache.cached_candidate_keys
    sssp_before = telemetry.metrics().get(
        "routing_sssp_recomputes_total").snapshot()["value"]

    before = topo.version
    topo.link("s1", "s2").set_capacity(1 * GBPS)
    assert topo.version > before

    assert shortest_path(topo, "hA", "hB").nodes == warm.nodes
    k_shortest_paths(topo, "hA", "hB", 3)
    assert cache.cached_tree_roots == roots
    assert cache.cached_candidate_keys == keys
    sssp_after = telemetry.metrics().get(
        "routing_sssp_recomputes_total").snapshot()["value"]
    assert sssp_after == sssp_before  # delays unchanged: no recompute


def test_removal_drops_only_crossing_candidate_sets():
    sim = Simulator(seed=2)
    topo = Topology(sim, name="twin")
    # Two independent diamonds sharing no links.
    for name in ("a1", "a2", "a3", "b1", "b2", "b3"):
        topo.add_switch(name)
    for tri in (("a1", "a2", "a3"), ("b1", "b2", "b3")):
        topo.add_duplex_link(tri[0], tri[1], 10 * GBPS, 1 * MS)
        topo.add_duplex_link(tri[1], tri[2], 10 * GBPS, 1 * MS)
        topo.add_duplex_link(tri[0], tri[2], 10 * GBPS, 3 * MS)
    topo.add_duplex_link("a3", "b1", 10 * GBPS, 1 * MS)
    topo.attach_host("hA", "a1")
    topo.attach_host("hB", "b3")
    topo.attach_host("hC", "b1")

    cache = topo.route_cache
    k_shortest_paths(topo, "hA", "hC", 2)   # crosses the a-diamond
    k_shortest_paths(topo, "hC", "hB", 2)   # entirely inside b
    assert len(cache.cached_candidate_keys) == 2

    topo.remove_link("a1", "a2")
    k_shortest_paths(topo, "hC", "hB", 2)   # must hit, not recompute
    hits = telemetry.metrics().get(
        "routing_cache_hits_total").snapshot()["labels"]["yen"]
    assert hits >= 1
    assert ("hA", "hC", 2) not in cache.cached_candidate_keys
    assert ("hC", "hB", 2) in cache.cached_candidate_keys


def test_graph_export_memoized_per_version():
    topo = diamond_topology()
    g1 = topo.graph()
    assert topo.graph() is g1
    topo.link("s1", "s2").set_capacity(1 * GBPS)
    g2 = topo.graph()
    assert g2 is not g1
    assert g2["s1"]["s2"]["capacity"] == 1 * GBPS


# ---------------------------------------------------------------------------
# Path helpers (satellite: frozenset-backed contains_link)
# ---------------------------------------------------------------------------
def test_contains_link_directionality():
    path = Path.of(("hA", "s1", "s2", "hB"))
    assert path.contains_link("s1", "s2")
    assert path.contains_link("s2", "s1")           # either direction
    assert not path.contains_link("s2", "s1", either_direction=False)
    assert not path.contains_link("s1", "hB")


# ---------------------------------------------------------------------------
# Sweep-worker isolation: no routing-counter leakage between tasks
# ---------------------------------------------------------------------------
def _routing_driver(seed, params):
    topo = diamond_topology()
    install_host_routes(topo)
    k_shortest_paths(topo, "hA", "hB", 3)
    snap = telemetry.metrics().get(
        "routing_sssp_recomputes_total").snapshot()
    return {"scalars": {"sssp_recomputes": snap["value"]}}


def test_sweep_task_does_not_leak_routing_counters():
    register_driver("routecache_isolation_probe", _routing_driver)
    payload = {"experiment": "routecache_isolation_probe",
               "params": (("k", 3),), "logical_seed": 0, "seed": 0}

    telemetry.reset()
    clean = run_task(dict(payload))

    # Pollute the process-wide registry the way a warm parent process
    # would, then run the same task again: the record must be identical.
    for _ in range(5):
        install_host_routes(diamond_topology())
    polluted = run_task(dict(payload))

    assert clean["result"] == polluted["result"]
    clean_routing = {k: v for k, v in clean["metrics"].items()
                     if k.startswith("routing_")}
    polluted_routing = {k: v for k, v in polluted["metrics"].items()
                        if k.startswith("routing_")}
    assert clean_routing == polluted_routing
    telemetry.reset()
