"""End-to-end checks that the instrumented layers actually report.

The default registry is process-wide and shared across the whole test
session, so every assertion here is on *deltas*, never absolutes.
"""

import pytest

from repro import telemetry
from repro.netsim import (FlowSet, FluidNetwork, Monitor, Path, Simulator,
                          Topology, make_flow)


def counter_value(name, labels=None):
    registry = telemetry.metrics()
    if name not in registry:
        return 0.0
    metric = registry.get(name)
    if labels:
        metric = metric.labels(*labels)
    return metric.value


@pytest.fixture
def traced():
    """Enable the default trace for one test, restoring state after."""
    trace = telemetry.trace()
    events_before = len(trace.events)
    was_enabled = trace.enabled
    trace.enable()
    yield trace
    trace.enabled = was_enabled
    del trace.events[events_before:]


def build_one_link_fluid(sim):
    topo = Topology(sim)
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.attach_host("h1", "s1")
    topo.attach_host("h2", "s2")
    topo.add_duplex_link("s1", "s2", 1e9, 0.001)
    flows = FlowSet()
    flows.add(make_flow("h1", "h2", 0.5e9,
                        path=Path.of(["h1", "s1", "s2", "h2"])))
    return FluidNetwork(topo, flows, tcp_tau=0.0), flows


class TestEngineCounters:
    def test_scheduled_and_executed_counted(self):
        scheduled = counter_value("sim_events_scheduled_total")
        executed = counter_value("sim_events_executed_total")
        cancelled = counter_value("sim_events_cancelled_total")
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None).cancel()
        sim.run()
        assert counter_value("sim_events_scheduled_total") == scheduled + 2
        assert counter_value("sim_events_executed_total") == executed + 1
        assert counter_value("sim_events_cancelled_total") == cancelled + 1


class TestFluidCounters:
    def test_fastpath_hits_and_misses(self):
        sim = Simulator(seed=1)
        fluid, _ = build_one_link_fluid(sim)
        hits = counter_value("fluid_fastpath_hits_total")
        misses = counter_value("fluid_fastpath_misses_total")
        passes = counter_value("fluid_allocation_passes_total")
        rounds = counter_value("fluid_freeze_rounds_total")
        fluid.update()          # first epoch: a real pass
        fluid.update()          # unchanged inputs: fast path
        fluid.update()
        assert counter_value("fluid_allocation_passes_total") == passes + 1
        assert counter_value("fluid_fastpath_misses_total") == misses + 1
        assert counter_value("fluid_fastpath_hits_total") == hits + 2
        assert counter_value("fluid_freeze_rounds_total") > rounds

    def test_allocation_pass_traced(self, traced):
        sim = Simulator(seed=1)
        fluid, _ = build_one_link_fluid(sim)
        before = len(traced.of_kind("allocation_pass"))
        fluid.update()
        fluid.update()  # fast path: no extra event
        events = traced.of_kind("allocation_pass")
        assert len(events) == before + 1
        assert events[-1].fields["active_flows"] == 1


class TestModeProtocolTelemetry:
    def test_transitions_traced_with_cause(self, fig2, sim, traced):
        from repro.core.mode_protocol import install_mode_agents
        from repro.core.modes import ModeRegistry, ModeSpec

        registry = ModeRegistry()
        registry.register(ModeSpec.of("mit", "lfa", boosters_on=()))
        probes_sent = counter_value("mode_probes_sent_total")
        transitions = counter_value("mode_transitions_total",
                                    labels=("local_detection",))
        agents = install_mode_agents(fig2.topo, registry)
        initiator = next(iter(agents.values()))
        assert initiator.initiate("lfa", "mit")
        sim.run(until=1.0)

        assert counter_value("mode_probes_sent_total") > probes_sent
        assert counter_value(
            "mode_transitions_total",
            labels=("local_detection",)) == transitions + 1
        events = traced.of_kind("mode_transition")
        causes = {e.fields["cause"] for e in events}
        assert "local_detection" in causes
        assert "probe" in causes
        local = [e for e in events
                 if e.fields["cause"] == "local_detection"][-1]
        assert local.fields["new_mode"] == "mit"
        assert local.sim_time == 0.0
        probe_applied = [e for e in events if e.fields["cause"] == "probe"]
        assert all(e.sim_time > 0 for e in probe_applied)


class TestMonitorRegistryFold:
    def test_sampled_value_mirrored_into_registry(self, sim):
        fluid, _ = build_one_link_fluid(sim)
        fluid.start()
        monitor = Monitor(fluid, period=0.5)
        monitor.add_gauge("const_seven", lambda: 7.0)
        monitor.start()
        sim.run(until=1.1)
        family = telemetry.metrics().get("monitor_gauge")
        assert family.labels("const_seven").value == 7.0

    def test_isolated_registry_can_be_injected(self, sim):
        fluid, _ = build_one_link_fluid(sim)
        isolated = telemetry.MetricsRegistry()
        monitor = Monitor(fluid, period=0.5, registry=isolated)
        monitor.add_gauge("x", lambda: 3.0)
        monitor.sample()
        assert isolated.get("monitor_gauge").labels("x").value == 3.0


class TestStateTransferTelemetry:
    def test_success_counted_and_traced(self, fig2, sim, traced):
        from repro.core.state_transfer import StateTransferService

        service = StateTransferService(fig2.topo)
        service.install_agents()
        ok = counter_value("state_transfers_total", labels=("success",))
        done = []
        service.send("sL", "sR", {"x": 1}, on_complete=done.append)
        sim.run(until=2.0)
        assert done and done[0].success
        assert counter_value("state_transfers_total",
                             labels=("success",)) == ok + 1
        events = traced.of_kind("state_transfer")
        assert events and events[-1].fields["success"] is True
        assert events[-1].sim_time > 0


class TestReset:
    def test_reset_zeroes_defaults_in_place(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert counter_value("sim_events_executed_total") > 0
        telemetry.reset()
        assert counter_value("sim_events_executed_total") == 0
        # Instrumentation cached before the reset still lands.
        sim2 = Simulator()
        sim2.schedule(0.0, lambda: None)
        sim2.run()
        assert counter_value("sim_events_executed_total") == 1
