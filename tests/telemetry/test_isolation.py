"""Cross-run telemetry isolation and snapshot merging.

Two guarantees the sweep runner (and any multi-run process) leans on:

* ``telemetry.reset()`` leaves *no* residual counter / gauge / trace
  state — a run after a reset snapshots exactly what it did itself;
* ``MetricsRegistry.merge`` is additive, associative, commutative, and
  label-correct, so worker snapshots can be folded in any order (and
  any sharding) with one result.
"""

import pytest

from repro import telemetry
from repro.telemetry import MetricError, MetricsRegistry


@pytest.fixture(autouse=True)
def clean_default_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def zero_values(snapshot):
    """Every non-histogram value plus histogram counts, flattened."""
    values = []
    for family in snapshot.values():
        for value in [family["value"]] + list(
                family.get("labels", {}).values()):
            values.append(value["count"] if isinstance(value, dict)
                          else value)
    return values


class TestResetIsolation:
    def test_repeated_runs_leave_no_residue(self):
        registry = telemetry.metrics()

        def one_run(amount):
            registry.counter("iso_total").inc(amount)
            registry.gauge("iso_depth").set(amount)
            registry.histogram("iso_lat").observe(amount)
            registry.counter("iso_by", labelnames=("k",)) \
                .labels("a").inc(amount)
            return registry.snapshot()

        first = one_run(3)
        telemetry.reset()
        second = one_run(3)
        assert first == second, "a reset run must equal a fresh run"

    def test_reset_zeroes_every_family_and_child(self):
        registry = telemetry.metrics()
        registry.counter("z_total", labelnames=("k",)).labels("x").inc(2)
        registry.gauge("z_gauge").set(7)
        registry.histogram("z_hist").observe(0.5)
        telemetry.reset()
        assert all(v == 0 for v in zero_values(registry.snapshot()))

    def test_reset_clears_trace_events_and_context(self):
        trace = telemetry.trace()
        trace.enable()
        trace.set_context(system="baseline_sdn")
        trace.emit("thing", sim_time=1.0)
        telemetry.reset()
        assert len(trace) == 0
        assert trace.context == {}
        trace.emit("after", sim_time=2.0)
        assert trace.events[0].fields == {}, "context must not leak"
        trace.disable()

    def test_experiment_runs_after_reset_are_identical(self):
        # End to end: the bug class PR 3 fixes — two figure3 systems
        # sharing one registry must be separable run-to-run.
        from repro.experiments.figure3 import Figure3Config, run_baseline
        config = Figure3Config(duration_s=8.0)
        registry = telemetry.metrics()
        telemetry.reset()
        run_baseline(config)
        first = registry.snapshot()
        telemetry.reset()
        run_baseline(config)
        second = registry.snapshot()
        assert {k: v for k, v in first.items()
                if k != "phase_duration_seconds"} == \
            {k: v for k, v in second.items()
             if k != "phase_duration_seconds"}


class TestMerge:
    def snap(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name).inc(value)
        return registry.snapshot()

    def test_counters_sum(self):
        merged = MetricsRegistry().merge(
            self.snap(a_total=2), self.snap(a_total=3)).snapshot()
        assert merged["a_total"]["value"] == 5

    def test_associative_and_commutative(self):
        a, b, c = (self.snap(x_total=1), self.snap(x_total=2),
                   self.snap(x_total=4))
        left = MetricsRegistry().merge(a, b).merge(c).snapshot()
        right = MetricsRegistry().merge(a).merge(b, c).snapshot()
        swapped = MetricsRegistry().merge(c, b, a).snapshot()
        assert left == right == swapped

    def test_label_correct(self):
        def labeled(system, value):
            registry = MetricsRegistry()
            registry.counter("m_total", labelnames=("system",)) \
                .labels(system).inc(value)
            return registry.snapshot()

        merged = MetricsRegistry().merge(
            labeled("baseline_sdn", 2), labeled("fastflex", 5),
            labeled("baseline_sdn", 1)).snapshot()
        assert merged["m_total"]["labelnames"] == ["system"]
        assert merged["m_total"]["labels"] == \
            {"baseline_sdn": 3, "fastflex": 5}

    def test_histograms_merge_buckets_sum_count(self):
        def hist(*values):
            registry = MetricsRegistry()
            for v in values:
                registry.histogram("h", buckets=(1.0, 10.0)).observe(v)
            return registry.snapshot()

        merged = MetricsRegistry().merge(
            hist(0.5, 5.0), hist(0.2, 50.0)).snapshot()
        value = merged["h"]["value"]
        assert value["count"] == 4
        assert value["sum"] == pytest.approx(55.7)
        assert value["buckets"] == {"le_1": 2, "le_10": 3, "inf": 4}

    def test_boundsless_histogram_snapshot_not_double_counted(self):
        # _merge_snap tolerates external/older snapshots whose values
        # lack "bounds"; the bounds-discovery scan must not clobber the
        # family value it is iterating past, or a labeled child would
        # be merged into the parent a second time.
        snap = {"h": {
            "kind": "histogram",
            "value": {"count": 0, "sum": 0.0, "buckets": {}},
            "labelnames": ["mode"],
            "labels": {"fast": {"count": 2, "sum": 3.0,
                                "buckets": {"inf": 2}}},
        }}
        merged = MetricsRegistry().merge(snap).snapshot()
        assert merged["h"]["value"]["count"] == 0
        assert merged["h"]["labels"]["fast"]["count"] == 2
        assert merged["h"]["labels"]["fast"]["sum"] == pytest.approx(3.0)

    def test_histogram_bound_mismatch_rejected(self):
        def hist(bounds):
            registry = MetricsRegistry()
            registry.histogram("h", buckets=bounds).observe(0.5)
            return registry.snapshot()

        with pytest.raises(MetricError):
            MetricsRegistry().merge(hist((1.0,)), hist((2.0,)))

    def test_zero_families_do_not_pollute(self):
        # A worker that *created* but never incremented a family must
        # not change the merged key set — otherwise the merged snapshot
        # would depend on which worker ran which task.
        quiet = MetricsRegistry()
        quiet.counter("quiet_total")
        quiet.counter("loud_total").inc(0)  # stays zero
        busy = self.snap(busy_total=1)
        merged = MetricsRegistry().merge(
            quiet.snapshot(), busy).snapshot()
        assert set(merged) == {"busy_total"}
        assert merged == MetricsRegistry().merge(busy).snapshot()

    def test_merge_into_live_registry_preserves_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("live_total")
        counter.inc(1)
        registry.merge(self.snap(live_total=4))
        assert counter.value == 5, "merge must add into cached objects"

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("clash").set(1)
        with pytest.raises(MetricError):
            registry.merge(self.snap(clash=2))

    def test_gauges_sum(self):
        def gauge(value):
            registry = MetricsRegistry()
            registry.gauge("g").set(value)
            return registry.snapshot()

        merged = MetricsRegistry().merge(gauge(2.0), gauge(3.5)).snapshot()
        assert merged["g"]["value"] == 5.5
