"""Tests for the structured event trace."""

import json

import pytest

from repro.telemetry import EventTrace
from repro.telemetry.trace import DEFAULT_CAPACITY


class TestEmit:
    def test_disabled_trace_records_nothing(self):
        trace = EventTrace()
        trace.emit("x", sim_time=1.0, a=1)
        assert len(trace) == 0

    def test_enabled_trace_records_kind_and_clocks(self):
        trace = EventTrace(enabled=True)
        trace.emit("mode_transition", sim_time=2.5, switch="s1")
        (event,) = list(trace)
        assert event.kind == "mode_transition"
        assert event.sim_time == 2.5
        assert event.wall_time > 0
        assert event.fields == {"switch": "s1"}

    def test_context_merged_into_events(self):
        trace = EventTrace(enabled=True)
        trace.set_context(system="fastflex")
        trace.emit("x", sim_time=0.0, a=1)
        trace.clear_context("system")
        trace.emit("x", sim_time=1.0, a=2)
        first, second = trace.events
        assert first.fields == {"system": "fastflex", "a": 1}
        assert second.fields == {"a": 2}

    def test_event_fields_override_context(self):
        trace = EventTrace(enabled=True)
        trace.set_context(system="outer")
        trace.emit("x", sim_time=0.0, system="inner")
        assert trace.events[0].fields["system"] == "inner"

    def test_capacity_bounds_memory(self):
        trace = EventTrace(enabled=True, capacity=2)
        for i in range(5):
            trace.emit("x", sim_time=float(i))
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_default_capacity_sane(self):
        assert EventTrace().capacity == DEFAULT_CAPACITY
        with pytest.raises(ValueError):
            EventTrace(capacity=0)


class TestQueries:
    def test_of_kind_and_kinds(self):
        trace = EventTrace(enabled=True)
        trace.emit("a", sim_time=0.0)
        trace.emit("b", sim_time=1.0)
        trace.emit("a", sim_time=2.0)
        assert len(trace.of_kind("a")) == 2
        assert trace.kinds() == {"a": 2, "b": 1}

    def test_between_is_half_open(self):
        trace = EventTrace(enabled=True)
        for t in (0.0, 1.0, 2.0):
            trace.emit("x", sim_time=t)
        assert [e.sim_time for e in trace.between(1.0, 2.0)] == [1.0]


class TestExport:
    def test_jsonl_one_object_per_line(self, tmp_path):
        trace = EventTrace(enabled=True)
        trace.emit("a", sim_time=0.5, link=("s1", "s2"))
        trace.emit("b", sim_time=1.5, flows={"x", "y"})
        path = tmp_path / "trace.jsonl"
        assert trace.write_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "a"
        assert first["sim_time"] == 0.5
        assert first["link"] == ["s1", "s2"]
        # Non-JSON-native values degrade to something serializable.
        assert sorted(json.loads(lines[1])["flows"]) == ["x", "y"]

    def test_reset_clears_events_and_context(self):
        trace = EventTrace(enabled=True)
        trace.set_context(run="r1")
        trace.emit("x", sim_time=0.0)
        trace.reset()
        assert len(trace) == 0
        assert trace.context == {}
        assert trace.enabled  # reset does not flip the switch
