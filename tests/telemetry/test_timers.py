"""Tests for phase timers."""

import time

from repro.telemetry import (EventTrace, MetricsRegistry, PHASE_METRIC,
                             phase_histogram, phase_timer)


class TestPhaseTimer:
    def test_observes_into_labeled_histogram(self):
        registry = MetricsRegistry()
        with phase_timer("work", registry=registry) as timing:
            time.sleep(0.002)
        assert timing.elapsed >= 0.002
        child = phase_histogram(registry).labels("work")
        assert child.count == 1
        assert child.sum >= 0.002

    def test_observes_even_when_block_raises(self):
        registry = MetricsRegistry()
        try:
            with phase_timer("explode", registry=registry):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert phase_histogram(registry).labels("explode").count == 1

    def test_emits_trace_event_when_enabled(self):
        registry = MetricsRegistry()
        trace = EventTrace(enabled=True)
        with phase_timer("p", registry=registry, trace=trace, sim_time=3.0):
            pass
        (event,) = trace.of_kind("phase")
        assert event.sim_time == 3.0
        assert event.fields["phase"] == "p"
        assert event.fields["elapsed_s"] >= 0

    def test_so_far_ticks_inside_block(self):
        registry = MetricsRegistry()
        with phase_timer("p", registry=registry) as timing:
            time.sleep(0.001)
            assert timing.so_far() >= 0.001

    def test_default_registry_used_when_omitted(self):
        from repro import telemetry
        before = phase_histogram(telemetry.metrics()).labels("default-reg").count
        with phase_timer("default-reg"):
            pass
        after = phase_histogram(telemetry.metrics()).labels("default-reg").count
        assert after == before + 1
        assert PHASE_METRIC in telemetry.metrics()
