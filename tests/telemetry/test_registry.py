"""Tests for the metrics registry (counters, gauges, histograms, labels)."""

import json

import pytest

from repro.telemetry import MetricError, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_is_idempotent(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_type_clash_rejected(self, registry):
        registry.counter("c")
        with pytest.raises(MetricError):
            registry.gauge("c")

    def test_label_clash_rejected(self, registry):
        registry.counter("c", labelnames=("a",))
        with pytest.raises(MetricError):
            registry.counter("c", labelnames=("b",))

    def test_labeled_children_independent(self, registry):
        family = registry.counter("c", labelnames=("kind",))
        family.labels("x").inc()
        family.labels("y").inc(4)
        assert family.labels("x").value == 1
        assert family.labels("y").value == 4
        assert family.labels(kind="x") is family.labels("x")

    def test_wrong_label_arity_rejected(self, registry):
        family = registry.counter("c", labelnames=("a", "b"))
        with pytest.raises(MetricError):
            family.labels("only-one")
        with pytest.raises(MetricError):
            family.labels(a="x")  # missing b


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_callback_gauge_pulled_at_snapshot(self, registry):
        gauge = registry.gauge("g")
        box = {"v": 1.0}
        gauge.set_function(lambda: box["v"])
        box["v"] = 42.0
        assert registry.snapshot()["g"]["value"] == 42.0


class TestHistogram:
    def test_observe_updates_count_sum_mean(self, registry):
        hist = registry.histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.sum == pytest.approx(5.55)
        assert hist.mean == pytest.approx(1.85)

    def test_bucket_counts_cumulative_in_snapshot(self, registry):
        hist = registry.histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        buckets = registry.snapshot()["h"]["value"]["buckets"]
        assert buckets["le_0.1"] == 1
        assert buckets["le_1"] == 2
        assert buckets["inf"] == 3

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=())

    def test_labeled_histogram_children(self, registry):
        family = registry.histogram("h", labelnames=("phase",),
                                    buckets=(1.0,))
        family.labels("a").observe(0.5)
        family.labels("a").observe(2.0)
        assert family.labels("a").count == 2
        assert family.labels("b").count == 0


class TestRegistry:
    def test_reset_zeroes_in_place(self, registry):
        counter = registry.counter("c", labelnames=("k",))
        child = counter.labels("x")
        child.inc(7)
        registry.reset()
        assert child.value == 0
        # The cached child object is still live and still registered.
        child.inc()
        assert registry.get("c").labels("x").value == 1

    def test_get_unknown_raises_with_inventory(self, registry):
        registry.counter("known")
        with pytest.raises(KeyError, match="known"):
            registry.get("ghost")

    def test_contains_and_names(self, registry):
        registry.counter("b")
        registry.gauge("a")
        assert "a" in registry
        assert registry.names() == ["a", "b"]

    def test_write_json_round_trips(self, registry, tmp_path):
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        data = json.loads(path.read_text())
        assert data["c"] == {"kind": "counter", "value": 3}
        assert data["g"]["value"] == 1.5
