"""Whole-engine restore equivalence: figure3 worlds, sweep preemption,
and the serve driver.

These tests exercise the headline guarantee in-process (the CI
``crash-restore`` job does it again with real SIGKILLed processes via
``scripts/check_restore.py``): a run restored from a checkpoint
finishes with results identical to one that was never interrupted.
"""

import asyncio
import io
import itertools
import json

import pytest

from repro import telemetry
from repro.checkpoint import CheckpointError, save_checkpoint
from repro.checkpoint.service import SCENARIOS, EngineService
from repro.experiments.figure3 import (Figure3Config, advance_world,
                                       attach_attack, build_world,
                                       detach_attack, fail_link,
                                       finish_world)
from repro.netsim import flows as flows_module
from repro.netsim.engine import Simulator
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.runner import stable_metrics

CONFIG = Figure3Config(duration_s=8.0, seed=11)


def run_world_to_end(system, config=CONFIG):
    telemetry.reset()
    world = build_world(system, config)
    advance_world(world)
    result = finish_world(world)
    return result, stable_metrics(telemetry.metrics().snapshot())


def poison_process_state():
    """Make the process observably different from the checkpoint-time
    process: restore must undo all of this."""
    telemetry.reset()
    flows_module._flow_ids = itertools.count(999_983)


class TestFigure3KillRestore:
    @pytest.mark.parametrize("system", ["fastflex", "baseline_sdn"])
    def test_restored_run_matches_uninterrupted(self, tmp_path, system):
        reference, reference_metrics = run_world_to_end(system)

        telemetry.reset()
        world = build_world(system, CONFIG)
        advance_world(world, max_events=800)
        path = tmp_path / "mid.ckpt"
        world.sim.snapshot(path, state=world)

        poison_process_state()
        sim, restored, meta = Simulator.restore(path)
        assert meta["events_executed"] == 800
        assert not restored.done
        advance_world(restored)
        result = finish_world(restored)

        assert result.throughput.samples == reference.throughput.samples
        assert result.rolls == reference.rolls
        assert [d.time for d in result.detections] == \
            [d.time for d in reference.detections]
        assert stable_metrics(telemetry.metrics().snapshot()) == \
            reference_metrics

    def test_snapshot_is_observationally_free(self, tmp_path):
        reference, reference_metrics = run_world_to_end("fastflex")
        telemetry.reset()
        world = build_world("fastflex", CONFIG)
        for index in range(4):  # checkpoint four times mid-run
            advance_world(world, max_events=1500)
            world.sim.snapshot(tmp_path / f"free_{index}.ckpt",
                               state=world)
        advance_world(world)
        result = finish_world(world)
        assert result.throughput.samples == reference.throughput.samples
        assert stable_metrics(telemetry.metrics().snapshot()) == \
            reference_metrics

    def test_restore_rejects_non_engine_checkpoint(self, tmp_path):
        path = tmp_path / "other.ckpt"
        save_checkpoint(path, {"state": "no simulator here"})
        with pytest.raises(CheckpointError, match="Simulator"):
            Simulator.restore(path)


class TestSweepPreemption:
    # duration must clear the _summarize attack window (attack start
    # 5 s + 2 s settle), or finish-time summarization has no samples.
    SPEC = dict(experiment="figure3_fastflex", seeds=[0, 1],
                base_params={"duration_s": 10.0})

    def test_preempted_sweep_matches_straight_run(self, tmp_path):
        straight = run_sweep(SweepSpec(**self.SPEC),
                             out_dir=tmp_path / "straight")
        out = tmp_path / "preempted"
        chunks = run_sweep(SweepSpec(**self.SPEC), out_dir=out,
                           preempt_events=2500)
        assert len(chunks.preempted) == 2
        assert chunks.summary()["preempted"] == 2
        assert (out / "tasks").glob("*.part.ckpt")
        rounds = 0
        while chunks.preempted:
            rounds += 1
            assert rounds < 10, "preempted sweep never converged"
            chunks = run_sweep(SweepSpec(**self.SPEC), out_dir=out,
                               resume=True, preempt_events=2500)
        assert json.dumps(chunks.aggregates, sort_keys=True) == \
            json.dumps(straight.aggregates, sort_keys=True)
        assert json.dumps(stable_metrics(chunks.merged_metrics),
                          sort_keys=True) == \
            json.dumps(stable_metrics(straight.merged_metrics),
                       sort_keys=True)
        # Completion superseded the partial checkpoints.
        assert list((out / "tasks").glob("*.part.ckpt")) == []

    def test_fresh_sweep_discards_stale_partials(self, tmp_path):
        out = tmp_path / "fresh"
        preempted = run_sweep(SweepSpec(**self.SPEC), out_dir=out,
                              preempt_events=2000)
        assert preempted.preempted
        partials = list((out / "tasks").glob("*.part.ckpt"))
        assert partials
        # A non-resume sweep must not silently continue old state.
        complete = run_sweep(SweepSpec(**self.SPEC), out_dir=out)
        assert not complete.preempted
        assert len(complete.records) == 2

    def test_preempt_without_out_dir_refused(self):
        with pytest.raises(ValueError, match="out_dir"):
            run_sweep(SweepSpec(**self.SPEC), preempt_events=100)

    def test_preempt_with_plain_driver_is_task_error(self, tmp_path):
        result = run_sweep(
            SweepSpec(experiment="figure3", seeds=[0],
                      base_params={"duration_s": 6.0}),
            out_dir=tmp_path / "plain", preempt_events=100)
        assert len(result.errors) == 1
        assert "not checkpointable" in result.errors[0]["error"]


def drain_service(service):
    return asyncio.run(service.run())


class TestServeDriver:
    def make_service(self, **kwargs):
        telemetry.reset()
        defaults = dict(scenario="figure3_fastflex", seed=5,
                        duration_s=4.0, step_events=400)
        defaults.update(kwargs)
        return EngineService(**defaults)

    def test_scenarios_registered(self):
        assert set(SCENARIOS) == {"figure3_fastflex",
                                  "figure3_baseline"}

    def test_batch_run_produces_result(self):
        service = self.make_service()
        result = drain_service(service)
        assert result is not None
        assert service.world.done

    def test_stream_carries_heartbeats_and_trace(self):
        stream = io.StringIO()
        service = self.make_service(stream=stream)
        drain_service(service)
        records = [json.loads(line) for line in
                   stream.getvalue().splitlines()]
        kinds = {record["kind"] for record in records}
        assert "service_heartbeat" in kinds
        assert "service_end" in kinds
        assert "experiment_start" in kinds  # EventTrace schema records
        heartbeats = [r for r in records
                      if r["kind"] == "service_heartbeat"]
        assert heartbeats[-1]["sim_time"] == pytest.approx(4.0)

    def test_live_injections_without_restart(self):
        stream = io.StringIO()
        service = self.make_service(stream=stream)
        service.submit({"op": "status"})
        service.submit({"op": "attach-attack", "start_delay": 0.5})
        service.submit({"op": "fail-link", "src": "s3", "dst": "s4"})
        drain_service(service)
        acks = [json.loads(line) for line in
                stream.getvalue().splitlines()
                if '"service_ack"' in line]
        assert [a["ok"] for a in acks] == [True, True, True]
        assert service.world.attacker is not None
        assert ("s3", "s4") not in service.world.net.topo.links

    def test_detach_attack_round_trip(self):
        service = self.make_service()
        service.submit({"op": "attach-attack", "start_delay": 0.1})
        service.submit({"op": "detach-attack"})
        drain_service(service)
        assert service.world.attacker is None

    def test_unknown_op_rejected_without_crash(self):
        stream = io.StringIO()
        service = self.make_service(stream=stream)
        service.submit({"op": "definitely-not-an-op"})
        drain_service(service)
        acks = [json.loads(line) for line in
                stream.getvalue().splitlines()
                if '"service_ack"' in line]
        assert acks[0]["ok"] is False
        assert "unknown op" in acks[0]["error"]

    def test_stop_checkpoints_and_halts(self, tmp_path):
        service = self.make_service(checkpoint_dir=tmp_path)
        service.submit({"op": "stop"})
        result = drain_service(service)
        assert result is None
        assert service.stopped
        assert list(tmp_path.glob("ckpt_*.ckpt"))

    def test_auto_checkpoint_and_service_restore(self, tmp_path):
        # Reference: the same service scenario, never interrupted.
        reference = drain_service(self.make_service())
        reference_metrics = stable_metrics(
            telemetry.metrics().snapshot())

        service = self.make_service(checkpoint_dir=tmp_path,
                                    checkpoint_every_events=1000)
        service.submit({"op": "stop"})
        drain_service(service)  # parks a checkpoint and halts

        poison_process_state()
        newest = sorted(tmp_path.glob("ckpt_*.ckpt"))[-1]
        resumed = EngineService.from_checkpoint(newest, step_events=400)
        assert resumed.scenario == "figure3_fastflex"
        result = drain_service(resumed)
        assert result is not None
        assert result.throughput.samples == \
            reference.throughput.samples
        assert stable_metrics(telemetry.metrics().snapshot()) == \
            reference_metrics

    def test_from_checkpoint_rejects_worldless(self, tmp_path):
        telemetry.reset()
        sim = Simulator(seed=1)
        path = tmp_path / "bare.ckpt"
        sim.snapshot(path)
        with pytest.raises(CheckpointError, match="world"):
            EngineService.from_checkpoint(path)
