"""Checkpoint-test isolation.

Checkpoint save/load and the serve driver intentionally mutate the
process-wide telemetry layer (loading restores checkpoint-time
registry/trace state; serving with a stream enables the trace).  Tests
elsewhere in the suite assume that layer starts quiet, so restore it
after every test here.
"""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _quiet_telemetry_after():
    trace = telemetry.trace()
    enabled_before = trace.enabled
    yield
    trace.enabled = enabled_before
    telemetry.reset()
