"""The on-disk checkpoint container: versioning, fingerprinting,
corruption rejection.

Every failure mode must raise :class:`CheckpointError` *before* any
payload unpickling happens — a corrupted or truncated checkpoint is
rejected, never silently restored.
"""

import json

import pytest

from repro.checkpoint import (CheckpointError, FORMAT_VERSION,
                              load_checkpoint, peek_checkpoint,
                              save_checkpoint)
from repro.checkpoint.format import (MAGIC, read_container, read_header,
                                     write_container)


def write_simple(tmp_path, meta=None):
    path = tmp_path / "simple.ckpt"
    save_checkpoint(path, {"answer": 42, "items": [1, 2, 3]},
                    meta=meta or {"label": "simple"})
    return path


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = write_simple(tmp_path)
        state, meta = load_checkpoint(path)
        assert state == {"answer": 42, "items": [1, 2, 3]}
        assert meta["label"] == "simple"

    def test_header_is_one_json_line(self, tmp_path):
        path = write_simple(tmp_path)
        first_line = path.read_bytes().split(b"\n", 1)[0]
        header = json.loads(first_line)
        assert header["magic"] == MAGIC
        assert header["version"] == FORMAT_VERSION
        assert header["fingerprint"].startswith("sha256:")

    def test_peek_reads_meta_without_payload(self, tmp_path):
        path = write_simple(tmp_path, meta={"sim_time": 1.5})
        header = peek_checkpoint(path)
        assert header["meta"]["sim_time"] == 1.5

    def test_fingerprint_returned_matches_header(self, tmp_path):
        path = tmp_path / "fp.ckpt"
        fingerprint = save_checkpoint(path, {"x": 1})
        assert peek_checkpoint(path)["fingerprint"] == fingerprint

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        write_simple(tmp_path)
        assert list(tmp_path.glob("*.tmp")) == []


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "random.ckpt"
        path.write_bytes(b"this is not a checkpoint at all\n")
        with pytest.raises(CheckpointError, match="magic|JSON"):
            load_checkpoint(path)

    def test_binary_garbage_without_newline(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"\x80\x04\x95" * 1000)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "magic.ckpt"
        header = {"magic": "other-format", "version": 1,
                  "globals_bytes": 0, "state_bytes": 0,
                  "fingerprint": "sha256:0"}
        path.write_bytes((json.dumps(header) + "\n").encode())
        with pytest.raises(CheckpointError, match="magic"):
            read_header(path)

    def test_future_version_refused(self, tmp_path):
        path = write_simple(tmp_path)
        raw = path.read_bytes()
        header_line, payload = raw.split(b"\n", 1)
        header = json.loads(header_line)
        header["version"] = FORMAT_VERSION + 1
        path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        path = write_simple(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])  # crash mid-write simulation
        with pytest.raises(CheckpointError, match="truncat"):
            load_checkpoint(path)

    def test_single_flipped_byte_detected(self, tmp_path):
        path = write_simple(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF  # bit rot deep inside the state segment
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="fingerprint"):
            load_checkpoint(path)

    def test_trailing_garbage_detected(self, tmp_path):
        path = write_simple(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"EXTRA")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_header_missing_field(self, tmp_path):
        path = tmp_path / "partial.ckpt"
        header = {"magic": MAGIC, "version": FORMAT_VERSION,
                  "globals_bytes": 0}
        path.write_bytes((json.dumps(header) + "\n").encode())
        with pytest.raises(CheckpointError, match="state_bytes"):
            read_header(path)

    def test_corruption_rejected_before_unpickle(self, tmp_path):
        # The state segment is arbitrary pickle; a fingerprint failure
        # must surface before pickle ever sees the bytes.  Plant a
        # pickle bomb marker that would raise if unpickled.
        path = tmp_path / "bomb.ckpt"
        globals_blob = b"\x00" * 32
        state_blob = b"\x00" * 64
        write_container(path, globals_blob, state_blob, {})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="fingerprint"):
            read_container(path)
