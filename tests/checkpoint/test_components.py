"""Per-component snapshot round-trip properties, over 25 seeds.

The invariant under test, for every stateful component an engine
checkpoint captures: *snapshot, restore, continue* is indistinguishable
from *run straight through*.  Each property drives a component with a
seeded random workload, checkpoints it mid-flight through the real
container file, keeps running the original, restores the copy, applies
the identical remaining workload to both, and requires identical
observables.
"""

import random

import pytest

from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.core import ModeEventBus, ModeRegistry, ModeSpec, \
    install_mode_agents
from repro.dataplane import BloomFilter, CountMinSketch, FlowTable, \
    HashPipe
from repro.netsim import Simulator, figure2_topology

SEEDS = range(25)


class Recorder:
    """Picklable event-callback target; lambdas cannot enter the queue."""

    def __init__(self):
        self.log = []

    def hit(self, tag):
        self.log.append(tag)


def round_trip(tmp_path, state, seed):
    path = tmp_path / f"component_{seed}.ckpt"
    save_checkpoint(path, state)
    restored, _meta = load_checkpoint(path)
    return restored


# ----------------------------------------------------------------------
# Engine: event-queue ordering and RNG streams
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_event_queue_ordering_survives_restore(tmp_path, seed):
    rng = random.Random(seed)
    sim = Simulator(seed=seed)
    recorder = Recorder()
    # Deliberate timestamp collisions: ordering then rests entirely on
    # the tie-break sequence numbers, which the checkpoint must keep.
    times = [rng.choice([0.25, 0.5, 0.5, 0.75, rng.random()])
             for _ in range(40)]
    for tag, time in enumerate(times):
        sim.schedule(time, recorder.hit, tag)
    sim.run(max_events=15)
    restored = round_trip(tmp_path, {"sim": sim, "rec": recorder}, seed)
    sim.run()  # original: straight through to the end
    restored["sim"].run()
    assert restored["rec"].log == recorder.log
    assert restored["sim"].now == sim.now
    assert restored["sim"].events_executed == sim.events_executed


@pytest.mark.parametrize("seed", SEEDS)
def test_rng_stream_continues_identically(tmp_path, seed):
    sim = Simulator(seed=seed)
    for _ in range(seed % 17):
        sim.rng.random()  # advance to a seed-dependent position
    restored = round_trip(tmp_path, {"sim": sim}, seed)
    expected = [sim.rng.random() for _ in range(32)]
    actual = [restored["sim"].rng.random() for _ in range(32)]
    assert actual == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_new_events_after_restore_interleave_identically(tmp_path, seed):
    # Scheduling *after* the snapshot must produce the same tie-break
    # sequence numbers on both sides — the internal counter is state.
    sim = Simulator(seed=seed)
    recorder = Recorder()
    for tag in range(10):
        sim.schedule(1.0, recorder.hit, tag)
    sim.run(max_events=4)
    restored = round_trip(tmp_path, {"sim": sim, "rec": recorder}, seed)
    for side in ((sim, recorder), (restored["sim"], restored["rec"])):
        side_sim, side_rec = side
        side_sim.schedule(1.0, side_rec.hit, "late")  # ties with tag 4+
        side_sim.run()
    assert restored["rec"].log == recorder.log


# ----------------------------------------------------------------------
# Data-plane structures
# ----------------------------------------------------------------------

def _keys(rng, n=64):
    return [f"10.0.{rng.randrange(8)}.{rng.randrange(32)}"
            for _ in range(n)]


@pytest.mark.parametrize("seed", SEEDS)
def test_count_min_sketch_round_trip(tmp_path, seed):
    rng = random.Random(seed)
    sketch = CountMinSketch("ckpt_cms", width=64, depth=3)
    sketch.update_batch(_keys(rng))
    restored = round_trip(tmp_path, {"sketch": sketch}, seed)["sketch"]
    assert restored.export_state() == sketch.export_state()
    more = _keys(rng)
    sketch.update_batch(more)
    restored.update_batch(more)
    assert restored.query_batch(more) == sketch.query_batch(more)


@pytest.mark.parametrize("seed", SEEDS)
def test_bloom_filter_round_trip(tmp_path, seed):
    rng = random.Random(seed)
    bloom = BloomFilter("ckpt_bloom", size_bits=512, n_hashes=3)
    bloom.add_batch(_keys(rng))
    restored = round_trip(tmp_path, {"bloom": bloom}, seed)["bloom"]
    assert restored.export_state() == bloom.export_state()
    probe = _keys(rng)
    assert restored.contains_batch(probe) == bloom.contains_batch(probe)


@pytest.mark.parametrize("seed", SEEDS)
def test_hashpipe_round_trip(tmp_path, seed):
    rng = random.Random(seed)
    pipe = HashPipe("ckpt_pipe", stages=3, slots_per_stage=16)
    pipe.update_batch(_keys(rng, 128))
    restored = round_trip(tmp_path, {"pipe": pipe}, seed)["pipe"]
    assert restored.export_state() == pipe.export_state()
    more = _keys(rng, 64)
    pipe.update_batch(more)
    restored.update_batch(more)
    assert restored.estimate_batch(more) == pipe.estimate_batch(more)
    assert restored.top_k(5) == pipe.top_k(5)


@pytest.mark.parametrize("seed", SEEDS)
def test_flow_table_round_trip(tmp_path, seed):
    rng = random.Random(seed)
    table = FlowTable("ckpt_flows", capacity=64)
    now = 0.0
    for key in _keys(rng, 96):
        now += rng.random() * 0.01
        table.observe(key, now, size_bytes=rng.randrange(40, 1500))
    restored = round_trip(tmp_path, {"table": table}, seed)["table"]
    assert restored.export_state() == table.export_state()
    for key in _keys(rng, 32):
        now += 0.001
        table.observe(key, now, size_bytes=100)
        restored.observe(key, now, size_bytes=100)
    assert restored.export_state() == table.export_state()


# ----------------------------------------------------------------------
# Mode-change protocol timers
# ----------------------------------------------------------------------

def _mode_world(seed):
    sim = Simulator(seed=seed)
    net = figure2_topology(sim)
    registry = ModeRegistry()
    registry.register(ModeSpec.of("mitigate", "lfa", boosters_on=("m",)))
    bus = ModeEventBus()
    agents = install_mode_agents(net.topo, registry, bus=bus)
    return sim, net, agents, bus


def _mode_observables(agents, bus):
    return {
        "modes": {name: agent.mode_table.mode_for("lfa")
                  for name, agent in sorted(agents.items())},
        "applied": {name: agent.mode_table.changes_applied
                    for name, agent in sorted(agents.items())},
        "probes": {name: agent.probes_sent
                   for name, agent in sorted(agents.items())},
        "bus": [(event.time, event.switch, event.attack_type,
                 event.new_mode, event.epoch) for event in bus.events],
    }


@pytest.mark.parametrize("seed", range(0, 25, 5))
def test_mode_protocol_timers_survive_restore(tmp_path, seed):
    """Snapshot mid-flood: pending probe deliveries and re-advertise
    timers must continue exactly — same final mode tables, same probe
    counts, same bus timeline.  (A subset of seeds: each case builds a
    full Figure 2 network.)"""
    initiator = ["s1", "s2", "s3", "s4", "s5"][seed % 5]
    sim, net, agents, bus = _mode_world(seed)
    agents[initiator].initiate("lfa", "mitigate")
    sim.run(max_events=5 + seed)  # cut mid-flood at a seed-varied point
    restored = round_trip(
        tmp_path, {"sim": sim, "agents": agents, "bus": bus}, seed)
    sim.run(until=2.0)
    restored["sim"].run(until=2.0)
    assert _mode_observables(restored["agents"], restored["bus"]) == \
        _mode_observables(agents, bus)
    assert all(agent.mode_table.mode_for("lfa") == "mitigate"
               for agent in restored["agents"].values())
