"""Resident worker processes: protocol, crash handling, id sequences."""

from __future__ import annotations

import os
import signal

import pytest

from repro.netsim import flows as flows_module
from repro.shard import ShardWorkerError, figure3_scenario, run_sharded
from repro.shard import coordinator
from repro.shard.coordinator import _ProcessTransport, _Tally
from repro.shard.region import compute_paths, hosted_counts
from repro.shard.scenario import build_topology
from repro.shard.workers import WorkerInit, install_sequences
from repro.netsim.engine import Simulator
from repro.shard.partition import partition_topology


def scenario_for(seed=0):
    return figure3_scenario(seed=seed, duration_s=2.0, attack_start_s=1.0)


def make_init(scenario, n_regions):
    full = build_topology(scenario, Simulator(seed=scenario.seed))
    partition = partition_topology(full, n_regions, seed=scenario.seed)
    paths = compute_paths(full, scenario)
    counts = hosted_counts(scenario, partition, "exact", paths)
    offsets = [sum(counts[:i]) for i in range(n_regions)]
    return WorkerInit(scenario=scenario, partition=partition, sync="exact",
                      paths=paths, pin_plan=None, exchange_packets=False,
                      base_sequences={"repro.netsim.flows:_flow_ids": (0,)},
                      flow_id_offsets=offsets)


class TestInstallSequences:
    def test_offset_applies_to_the_flow_sequence_only(self):
        saved = flows_module._flow_ids
        try:
            install_sequences({"repro.netsim.flows:_flow_ids": (10,)}, 5)
            assert next(flows_module._flow_ids) == 15
            assert next(flows_module._flow_ids) == 16
        finally:
            flows_module._flow_ids = saved

    def test_zero_offset_restores_the_base_exactly(self):
        saved = flows_module._flow_ids
        try:
            install_sequences({"repro.netsim.flows:_flow_ids": (42,)}, 0)
            assert next(flows_module._flow_ids) == 42
        finally:
            flows_module._flow_ids = saved


class TestShardWorkerError:
    def test_message_names_region_and_window(self):
        err = ShardWorkerError(2, 3, 1.5, "boom")
        assert "worker 2" in str(err)
        assert "region 3" in str(err)
        assert "t=1.5s" in str(err)
        assert "boom" in str(err)

    def test_control_channel_form(self):
        err = ShardWorkerError(0, None, None, "pipe closed")
        assert "control channel" in str(err)
        assert "pipe closed" in str(err)


class TestWorkerProtocol:
    def test_unknown_command_yields_shard_worker_error(self):
        scenario = scenario_for()
        transport = _ProcessTransport(make_init(scenario, 2), n_regions=2,
                                      workers=2, tally=_Tally())
        try:
            transport.build_regions()
            handle = transport.handles[0]
            handle.conn.send(("frobnicate", 0))
            with pytest.raises(ShardWorkerError, match="frobnicate"):
                transport._recv(handle, 0, None)
        finally:
            transport.close()
        for handle in transport.handles:
            assert not handle.process.is_alive()

    def test_worker_failure_reply_carries_the_traceback(self):
        scenario = scenario_for()
        transport = _ProcessTransport(make_init(scenario, 2), n_regions=2,
                                      workers=1, tally=_Tally())
        try:
            # A window against a region that was never built fails inside
            # the worker; the loop must survive and report the traceback.
            handle = transport.handles[0]
            handle.conn.send(("window", 0, 0.5, None))
            with pytest.raises(ShardWorkerError, match="KeyError"):
                transport._recv(handle, 0, 0.5)
            # The worker is still serving: a real build now succeeds.
            transport.build_regions()
        finally:
            transport.close()


class TestWorkerCrash:
    def test_sigkilled_worker_surfaces_region_and_window(self, monkeypatch):
        """SIGKILL one worker between windows: the coordinator raises a
        ShardWorkerError naming the dead worker's region and the window,
        and still reaps every remaining worker process."""
        scenario = scenario_for()
        seen = {"handles": None}

        def kill_first(window_index, handles):
            seen["handles"] = list(handles)
            if window_index == 1:
                os.kill(handles[0].process.pid, signal.SIGKILL)
                handles[0].process.join(timeout=10)

        monkeypatch.setattr(coordinator, "_barrier_hook", kill_first)
        with pytest.raises(ShardWorkerError) as excinfo:
            run_sharded(scenario, n_regions=2, workers=2)
        message = str(excinfo.value)
        assert "worker 0" in message
        assert "region 0" in message
        assert "t=" in message
        # Cleanup ran despite the failure: no orphaned worker processes.
        for handle in seen["handles"]:
            assert not handle.process.is_alive()
