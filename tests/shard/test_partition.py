"""Unit tests for the METIS-style greedy edge-cut partitioner."""

from __future__ import annotations

import pytest

from repro.netsim import Simulator
from repro.shard import partition_topology
from repro.shard.scenario import build_topology, random_scenario


def _random_topo(seed=0, n_switches=40, n_hosts=80):
    scenario = random_scenario(seed=seed, n_switches=n_switches,
                               n_hosts=n_hosts, n_flows=1,
                               duration_s=1.0)
    return build_topology(scenario, Simulator(seed=seed))


class TestPartitionCoverage:
    def test_every_node_in_exactly_one_region(self):
        topo = _random_topo()
        part = partition_topology(topo, 4)
        assert set(part.assignment) == set(topo.nodes)
        flattened = [name for members in part.regions for name in members]
        assert sorted(flattened) == sorted(topo.nodes)
        assert len(flattened) == len(set(flattened))
        for region, members in enumerate(part.regions):
            assert all(part.assignment[name] == region for name in members)

    def test_hosts_follow_their_gateway_switch(self):
        topo = _random_topo()
        part = partition_topology(topo, 4)
        for host_name in topo.host_names:
            gateway = topo.nodes[host_name].gateway
            assert part.assignment[host_name] == part.assignment[gateway]

    def test_regions_reasonably_balanced(self):
        topo = _random_topo(n_switches=60)
        part = partition_topology(topo, 4)
        switch_names = set(topo.switch_names)
        sizes = [len([m for m in members if m in switch_names])
                 for members in part.regions]
        assert min(sizes) >= 1
        # The refinement sweep never drains a region below half its
        # balanced share.
        assert min(sizes) >= 60 // (2 * 4)


class TestBoundary:
    def test_boundary_is_symmetric_and_cross_region(self):
        topo = _random_topo()
        part = partition_topology(topo, 3)
        assert part.boundary, "3 regions of a connected graph must cut"
        for (a, b), (src_region, dst_region) in part.boundary.items():
            assert (b, a) in part.boundary
            assert part.boundary[(b, a)] == (dst_region, src_region)
            assert part.assignment[a] == src_region
            assert part.assignment[b] == dst_region
            assert src_region != dst_region
        assert part.cut_edges == len(part.boundary) // 2

    def test_boundary_out_lists_links_leaving_the_region(self):
        topo = _random_topo()
        part = partition_topology(topo, 3)
        for region in range(3):
            out = part.boundary_out(region)
            assert out == sorted(out)
            for a, b in out:
                assert part.assignment[a] == region
                assert part.assignment[b] != region

    def test_min_boundary_delay(self):
        topo = _random_topo()
        part = partition_topology(topo, 2)
        min_delay = part.min_boundary_delay(topo)
        assert min_delay == min(topo.links[key].delay_s
                                for key in part.boundary)

    def test_single_region_has_no_boundary(self):
        topo = _random_topo()
        part = partition_topology(topo, 1)
        assert part.boundary == {}
        assert part.cut_edges == 0
        assert part.min_boundary_delay(topo) is None


class TestDeterminism:
    def test_same_seed_same_partition(self):
        first = partition_topology(_random_topo(), 4, seed=3)
        second = partition_topology(_random_topo(), 4, seed=3)
        assert first.assignment == second.assignment
        assert first.regions == second.regions
        assert first.boundary == second.boundary
        assert first.cut_edges == second.cut_edges

    def test_seed_changes_the_partition(self):
        topo = _random_topo()
        assignments = {tuple(sorted(
            partition_topology(topo, 4, seed=seed).assignment.items()))
            for seed in range(8)}
        assert len(assignments) > 1


class TestValidation:
    def test_zero_regions_rejected(self):
        with pytest.raises(ValueError):
            partition_topology(_random_topo(), 0)

    def test_more_regions_than_switches_rejected(self):
        topo = _random_topo(n_switches=5, n_hosts=10)
        with pytest.raises(ValueError):
            partition_topology(topo, 6)
