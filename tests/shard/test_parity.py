"""Byte-identity property tests: sharded exact mode vs. the single engine.

The contract (DESIGN.md "Sharded simulation"): in ``exact`` sync mode
the sharded stable record — samples, per-flow finals, update and pass
counts — is byte-identical (compared via ``json.dumps(...,
sort_keys=True)``) to :func:`repro.shard.scenario.run_single` on the
same scenario, for any region count and any worker count.

The resident-worker transport adds a second identity obligation: its
full record (minus the wall-clock ``transport`` section) must equal
what the original blob-per-window transport produced.  ``legacy_run``
below replicates that transport verbatim on top of the retained
:func:`repro.shard.region.run_region_window` task.
"""

from __future__ import annotations

import json

from repro import telemetry
from repro.checkpoint import (capture_globals, pack_state, restore_globals,
                              unpack_state)
from repro.netsim.engine import Simulator
from repro.shard import figure3_scenario, run_sharded, run_single
from repro.shard.coordinator import _consensus_pins, _empty_pending, plan_pins
from repro.shard.partition import partition_topology
from repro.shard.region import build_region, compute_paths, run_region_window
from repro.shard.scenario import aggregate_samples, build_topology
from repro.sweep.runner import stable_metrics
from repro.telemetry import MetricsRegistry

#: Keys both run_single and run_sharded emit with identical meaning.
STABLE_KEYS = ("samples", "flows", "updates", "allocation_passes")


def canonical(record, keys=STABLE_KEYS):
    return json.dumps({key: record[key] for key in keys}, sort_keys=True)


def full_canonical(record):
    """The whole record minus the fields that legitimately vary between
    transports and runs: wall/cpu accounting and the workers count."""
    record = dict(record)
    record.pop("transport", None)
    record.pop("workers", None)
    return json.dumps(record, sort_keys=True)


def scenario_for(seed):
    # Short horizon with the attack wave and demand churn inside it, so
    # every seed exercises active-set changes and version bumps.
    return figure3_scenario(seed=seed, duration_s=2.0, attack_start_s=1.0)


def legacy_run(scenario, n_regions, sync="exact", window_s=None):
    """The pre-resident blob-per-window coordinator, replicated verbatim.

    Every region is packed after each window and unpacked before the
    next — the transport :mod:`repro.shard.workers` replaced.  Kept as
    the reference the resident transport must match byte for byte.
    """
    full = build_topology(scenario, Simulator(seed=scenario.seed))
    partition = partition_topology(full, n_regions, seed=scenario.seed)
    if window_s is None:
        window_s = scenario.sample_period_s
    pin_plan = None
    plan_updates = plan_passes = 0
    if sync == "exact":
        pin_plan, plan_updates, plan_passes = plan_pins(scenario)
    t = 0.0
    pending = _empty_pending(n_regions)
    paths = compute_paths(full, scenario)
    blobs = []
    base = capture_globals()
    try:
        for index in range(n_regions):
            telemetry.reset()
            region = build_region(full, scenario, partition, index, sync,
                                  paths, pin_plan=pin_plan)
            blobs.append(pack_state(region))
    finally:
        restore_globals(base)
    while t < scenario.duration_s:
        t_end = min(t + window_s, scenario.duration_s)
        payloads = [(blobs[i], t_end, pending[i]) for i in range(n_regions)]
        base = capture_globals()
        try:
            results = [run_region_window(payload) for payload in payloads]
        finally:
            restore_globals(base)
        blobs = [result[0] for result in results]
        reports = [result[2] for result in results]
        pending = _empty_pending(n_regions)
        for _blob, outbox, _report in results:
            for arrival, node_name, packet in outbox:
                dest = partition.assignment[node_name]
                pending[dest]["packets"].append((arrival, node_name, packet))
        if sync == "local":
            pins = _consensus_pins(reports)
            for entry in pending:
                entry["pins"] = pins
        t = t_end
    record_lists, finals, snapshots = [], {}, []
    region_updates = region_passes = 0
    base = capture_globals()
    try:
        for blob in blobs:
            telemetry.reset()
            region = unpack_state(blob)
            snapshots.append(telemetry.metrics().snapshot())
            record_lists.append(region.sampler.records)
            for idx, final in region.home_finals():
                finals[idx] = final
            region_updates = max(region_updates, region.fluid.updates)
            region_passes += region.fluid.allocation_passes
    finally:
        restore_globals(base)
    merged = MetricsRegistry().merge(*snapshots).snapshot()
    return {
        "mode": f"sharded-{sync}", "seed": scenario.seed,
        "samples": aggregate_samples(record_lists),
        "flows": [finals[idx] for idx in range(len(scenario.flows))],
        "updates": plan_updates if sync == "exact" else region_updates,
        "allocation_passes": (plan_passes if sync == "exact"
                              else region_passes),
        "n_regions": n_regions, "window_s": window_s,
        "cut_edges": partition.cut_edges,
        "merged_stable_metrics": stable_metrics(merged),
    }


class TestExactByteIdentity:
    def test_25_seeds_2_and_4_regions(self):
        for seed in range(25):
            scenario = scenario_for(seed)
            single = canonical(run_single(scenario))
            for n_regions in (2, 4):
                sharded = run_sharded(scenario, n_regions=n_regions)
                assert canonical(sharded) == single, (
                    f"seed {seed}, {n_regions} regions diverged from the "
                    f"single engine")

    def test_25_seeds_resident_matches_single_and_legacy_transport(self):
        """The resident transport's full record equals the blob-per-window
        transport's for workers in {1, 2, 4} — and both equal run_single
        on the stable keys.  Worker processes exercise distinct code only
        for workers > 1, so the multi-process points use a subset of the
        seeds to keep the suite fast; workers=1 covers all 25."""
        for seed in range(25):
            scenario = scenario_for(seed)
            single = canonical(run_single(scenario))
            legacy = legacy_run(scenario, n_regions=4)
            assert canonical(legacy) == single
            legacy_full = full_canonical(legacy)
            worker_counts = (1, 2, 4) if seed < 5 else (1,)
            for workers in worker_counts:
                resident = run_sharded(scenario, n_regions=4,
                                       workers=workers)
                assert canonical(resident) == single, (
                    f"seed {seed}, workers={workers} diverged from the "
                    f"single engine")
                assert full_canonical(resident) == legacy_full, (
                    f"seed {seed}, workers={workers} diverged from the "
                    f"legacy blob transport")

    def test_local_sync_resident_matches_legacy_transport(self):
        for seed in (0, 7):
            scenario = scenario_for(seed)
            legacy_full = full_canonical(
                legacy_run(scenario, n_regions=2, sync="local"))
            for workers in (1, 2):
                resident = run_sharded(scenario, n_regions=2,
                                       workers=workers, sync="local")
                assert full_canonical(resident) == legacy_full, (
                    f"seed {seed}, workers={workers} local-mode diverged "
                    f"from the legacy blob transport")

    def test_worker_count_never_changes_results(self):
        scenario = scenario_for(7)
        pooled = run_sharded(scenario, n_regions=2, workers=2)
        inline = run_sharded(scenario, n_regions=2, workers=1)
        # Full-record identity, merged telemetry included; only the
        # literal workers field and the wall/cpu transport accounting
        # may differ.
        assert full_canonical(pooled) == full_canonical(inline)

    def test_longer_horizon_stays_identical(self):
        scenario = figure3_scenario(seed=3, duration_s=4.0,
                                    attack_start_s=2.5)
        single = canonical(run_single(scenario))
        assert canonical(run_sharded(scenario, n_regions=4)) == single

    def test_explicit_window_length_is_neutral(self):
        scenario = scenario_for(11)
        default = canonical(run_sharded(scenario, n_regions=2))
        small = canonical(run_sharded(scenario, n_regions=2,
                                      window_s=0.17))
        assert small == default


class TestSingleEngineWindowing:
    def test_run_single_window_slicing_is_observationally_free(self):
        scenario = scenario_for(5)
        plain = run_single(scenario)
        sliced = run_single(scenario, window_s=0.3)
        assert json.dumps(plain, sort_keys=True) \
            == json.dumps(sliced, sort_keys=True)
