"""Byte-identity property tests: sharded exact mode vs. the single engine.

The contract (DESIGN.md "Sharded simulation"): in ``exact`` sync mode
the sharded stable record — samples, per-flow finals, update and pass
counts — is byte-identical (compared via ``json.dumps(...,
sort_keys=True)``) to :func:`repro.shard.scenario.run_single` on the
same scenario, for any region count and any worker count.
"""

from __future__ import annotations

import json

from repro.shard import figure3_scenario, run_sharded, run_single

#: Keys both run_single and run_sharded emit with identical meaning.
STABLE_KEYS = ("samples", "flows", "updates", "allocation_passes")


def canonical(record, keys=STABLE_KEYS):
    return json.dumps({key: record[key] for key in keys}, sort_keys=True)


def scenario_for(seed):
    # Short horizon with the attack wave and demand churn inside it, so
    # every seed exercises active-set changes and version bumps.
    return figure3_scenario(seed=seed, duration_s=2.0, attack_start_s=1.0)


class TestExactByteIdentity:
    def test_25_seeds_2_and_4_regions(self):
        for seed in range(25):
            scenario = scenario_for(seed)
            single = canonical(run_single(scenario))
            for n_regions in (2, 4):
                sharded = run_sharded(scenario, n_regions=n_regions)
                assert canonical(sharded) == single, (
                    f"seed {seed}, {n_regions} regions diverged from the "
                    f"single engine")

    def test_worker_count_never_changes_results(self):
        scenario = scenario_for(7)
        pooled = run_sharded(scenario, n_regions=2, workers=2)
        inline = run_sharded(scenario, n_regions=2, workers=1)
        # Full-record identity, merged telemetry included; only the
        # literal workers field may differ.
        pooled.pop("workers")
        inline.pop("workers")
        assert json.dumps(pooled, sort_keys=True) \
            == json.dumps(inline, sort_keys=True)

    def test_longer_horizon_stays_identical(self):
        scenario = figure3_scenario(seed=3, duration_s=4.0,
                                    attack_start_s=2.5)
        single = canonical(run_single(scenario))
        assert canonical(run_sharded(scenario, n_regions=4)) == single

    def test_explicit_window_length_is_neutral(self):
        scenario = scenario_for(11)
        default = canonical(run_sharded(scenario, n_regions=2))
        small = canonical(run_sharded(scenario, n_regions=2,
                                      window_s=0.17))
        assert small == default


class TestSingleEngineWindowing:
    def test_run_single_window_slicing_is_observationally_free(self):
        scenario = scenario_for(5)
        plain = run_single(scenario)
        sliced = run_single(scenario, window_s=0.3)
        assert json.dumps(plain, sort_keys=True) \
            == json.dumps(sliced, sort_keys=True)
