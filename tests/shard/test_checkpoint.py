"""Sharded checkpoint/resume: barrier snapshots, crash recovery."""

from __future__ import annotations

import json

import pytest

from repro.shard import coordinator, figure3_scenario, run_sharded
from repro.shard.coordinator import MANIFEST_NAME, PENDING_NAME


def scenario_for(seed=0):
    return figure3_scenario(seed=seed, duration_s=2.0, attack_start_s=1.0)


def canonical(record):
    return json.dumps(record, sort_keys=True)


class TestCheckpointWrites:
    def test_checkpointing_is_observationally_free(self, tmp_path):
        scenario = scenario_for()
        plain = run_sharded(scenario, n_regions=2)
        checkpointed = run_sharded(scenario, n_regions=2,
                                   checkpoint_dir=tmp_path)
        assert canonical(checkpointed) == canonical(plain)

    def test_final_manifest_points_at_the_horizon(self, tmp_path):
        scenario = scenario_for()
        run_sharded(scenario, n_regions=2, checkpoint_dir=tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["next_t"] == scenario.duration_s
        assert manifest["n_regions"] == 2
        assert manifest["scenario"] == scenario.to_dict()
        for name in manifest["blobs"]:
            assert (tmp_path / name).stat().st_size > 0
        assert (tmp_path / PENDING_NAME).exists()


class TestResume:
    def test_crash_and_resume_is_byte_identical(self, tmp_path,
                                                monkeypatch):
        scenario = scenario_for()
        baseline = run_sharded(scenario, n_regions=2)

        real = coordinator.run_region_window
        calls = {"n": 0}

        def crashing(payload):
            calls["n"] += 1
            if calls["n"] > 5:
                raise RuntimeError("simulated worker crash")
            return real(payload)

        monkeypatch.setattr(coordinator, "run_region_window", crashing)
        with pytest.raises(RuntimeError, match="simulated worker crash"):
            run_sharded(scenario, n_regions=2, checkpoint_dir=tmp_path)
        monkeypatch.setattr(coordinator, "run_region_window", real)

        # The crash landed mid-window: the manifest still describes the
        # last completed barrier, so the resumed run replays from there.
        resumed = run_sharded(scenario, n_regions=2,
                              checkpoint_dir=tmp_path, resume=True)
        assert canonical(resumed) == canonical(baseline)

    def test_resume_without_manifest_starts_fresh(self, tmp_path):
        scenario = scenario_for()
        baseline = run_sharded(scenario, n_regions=2)
        resumed = run_sharded(scenario, n_regions=2,
                              checkpoint_dir=tmp_path, resume=True)
        assert canonical(resumed) == canonical(baseline)

    def test_resume_needs_a_checkpoint_dir(self):
        with pytest.raises(ValueError):
            run_sharded(scenario_for(), n_regions=2, resume=True)

    def test_mismatched_configuration_refuses_to_resume(self, tmp_path):
        scenario = scenario_for()
        run_sharded(scenario, n_regions=2, checkpoint_dir=tmp_path)
        with pytest.raises(ValueError, match="different"):
            run_sharded(scenario, n_regions=3, checkpoint_dir=tmp_path,
                        resume=True)
        with pytest.raises(ValueError, match="different"):
            run_sharded(scenario_for(seed=1), n_regions=2,
                        checkpoint_dir=tmp_path, resume=True)
