"""Sharded checkpoint/resume: interval snapshots, crash recovery."""

from __future__ import annotations

import json

import pytest

from repro.shard import figure3_scenario, run_sharded
from repro.shard.coordinator import MANIFEST_NAME, PENDING_NAME
from repro.shard.workers import ResidentRegionHost


def scenario_for(seed=0):
    return figure3_scenario(seed=seed, duration_s=2.0, attack_start_s=1.0)


def canonical(record):
    record = dict(record)
    record.pop("transport", None)  # wall/cpu accounting: varies per run
    record.pop("workers", None)  # literal knob; results must not depend on it
    return json.dumps(record, sort_keys=True)


class TestCheckpointWrites:
    def test_checkpointing_is_observationally_free(self, tmp_path):
        scenario = scenario_for()
        plain = run_sharded(scenario, n_regions=2)
        checkpointed = run_sharded(scenario, n_regions=2,
                                   checkpoint_dir=tmp_path)
        assert canonical(checkpointed) == canonical(plain)

    def test_final_manifest_points_at_the_horizon(self, tmp_path):
        scenario = scenario_for()
        run_sharded(scenario, n_regions=2, checkpoint_dir=tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["next_t"] == scenario.duration_s
        assert manifest["n_regions"] == 2
        assert manifest["scenario"] == scenario.to_dict()
        for name in manifest["blobs"]:
            assert (tmp_path / name).stat().st_size > 0
        assert (tmp_path / PENDING_NAME).exists()

    def test_checkpoint_every_skips_intermediate_barriers(self, tmp_path):
        """With an interval, state serializes only when a checkpoint is
        due — the scenario has 4 windows, so every-3 writes at window 3
        and at the horizon (always checkpointed)."""
        scenario = scenario_for()
        record = run_sharded(scenario, n_regions=2,
                             checkpoint_dir=tmp_path, checkpoint_every=3)
        transport = record["transport"]
        assert transport["windows"] == 4
        assert transport["checkpoints_written"] == 2
        assert transport["messages"]["checkpoint"] == 4  # 2 regions x 2
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["next_t"] == scenario.duration_s

    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(ValueError):
            run_sharded(scenario_for(), n_regions=2, checkpoint_every=0)

    def test_no_serialization_without_checkpoint_dir(self):
        """The headline property of the resident transport: a plain run
        never packs or unpacks region state."""
        record = run_sharded(scenario_for(), n_regions=2, workers=2)
        transport = record["transport"]
        assert transport["state_bytes"] == {"from_workers": 0,
                                            "to_workers": 0}
        assert "checkpoint" not in transport["messages"]
        assert "load" not in transport["messages"]


class TestResume:
    def test_crash_and_resume_is_byte_identical(self, tmp_path,
                                                monkeypatch):
        scenario = scenario_for()
        baseline = run_sharded(scenario, n_regions=2)

        real = ResidentRegionHost.window
        calls = {"n": 0}

        def crashing(self, t_end, inject):
            calls["n"] += 1
            if calls["n"] > 5:
                raise RuntimeError("simulated worker crash")
            return real(self, t_end, inject)

        monkeypatch.setattr(ResidentRegionHost, "window", crashing)
        with pytest.raises(RuntimeError, match="simulated worker crash"):
            run_sharded(scenario, n_regions=2, checkpoint_dir=tmp_path)
        monkeypatch.setattr(ResidentRegionHost, "window", real)

        # The crash landed mid-window: the manifest still describes the
        # last completed barrier, so the resumed run replays from there.
        resumed = run_sharded(scenario, n_regions=2,
                              checkpoint_dir=tmp_path, resume=True)
        assert canonical(resumed) == canonical(baseline)

    def test_interval_checkpoint_crash_resume_is_byte_identical(
            self, tmp_path, monkeypatch):
        """checkpoint_every > 1 still resumes byte-identically: the
        crash lands after an unpersisted barrier, so the resume replays
        from the last interval checkpoint, further back in time."""
        scenario = scenario_for()
        baseline = run_sharded(scenario, n_regions=2)

        real = ResidentRegionHost.window
        calls = {"n": 0}

        def crashing(self, t_end, inject):
            calls["n"] += 1
            if calls["n"] > 6:  # window 4 of 4: after the window-3 barrier
                raise RuntimeError("simulated worker crash")
            return real(self, t_end, inject)

        monkeypatch.setattr(ResidentRegionHost, "window", crashing)
        with pytest.raises(RuntimeError, match="simulated worker crash"):
            run_sharded(scenario, n_regions=2, checkpoint_dir=tmp_path,
                        checkpoint_every=2)
        monkeypatch.setattr(ResidentRegionHost, "window", real)

        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["next_t"] == 1.0  # windows are 0.5s; barrier 2 of 4

        resumed = run_sharded(scenario, n_regions=2,
                              checkpoint_dir=tmp_path, resume=True,
                              checkpoint_every=2)
        assert canonical(resumed) == canonical(baseline)

    def test_resume_without_manifest_starts_fresh(self, tmp_path):
        scenario = scenario_for()
        baseline = run_sharded(scenario, n_regions=2)
        resumed = run_sharded(scenario, n_regions=2,
                              checkpoint_dir=tmp_path, resume=True)
        assert canonical(resumed) == canonical(baseline)

    def test_resume_needs_a_checkpoint_dir(self):
        with pytest.raises(ValueError):
            run_sharded(scenario_for(), n_regions=2, resume=True)

    def test_mismatched_configuration_refuses_to_resume(self, tmp_path):
        scenario = scenario_for()
        run_sharded(scenario, n_regions=2, checkpoint_dir=tmp_path)
        with pytest.raises(ValueError, match="different"):
            run_sharded(scenario, n_regions=3, checkpoint_dir=tmp_path,
                        resume=True)
        with pytest.raises(ValueError, match="different"):
            run_sharded(scenario_for(seed=1), n_regions=2,
                        checkpoint_dir=tmp_path, resume=True)

    def test_resume_into_worker_processes(self, tmp_path):
        """A checkpoint written inline resumes into multi-process
        workers byte-identically — the one time the resident transport
        ships state to a worker, visible in the transport accounting."""
        scenario = scenario_for()
        baseline = run_sharded(scenario, n_regions=2)
        record = run_sharded(scenario, n_regions=2,
                             checkpoint_dir=tmp_path, checkpoint_every=2)
        assert canonical(record) == canonical(baseline)
        resumed = run_sharded(scenario, n_regions=2, workers=2,
                              checkpoint_dir=tmp_path, resume=True)
        assert canonical(resumed) == canonical(baseline)
        transport = resumed["transport"]
        assert transport["messages"]["load"] == 2
        assert transport["state_bytes"]["to_workers"] > 0
