"""Region-world mechanics: portals, link segments, local-mode sync."""

from __future__ import annotations

import pickle

import pytest

from repro.netsim import Simulator
from repro.netsim.packet import Packet
from repro.shard import (LinkSegment, figure3_scenario, partition_topology,
                         run_sharded, run_single)
from repro.shard.coordinator import plan_pins
from repro.shard.region import build_region, compute_paths
from repro.shard.scenario import build_topology


def build_figure3_region(region_index=0, sync="exact",
                         exchange_packets=False, n_regions=2, seed=0):
    scenario = figure3_scenario(seed=seed, duration_s=2.0,
                                attack_start_s=1.0)
    full = build_topology(scenario, Simulator(seed=seed))
    partition = partition_topology(full, n_regions, seed=seed)
    paths = compute_paths(full, scenario)
    pin_plan = plan_pins(scenario)[0] if sync == "exact" else None
    region = build_region(full, scenario, partition, region_index, sync,
                          paths, pin_plan=pin_plan,
                          exchange_packets=exchange_packets)
    return scenario, full, partition, region


class TestLinkSegment:
    def test_quacks_like_a_path(self):
        segment = LinkSegment("a", "z", (("a", "s1"), ("s1", "s2")))
        assert segment.links() == [("a", "s1"), ("s1", "s2")]
        assert segment.link_keys == (("a", "s1"), ("s1", "s2"))

    def test_pickle_roundtrip(self):
        segment = LinkSegment("a", "z", (("a", "s1"),))
        clone = pickle.loads(pickle.dumps(segment))
        assert (clone.src, clone.dst) == ("a", "z")
        assert clone.link_keys == (("a", "s1"),)


class TestPortals:
    def test_portals_stand_in_for_external_neighbors(self):
        _, full, partition, region = build_figure3_region(
            exchange_packets=True)
        out = partition.boundary_out(region.region_index)
        assert out, "2-region figure2 split must cut at least one link"
        for inside, outside in out:
            assert outside in region.portals
            assert outside not in region.topo.nodes
            portal = region.portals[outside]
            stitch = region.topo.nodes[inside].links[outside]
            assert stitch.dst is portal
            assert stitch.delay_s == 0.0
            assert stitch.capacity_bps == full.links[(inside,
                                                      outside)].capacity_bps
            # The stitch is node-attached only: the regional allocator
            # never sees the cut link.
            assert (inside, outside) not in region.topo.links
            assert portal.delays[inside] == full.links[(inside,
                                                        outside)].delay_s

    def test_portal_records_logical_arrival_in_outbox(self):
        _, full, partition, region = build_figure3_region(
            exchange_packets=True)
        inside, outside = partition.boundary_out(region.region_index)[0]
        portal = region.portals[outside]
        stitch = region.topo.nodes[inside].links[outside]
        packet = Packet(src="client0", dst="victim")
        portal.receive(packet, from_link=stitch)
        assert region.outbox == [
            (region.sim.now + full.links[(inside, outside)].delay_s,
             outside, packet)]
        assert region.drain_outbox() == [
            (region.sim.now + full.links[(inside, outside)].delay_s,
             outside, packet)]
        assert region.outbox == []

    def test_no_portals_without_exchange_packets(self):
        _, _, _, region = build_figure3_region(exchange_packets=False)
        assert region.portals == {}

    def test_oversized_window_rejected(self):
        scenario = figure3_scenario(seed=0, duration_s=2.0,
                                    attack_start_s=1.0)
        with pytest.raises(ValueError, match="conservative-sync"):
            run_sharded(scenario, n_regions=2, exchange_packets=True,
                        window_s=10.0)

    def test_window_auto_bounded_by_min_boundary_delay(self):
        scenario = figure3_scenario(seed=0, duration_s=0.01,
                                    attack_start_s=1.0)
        full = build_topology(scenario, Simulator(seed=0))
        partition = partition_topology(full, 2, seed=0)
        min_delay = partition.min_boundary_delay(full)
        record = run_sharded(scenario, n_regions=2, exchange_packets=True)
        assert record["window_s"] <= min_delay


class TestLocalSync:
    def test_tracks_single_engine_when_demand_limited(self):
        # No attack inside the horizon: every bottleneck is interior or
        # demand-limited, so per-region allocators agree with the global
        # one to within the boundary-pin headroom.
        scenario = figure3_scenario(seed=0, duration_s=2.0,
                                    attack_start_s=5.0)
        single = run_single(scenario)
        local = run_sharded(scenario, n_regions=2, sync="local")
        assert local["mode"] == "sharded-local"
        assert len(local["samples"]) == len(single["samples"])
        for single_tick, local_tick in zip(single["samples"],
                                           local["samples"]):
            assert local_tick[0] == single_tick[0]
            assert local_tick[1] == pytest.approx(single_tick[1], rel=0.05)

    def test_attack_run_completes_with_full_coverage(self):
        # With bots contending on cut links the local answer is
        # approximate (boundary-link capacity is not itself allocated),
        # but the record stays complete: every tick, every flow.
        scenario = figure3_scenario(seed=0, duration_s=2.0,
                                    attack_start_s=1.0)
        single = run_single(scenario)
        local = run_sharded(scenario, n_regions=4, sync="local")
        assert [tick[0] for tick in local["samples"]] \
            == [tick[0] for tick in single["samples"]]
        assert len(local["flows"]) == len(single["flows"])
        assert all(final[1] >= 0.0 for final in local["flows"])

    def test_crossing_flows_get_boundary_pins(self):
        _, _, _, region = build_figure3_region(sync="local")
        assert region.crossing_specs, \
            "client->victim flows must cross a 2-region figure2 split"
        idx = region.crossing_specs[0]
        region.set_boundary_pins({idx: 1.0e9})
        assert region.flow_by_spec[idx].pinned_rate_bps == 1.0e9
        region.set_boundary_pins({idx: None})
        assert region.flow_by_spec[idx].pinned_rate_bps is None


class TestValidation:
    def test_bad_sync_mode_rejected(self):
        scenario = figure3_scenario(seed=0, duration_s=1.0)
        with pytest.raises(ValueError):
            run_sharded(scenario, n_regions=2, sync="fast-and-loose")

    def test_bad_region_and_worker_counts_rejected(self):
        scenario = figure3_scenario(seed=0, duration_s=1.0)
        with pytest.raises(ValueError):
            run_sharded(scenario, n_regions=0)
        with pytest.raises(ValueError):
            run_sharded(scenario, n_regions=2, workers=0)
