#!/usr/bin/env python3
"""Gate CI on sweep-runner invariants.

Reads a ``sweep_summary.json`` written by ``python -m repro sweep`` and
checks the properties the runner guarantees:

* task accounting (``--expect-tasks`` / ``--expect-executed`` /
  ``--expect-skipped``) — the resume smoke test runs a sweep twice and
  requires the second pass to have executed nothing;
* no failed tasks;
* cross-run determinism (``--matches OTHER_SUMMARY``) — aggregates and
  the deterministic subset of the merged metrics snapshot must be
  identical, whatever worker counts produced the two summaries.

Usage::

    python scripts/check_sweep.py sweep_ci/sweep_summary.json \\
        --expect-tasks 4 --expect-skipped 4
    python scripts/check_sweep.py parallel/sweep_summary.json \\
        --matches serial/sweep_summary.json
"""

import argparse
import json
from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

# Fallback wall-clock family list for summaries written before the
# runner started embedding ``wall_clock_metrics``; current summaries
# carry the authoritative list themselves.  Imported, not copied, so
# the fallback cannot drift either (reprolint RPL007).
from repro.telemetry import WALL_CLOCK_METRICS  # noqa: E402


def load(path):
    return json.loads(Path(path).read_text())


def stable(snapshot, excluded):
    return {name: family for name, family in snapshot.items()
            if name not in excluded}


def check(args):
    summary = load(args.summary)
    n_tasks = summary.get("n_tasks")
    executed = summary.get("executed")
    skipped = summary.get("skipped")

    if summary.get("errors"):
        return f"{len(summary['errors'])} task(s) failed: " \
               f"{summary['errors']}"
    for flag, expected, actual in (
            ("--expect-tasks", args.expect_tasks, n_tasks),
            ("--expect-executed", args.expect_executed, executed),
            ("--expect-skipped", args.expect_skipped, skipped)):
        if expected is not None and actual != expected:
            return f"{flag}: wanted {expected}, summary has {actual}"
    if not summary.get("aggregates"):
        return "summary has no aggregates"

    if args.matches is not None:
        other = load(args.matches)
        if summary["aggregates"] != other["aggregates"]:
            return (f"aggregates differ between {args.summary} and "
                    f"{args.matches}")
        excluded = set(summary.get("wall_clock_metrics",
                                   WALL_CLOCK_METRICS))
        excluded.update(other.get("wall_clock_metrics", ()))
        if stable(summary["merged_metrics"], excluded) != \
                stable(other["merged_metrics"], excluded):
            return (f"merged metrics differ between {args.summary} and "
                    f"{args.matches} (excluding wall-clock families)")
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("summary", help="path to a sweep_summary.json")
    parser.add_argument("--expect-tasks", type=int, default=None)
    parser.add_argument("--expect-executed", type=int, default=None)
    parser.add_argument("--expect-skipped", type=int, default=None)
    parser.add_argument(
        "--matches", metavar="OTHER", default=None,
        help="second sweep_summary.json that must agree on aggregates "
             "and deterministic merged metrics")
    args = parser.parse_args(argv)

    error = check(args)
    if error:
        print(f"check_sweep: FAIL: {error}", file=sys.stderr)
        return 1
    summary = load(args.summary)
    print(f"check_sweep: OK: {summary['n_tasks']} task(s), "
          f"{summary['executed']} executed, {summary['skipped']} "
          f"resumed, {len(summary['aggregates'])} group(s) in "
          f"{summary['wall_seconds']:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
