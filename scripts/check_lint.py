#!/usr/bin/env python3
"""Gate CI on reprolint: zero findings beyond the committed baseline.

Runs the in-tree linter (``repro.lint``) in whole-program mode over
``src`` and ``scripts`` and diffs the result against
``reprolint_baseline.json``.  The gate is "zero **new** findings":
anything grandfathered in the baseline passes, anything else fails with
a message naming the offending rule and file.  Stale baseline entries
(fixed findings still listed) are reported so the baseline shrinks over
time instead of fossilizing.  ``--json-out FILE`` additionally writes
the full findings payload (including grandfathered and suppressed
counts) for CI to upload as an artifact.

Usage::

    python scripts/check_lint.py
    python scripts/check_lint.py --json-out lint_findings.json
    python scripts/check_lint.py --root /path/to/tree   # for tests
"""

import argparse
import json
import os
from pathlib import Path
import sys

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import (lint_paths, load_baseline,  # noqa: E402
                        split_by_baseline)

BASELINE_NAME = "reprolint_baseline.json"


def check(root: Path, baseline_path: Path):
    """Returns (failures, notes, payload) for the tree at ``root``."""
    failures = []
    notes = []
    src = root / "src"
    if not src.is_dir():
        return [f"no src/ directory under {root}"], notes, None

    # Lint from inside the root with relative paths so baseline keys
    # (which embed paths) are machine-independent and committable.
    # scripts/ is optional so --root test trees stay minimal.
    os.chdir(root)
    paths = ["src"] + (["scripts"] if (root / "scripts").is_dir()
                       else [])
    result = lint_paths(paths, project=True)
    for path, error in result.parse_errors:
        failures.append(f"parse error in {path}: {error}")

    baseline = {}
    if baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            return [str(exc)], notes, None
    new, grandfathered, stale = split_by_baseline(result.findings,
                                                  baseline)
    for finding in new:
        failures.append(
            f"new {finding.rule} finding in {finding.path}:"
            f"{finding.line}: {finding.message}")
    if grandfathered:
        notes.append(f"{len(grandfathered)} baselined finding(s) "
                     f"grandfathered")
    if stale:
        notes.append(
            f"{len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer produced "
            f"({', '.join(stale[:5])}{'...' if len(stale) > 5 else ''}); "
            f"regenerate with: python -m repro.lint src scripts "
            f"--baseline {BASELINE_NAME} --write-baseline")
    notes.append(f"{result.files_checked} file(s) checked (project "
                 f"mode), {result.suppressed} finding(s) suppressed "
                 f"inline")
    payload = {
        "paths": paths,
        "project": True,
        "findings": [f.to_dict() for f in new],
        "grandfathered": len(grandfathered),
        "stale_baseline_keys": stale,
        "suppressed": result.suppressed,
        "files_checked": result.files_checked,
        "parse_errors": [{"path": p, "error": e}
                         for p, e in result.parse_errors],
    }
    return failures, notes, payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree to lint (default: this repository)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: "
                             f"<root>/{BASELINE_NAME})")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="also write the findings payload to FILE "
                             "(CI uploads it as an artifact)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    json_out = (args.json_out.resolve()
                if args.json_out is not None else None)
    baseline_path = (args.baseline if args.baseline is not None
                     else root / BASELINE_NAME)
    failures, notes, payload = check(root, baseline_path)
    if json_out is not None and payload is not None:
        json_out.write_text(json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")
        notes.append(f"findings payload written to {json_out}")
    for note in notes:
        print(f"check_lint: {note}")
    if failures:
        for failure in failures:
            print(f"check_lint: FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_lint: OK: no findings beyond the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
