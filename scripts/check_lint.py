#!/usr/bin/env python3
"""Gate CI on reprolint: zero findings beyond the committed baseline.

Runs the in-tree linter (``repro.lint``) over ``src`` and diffs the
result against ``reprolint_baseline.json``.  The gate is "zero **new**
findings": anything grandfathered in the baseline passes, anything else
fails with a message naming the offending rule and file.  Stale
baseline entries (fixed findings still listed) are reported so the
baseline shrinks over time instead of fossilizing.

Usage::

    python scripts/check_lint.py
    python scripts/check_lint.py --root /path/to/tree   # for tests
"""

import argparse
import os
from pathlib import Path
import sys

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import (lint_paths, load_baseline,  # noqa: E402
                        split_by_baseline)

BASELINE_NAME = "reprolint_baseline.json"


def check(root: Path, baseline_path: Path):
    """Returns (failures, notes) for the tree rooted at ``root``."""
    failures = []
    notes = []
    src = root / "src"
    if not src.is_dir():
        return [f"no src/ directory under {root}"], notes

    # Lint from inside the root with a relative path so baseline keys
    # (which embed paths) are machine-independent and committable.
    os.chdir(root)
    result = lint_paths(["src"])
    for path, error in result.parse_errors:
        failures.append(f"parse error in {path}: {error}")

    baseline = {}
    if baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            return [str(exc)], notes
    new, grandfathered, stale = split_by_baseline(result.findings,
                                                  baseline)
    for finding in new:
        failures.append(
            f"new {finding.rule} finding in {finding.path}:"
            f"{finding.line}: {finding.message}")
    if grandfathered:
        notes.append(f"{len(grandfathered)} baselined finding(s) "
                     f"grandfathered")
    if stale:
        notes.append(
            f"{len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer produced "
            f"({', '.join(stale[:5])}{'...' if len(stale) > 5 else ''}); "
            f"regenerate with: python -m repro.lint src "
            f"--baseline {BASELINE_NAME} --write-baseline")
    notes.append(f"{result.files_checked} file(s) checked, "
                 f"{result.suppressed} finding(s) suppressed inline")
    return failures, notes


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree to lint (default: this repository)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: "
                             f"<root>/{BASELINE_NAME})")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    baseline_path = (args.baseline if args.baseline is not None
                     else root / BASELINE_NAME)
    failures, notes = check(root, baseline_path)
    for note in notes:
        print(f"check_lint: {note}")
    if failures:
        for failure in failures:
            print(f"check_lint: FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_lint: OK: no findings beyond the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
