#!/usr/bin/env python3
"""Gate CI on test coverage of ``src/repro``.

Reads a coverage JSON report (``pytest --cov=repro
--cov-report=json:coverage.json``) and enforces the committed floor
from ``coverage_baseline.json`` at the repo root::

    python scripts/check_coverage.py coverage.json
    python scripts/check_coverage.py coverage.json --min-percent 80

Exit codes: ``0`` at or above the floor, ``1`` below the floor, ``2``
operational error (report missing/invalid — i.e. coverage never ran).

The floor lives in a committed baseline file instead of a CI YAML
literal so that raising it is a reviewed repo change, and so local
runs and CI can never disagree about the number.  The container used
for local development does not ship ``pytest-cov``; this script only
needs the JSON artifact, so it runs anywhere.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "coverage_baseline.json"


def load_floor(path):
    baseline = json.loads(Path(path).read_text())
    floor = baseline.get("floor_percent")
    if not isinstance(floor, (int, float)):
        raise ValueError(
            f"{path} has no numeric 'floor_percent' field")
    return float(floor)


def measured_percent(report):
    totals = report.get("totals", {})
    percent = totals.get("percent_covered")
    if not isinstance(percent, (int, float)):
        raise ValueError("report has no totals.percent_covered field")
    return float(percent)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="coverage JSON report path")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed floor file (default: repo-root "
                             "coverage_baseline.json)")
    parser.add_argument("--min-percent", type=float, default=None,
                        help="override the baseline floor")
    args = parser.parse_args(argv)

    try:
        if args.min_percent is not None:
            floor = args.min_percent
        else:
            floor = load_floor(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"check_coverage: ERROR: baseline: {exc}", file=sys.stderr)
        return 2

    try:
        report = json.loads(Path(args.report).read_text())
        percent = measured_percent(report)
    except FileNotFoundError:
        print(f"check_coverage: ERROR: {args.report} not found - did "
              f"pytest run with --cov-report=json?", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"check_coverage: ERROR: {args.report}: {exc}",
              file=sys.stderr)
        return 2

    if percent < floor:
        print(f"check_coverage: FAIL: {percent:.2f}% covered < "
              f"{floor:.2f}% floor", file=sys.stderr)
        return 1
    print(f"check_coverage: OK: {percent:.2f}% covered "
          f"(floor {floor:.2f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
