#!/usr/bin/env python3
"""Kill-and-resume CI gate for the engine checkpoint/restore subsystem.

The headline guarantee of ``repro.checkpoint`` is: a run that is killed
with SIGKILL mid-flight and restored from its last auto-checkpoint
finishes with **byte-identical** metrics and figure outputs.  This
script enforces that guarantee end-to-end with real processes:

1. *Reference run* — ``python -m repro serve`` uninterrupted, writing
   final metrics + the figure3 report.
2. *Victim run* — the same serve invocation with periodic
   auto-checkpointing; this script watches the victim's heartbeat
   stream and delivers ``SIGKILL`` once it passes a **seed-derived**
   event count (so different CI seeds kill at different points).
3. *Restored run* — ``serve --restore`` from the victim's newest
   checkpoint, running to completion.
4. *Comparison* — the deterministic metric families (wall-clock
   families excluded, same rule as ``repro.sweep``) and the report text
   must match the reference **byte for byte**.

Exit codes: ``0`` identical, ``1`` mismatch (determinism regression),
``2`` operational error (serve crashed, no checkpoint written, victim
finished before the kill point, ...).

Usage::

    python scripts/check_restore.py --workdir restore_gate \\
        --duration 30 --seed 7
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# The single source of truth for the families excluded from the
# byte-identity comparison; importing it (instead of a local copy) is
# what keeps this gate honest — reprolint RPL007 flags any re-copy.
from repro.telemetry import WALL_CLOCK_METRICS  # noqa: E402


class GateError(RuntimeError):
    """Operational failure (exit 2), as opposed to a mismatch (exit 1)."""


def serve_cmd(args, extra):
    return [sys.executable, "-m", "repro", "serve",
            "--scenario", args.scenario, "--attack",
            "--duration", str(args.duration), "--seed", str(args.seed),
            "--step-events", str(args.step_events),
            "--no-commands"] + extra


def run_serve(args, extra, env, label):
    cmd = serve_cmd(args, extra)
    proc = subprocess.run(cmd, env=env, cwd=REPO_ROOT,
                          stdout=subprocess.DEVNULL, timeout=args.timeout)
    if proc.returncode != 0:
        raise GateError(f"{label} run failed with rc={proc.returncode}: "
                        f"{' '.join(cmd)}")


def last_heartbeat_events(stream_path):
    """Newest events_executed from a serve heartbeat stream (0 if none)."""
    events = 0
    try:
        with open(stream_path) as fh:
            for line in fh:
                line = line.strip()
                if not line or '"service_heartbeat"' not in line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn write while the victim is live
                if record.get("kind") == "service_heartbeat":
                    events = int(record.get("events_executed", events))
    except OSError:
        pass
    return events


def kill_at(args, victim, stream_path, kill_events):
    """Watch the heartbeat stream; SIGKILL the victim past kill_events."""
    # Wall clock is the point here: this is a watchdog on a real child
    # process, not simulated time.
    deadline = time.monotonic() + args.timeout  # reprolint: disable=RPL002
    while True:
        if victim.poll() is not None:
            raise GateError(
                f"victim finished (rc={victim.returncode}) before "
                f"reaching the kill point of {kill_events} events — "
                f"raise --duration or lower the kill fraction")
        events = last_heartbeat_events(stream_path)
        if events >= kill_events:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=60)
            return events
        if time.monotonic() > deadline:  # reprolint: disable=RPL002
            victim.kill()
            raise GateError(
                f"victim never reached {kill_events} events within "
                f"{args.timeout}s (last heartbeat: {events})")
        time.sleep(0.05)


def stable(snapshot):
    return {name: family for name, family in snapshot.items()
            if name not in WALL_CLOCK_METRICS}


def canonical_bytes(metrics_path):
    snapshot = json.loads(Path(metrics_path).read_text())
    return json.dumps(stable(snapshot), sort_keys=True,
                      separators=(",", ":")).encode()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="restore_gate",
                        help="directory for runs, checkpoints, outputs")
    parser.add_argument("--scenario", default="figure3_fastflex")
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--step-events", type=int, default=500)
    parser.add_argument("--checkpoint-every-events", type=int, default=2000)
    parser.add_argument("--kill-fraction", type=float, default=0.45,
                        help="base kill point as a fraction of the "
                             "reference run's total events; the exact "
                             "point is then jittered by the seed")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-run wall-clock timeout in seconds")
    args = parser.parse_args(argv)

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    ckpt_dir = workdir / "checkpoints"
    ckpt_dir.mkdir(exist_ok=True)

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src if not env.get("PYTHONPATH")
                         else src + os.pathsep + env["PYTHONPATH"])

    try:
        # ---- 1. Reference run (uninterrupted) -----------------------
        ref_metrics = workdir / "ref_metrics.json"
        ref_report = workdir / "ref_report.txt"
        ref_stream = workdir / "ref_stream.jsonl"
        print(f"[gate] reference run: {args.scenario} "
              f"duration={args.duration} seed={args.seed}")
        run_serve(args, ["--metrics-out", str(ref_metrics),
                         "--report-out", str(ref_report),
                         "--stream", str(ref_stream)], env, "reference")
        total_events = last_heartbeat_events(ref_stream)
        if total_events <= args.checkpoint_every_events:
            raise GateError(
                f"reference run too short ({total_events} events) for "
                f"checkpoint interval {args.checkpoint_every_events}")

        # ---- 2. Victim run, SIGKILLed at a seed-derived point -------
        base = int(total_events * args.kill_fraction)
        jitter = (args.seed * 977) % args.checkpoint_every_events
        kill_events = min(base + jitter, total_events - args.step_events)
        kill_events = max(kill_events, args.checkpoint_every_events + 1)
        victim_stream = workdir / "victim_stream.jsonl"
        victim_metrics = workdir / "victim_metrics.json"
        print(f"[gate] victim run: SIGKILL at >= {kill_events} "
              f"of ~{total_events} events")
        victim = subprocess.Popen(
            serve_cmd(args, ["--checkpoint-dir", str(ckpt_dir),
                             "--checkpoint-every-events",
                             str(args.checkpoint_every_events),
                             "--stream", str(victim_stream),
                             "--metrics-out", str(victim_metrics)]),
            env=env, cwd=REPO_ROOT, stdout=subprocess.DEVNULL)
        killed_at = kill_at(args, victim, victim_stream, kill_events)
        print(f"[gate] victim killed at ~{killed_at} events "
              f"(rc={victim.returncode})")
        if victim_metrics.exists():
            raise GateError("victim wrote final metrics despite SIGKILL "
                            "— the kill landed after completion")

        checkpoints = sorted(ckpt_dir.glob("ckpt_*.ckpt"))
        if not checkpoints:
            raise GateError("victim wrote no checkpoints before dying")
        newest = checkpoints[-1]
        print(f"[gate] restoring from {newest.name}")

        # ---- 3. Restored run (to completion) ------------------------
        restored_metrics = workdir / "restored_metrics.json"
        restored_report = workdir / "restored_report.txt"
        restore_cmd = [sys.executable, "-m", "repro", "serve",
                       "--restore", str(newest),
                       "--step-events", str(args.step_events),
                       "--no-commands",
                       "--metrics-out", str(restored_metrics),
                       "--report-out", str(restored_report)]
        proc = subprocess.run(restore_cmd, env=env, cwd=REPO_ROOT,
                              stdout=subprocess.DEVNULL,
                              timeout=args.timeout)
        if proc.returncode != 0:
            raise GateError(f"restored run failed with "
                            f"rc={proc.returncode}")

        # ---- 4. Byte-identity comparison ----------------------------
        failures = []
        if canonical_bytes(ref_metrics) != canonical_bytes(
                restored_metrics):
            failures.append(
                f"stable metrics differ: {ref_metrics} vs "
                f"{restored_metrics}")
        if ref_report.read_bytes() != restored_report.read_bytes():
            failures.append(
                f"figure3 reports differ: {ref_report} vs "
                f"{restored_report}")
        if failures:
            for failure in failures:
                print(f"[gate] FAIL: {failure}", file=sys.stderr)
            return 1
        print("[gate] OK: restored run is byte-identical to the "
              "uninterrupted reference (stable metrics + report)")
        return 0
    except (GateError, subprocess.TimeoutExpired) as exc:
        print(f"[gate] ERROR: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
