#!/usr/bin/env python3
"""Gate CI on the fluid, routing, data-plane, and shard-scaling benches.

Reads freshly generated ``BENCH_fluid.json`` (written by
``benchmarks/test_microbench_fluid.py``), ``BENCH_routing.json``
(written by ``benchmarks/test_microbench_routing.py``),
``BENCH_dataplane.json`` (written by
``benchmarks/test_microbench_dataplane.py``), and ``BENCH_shard.json``
(written by ``benchmarks/test_microbench_shard.py``) and fails if any
optimized path's speedup over its reference implementation fell below
the floor, or if a fast path stopped being a fast path (steady epochs
reallocating, TE passes never hitting the candidate memo, the batch
engine silently falling back to per-packet processing, the sharded
coordinator losing its 1->8 region scaling).

Usage::

    python scripts/check_bench.py [--min-speedup 2.0] \
        [--min-routing-speedup 2.0] [--min-dataplane-speedup 4.0] \
        [--min-shard-scaling 3.0] [--max-shard-overhead 1.25] \
        [--newer-than .bench_marker] \
        [path/to/BENCH_fluid.json] \
        [--routing-bench path/to/BENCH_routing.json] \
        [--dataplane-bench path/to/BENCH_dataplane.json] \
        [--shard-bench path/to/BENCH_shard.json]

Exit codes: 0 all gates pass, 1 a speedup/telemetry gate failed, 2 a
required BENCH file is missing or stale (``--newer-than``) — i.e. the
benchmark never actually ran, and the committed repo-root defaults
must not be allowed to stand in for it.

The floors here are deliberately looser than the benchmarks' own
asserts: CI runners are noisy shared machines, and the gate exists to
catch real regressions, not scheduler jitter.  The data-plane gate
checks both levels of the bench: the structure kernels against their
``*_reference`` twins (floor 10x — the batch kernels are pure
dict/Counter folds and regress only when someone reintroduces a
per-packet Python loop) and the end-to-end engine pipeline (floor 4x,
target 10x).
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BENCH = REPO_ROOT / "BENCH_fluid.json"
#: Exit code for *operational* failures (a required BENCH file missing
#: or stale), as opposed to 1 for a genuine speedup regression.  The
#: distinction matters in CI: 2 means "the benchmark never ran", which
#: the committed repo-root defaults would otherwise mask by letting the
#: gate pass on stale checked-in data.
EXIT_STALE = 2
DEFAULT_ROUTING_BENCH = REPO_ROOT / "BENCH_routing.json"
DEFAULT_DATAPLANE_BENCH = REPO_ROOT / "BENCH_dataplane.json"
DEFAULT_SHARD_BENCH = REPO_ROOT / "BENCH_shard.json"
#: The structure-kernel floor is fixed, not a flag: ISSUE 6 acceptance
#: pins it at 10x and CI noise barely moves pure-Python fold timings.
DATAPLANE_STRUCTURE_FLOOR = 10.0


def freshness_error(path, marker):
    """Named hard failure when ``path`` was not (re)generated after the
    ``marker`` file was touched; None when it is fresh.

    The repo commits baseline BENCH_*.json files at the repo root — the
    same paths this script defaults to.  Without a freshness check, a
    CI pipeline whose benchmark step silently failed to run would
    *pass* the gate against the stale committed data.  CI touches a
    marker before running the benchmarks and passes it via
    ``--newer-than``; each required BENCH file must then be strictly
    newer than the marker.
    """
    marker_path = Path(marker)
    try:
        marker_mtime = marker_path.stat().st_mtime
    except FileNotFoundError:
        return (f"freshness marker {marker} does not exist - touch it "
                f"before running the benchmarks")
    bench_path = Path(path)
    try:
        bench_mtime = bench_path.stat().st_mtime
    except FileNotFoundError:
        return (f"required benchmark output {path} is missing - the "
                f"benchmark did not run")
    if bench_mtime <= marker_mtime:
        return (f"required benchmark output {path} is STALE (older than "
                f"marker {marker}) - the benchmark did not regenerate "
                f"it this run; refusing to gate on checked-in data")
    return None


def check(path, min_speedup):
    try:
        record = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return f"{path} not found - did the benchmark run?"
    except ValueError as exc:
        return f"{path} is not valid JSON: {exc}"

    speedup = record.get("speedup")
    if not isinstance(speedup, (int, float)):
        return f"{path} has no numeric 'speedup' field"
    if speedup < min_speedup:
        return (f"allocator speedup regressed: {speedup:.2f}x < "
                f"{min_speedup:.1f}x floor")

    telemetry = record.get("telemetry", {})
    passes = telemetry.get("fluid_allocation_passes_total")
    hits = telemetry.get("fluid_fastpath_hits_total")
    if passes is not None and passes != 1:
        return (f"steady-state epochs reallocated: "
                f"{passes} allocation passes (expected 1)")
    if hits is not None and hits < 1:
        return "dirty-flag fast path never hit during steady-state epochs"
    return None


def check_routing(path, min_speedup):
    try:
        record = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return f"{path} not found - did the routing benchmark run?"
    except ValueError as exc:
        return f"{path} is not valid JSON: {exc}"

    speedup = record.get("speedup")
    if not isinstance(speedup, (int, float)):
        return f"{path} has no numeric 'speedup' field"
    if speedup < min_speedup:
        return (f"routing-cache speedup regressed: {speedup:.2f}x < "
                f"{min_speedup:.1f}x floor")

    telemetry = record.get("telemetry", {})
    yen_hits = telemetry.get("routing_cache_hits_total:yen")
    if yen_hits is not None and yen_hits < 1:
        return ("candidate-path memo never hit during repeated TE "
                "passes - the yen cache layer is dead")
    return None


def check_dataplane(path, min_speedup):
    try:
        record = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return f"{path} not found - did the dataplane benchmark run?"
    except ValueError as exc:
        return f"{path} is not valid JSON: {exc}"

    structures = record.get("structures", {})
    composite = structures.get("composite_speedup")
    if not isinstance(composite, (int, float)):
        return f"{path} has no numeric structures.composite_speedup field"
    if composite < DATAPLANE_STRUCTURE_FLOOR:
        return (f"batch structure kernels regressed: {composite:.2f}x "
                f"composite < {DATAPLANE_STRUCTURE_FLOOR:.1f}x floor")

    pipeline = record.get("pipeline", {})
    speedup = pipeline.get("speedup")
    if not isinstance(speedup, (int, float)):
        return f"{path} has no numeric pipeline.speedup field"
    if speedup < min_speedup:
        return (f"batch pipeline speedup regressed: {speedup:.2f}x < "
                f"{min_speedup:.1f}x floor")

    telemetry = record.get("telemetry", {})
    batched = telemetry.get("dataplane_batch_packets_total")
    if batched is not None and batched < 1:
        return ("batch engine processed zero packets - coalescing is "
                "dead and the bench measured scalar vs scalar")
    fallback = telemetry.get("dataplane_batch_fallback_packets_total")
    if batched and fallback and fallback >= batched:
        return ("batch engine fell back to per-packet processing for "
                "every packet - no program took the batch path")
    return None


def check_shard(path, min_scaling, max_overhead):
    try:
        record = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return f"{path} not found - did the shard benchmark run?"
    except ValueError as exc:
        return f"{path} is not valid JSON: {exc}"

    scaling = record.get("scaling")
    if not isinstance(scaling, (int, float)):
        return f"{path} has no numeric 'scaling' field"
    if scaling < min_scaling:
        return (f"sharded 1->8 region scaling regressed: {scaling:.2f}x "
                f"< {min_scaling:.1f}x floor")

    overhead = record.get("workers1_overhead")
    if not isinstance(overhead, (int, float)):
        return f"{path} has no numeric 'workers1_overhead' field"
    if overhead > max_overhead:
        return (f"workers=1 sharded overhead regressed: {overhead:.2f}x "
                f"> {max_overhead:.2f}x ceiling - per-window state "
                f"serialization is back on the coordinator path")

    workers = record.get("workers", {})
    passes_8 = workers.get("8", {}).get("allocation_passes")
    if passes_8 is not None and passes_8 < 1:
        return ("8-region run made zero allocation passes - the bench "
                "measured coordinator overhead, not sharded allocation")
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", nargs="?", default=str(DEFAULT_BENCH),
                        help="path to BENCH_fluid.json")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="minimum acceptable allocator speedup "
                             "(default: 2.0)")
    parser.add_argument("--routing-bench",
                        default=str(DEFAULT_ROUTING_BENCH),
                        help="path to BENCH_routing.json")
    parser.add_argument("--min-routing-speedup", type=float, default=2.0,
                        help="minimum acceptable routing-cache speedup "
                             "(default: 2.0)")
    parser.add_argument("--dataplane-bench",
                        default=str(DEFAULT_DATAPLANE_BENCH),
                        help="path to BENCH_dataplane.json")
    parser.add_argument("--min-dataplane-speedup", type=float, default=4.0,
                        help="minimum acceptable batch-pipeline speedup "
                             "(default: 4.0; target 10.0)")
    parser.add_argument("--shard-bench",
                        default=str(DEFAULT_SHARD_BENCH),
                        help="path to BENCH_shard.json")
    parser.add_argument("--min-shard-scaling", type=float, default=3.0,
                        help="minimum acceptable sharded 1->8 region "
                             "scaling (default and CI floor: 3.0)")
    parser.add_argument("--max-shard-overhead", type=float, default=1.10,
                        help="maximum acceptable workers=1 sharded time "
                             "over single-engine time (default: 1.10; "
                             "CI ceiling 1.25)")
    parser.add_argument("--newer-than", metavar="MARKER", default=None,
                        help="require every BENCH file to be strictly "
                             "newer than this marker file (exit 2 when "
                             "one is missing or stale); CI touches the "
                             "marker before running the benchmarks")
    args = parser.parse_args(argv)

    if args.newer_than is not None:
        stale = False
        for bench_path in (args.bench, args.routing_bench,
                           args.dataplane_bench, args.shard_bench):
            error = freshness_error(bench_path, args.newer_than)
            if error:
                print(f"check_bench: STALE: {error}", file=sys.stderr)
                stale = True
        if stale:
            return EXIT_STALE

    failed = False
    error = check(args.bench, args.min_speedup)
    if error:
        print(f"check_bench: FAIL: {error}", file=sys.stderr)
        failed = True
    else:
        record = json.loads(Path(args.bench).read_text())
        print(f"check_bench: OK: allocator speedup {record['speedup']:.2f}x "
              f"(floor {args.min_speedup:.1f}x), steady-state update "
              f"{record.get('steady_state_update_ms', '?')} ms")

    error = check_routing(args.routing_bench, args.min_routing_speedup)
    if error:
        print(f"check_bench: FAIL: {error}", file=sys.stderr)
        failed = True
    else:
        record = json.loads(Path(args.routing_bench).read_text())
        print(f"check_bench: OK: routing speedup {record['speedup']:.2f}x "
              f"(floor {args.min_routing_speedup:.1f}x), cached TE loop "
              f"{record.get('cached_ms', '?')} ms")

    error = check_dataplane(args.dataplane_bench, args.min_dataplane_speedup)
    if error:
        print(f"check_bench: FAIL: {error}", file=sys.stderr)
        failed = True
    else:
        record = json.loads(Path(args.dataplane_bench).read_text())
        structures = record["structures"]
        pipeline = record["pipeline"]
        print(f"check_bench: OK: dataplane structures "
              f"{structures['composite_speedup']:.2f}x (floor "
              f"{DATAPLANE_STRUCTURE_FLOOR:.1f}x), pipeline "
              f"{pipeline['speedup']:.2f}x (floor "
              f"{args.min_dataplane_speedup:.1f}x), batch path "
              f"{pipeline.get('batch_pps', '?')} pps")

    error = check_shard(args.shard_bench, args.min_shard_scaling,
                        args.max_shard_overhead)
    if error:
        print(f"check_bench: FAIL: {error}", file=sys.stderr)
        failed = True
    else:
        record = json.loads(Path(args.shard_bench).read_text())
        print(f"check_bench: OK: shard scaling {record['scaling']:.2f}x "
              f"(floor {args.min_shard_scaling:.1f}x), workers=1 overhead "
              f"{record['workers1_overhead']:.2f}x (ceiling "
              f"{args.max_shard_overhead:.2f}x), speedup vs single "
              f"engine {record.get('speedup', '?')}x on "
              f"{record.get('cpu_count', '?')} cpu(s)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
