#!/usr/bin/env python3
"""Gate CI on the fluid-allocator benchmark.

Reads a freshly generated ``BENCH_fluid.json`` (written by
``benchmarks/test_microbench_fluid.py``) and fails if the optimized
allocator's speedup over the reference implementation fell below the
floor, or if the steady-state fast path stopped being a fast path.

Usage::

    python scripts/check_bench.py [--min-speedup 2.0] [path/to/BENCH_fluid.json]

The floor here (2.0x) is deliberately looser than the benchmark's own
assert (3.0x): CI runners are noisy shared machines, and the gate exists
to catch real regressions, not scheduler jitter.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BENCH = REPO_ROOT / "BENCH_fluid.json"


def check(path, min_speedup):
    try:
        record = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return f"{path} not found - did the benchmark run?"
    except ValueError as exc:
        return f"{path} is not valid JSON: {exc}"

    speedup = record.get("speedup")
    if not isinstance(speedup, (int, float)):
        return f"{path} has no numeric 'speedup' field"
    if speedup < min_speedup:
        return (f"allocator speedup regressed: {speedup:.2f}x < "
                f"{min_speedup:.1f}x floor")

    telemetry = record.get("telemetry", {})
    passes = telemetry.get("fluid_allocation_passes_total")
    hits = telemetry.get("fluid_fastpath_hits_total")
    if passes is not None and passes != 1:
        return (f"steady-state epochs reallocated: "
                f"{passes} allocation passes (expected 1)")
    if hits is not None and hits < 1:
        return "dirty-flag fast path never hit during steady-state epochs"
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", nargs="?", default=str(DEFAULT_BENCH),
                        help="path to BENCH_fluid.json")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="minimum acceptable speedup (default: 2.0)")
    args = parser.parse_args(argv)

    error = check(args.bench, args.min_speedup)
    if error:
        print(f"check_bench: FAIL: {error}", file=sys.stderr)
        return 1
    record = json.loads(Path(args.bench).read_text())
    print(f"check_bench: OK: speedup {record['speedup']:.2f}x "
          f"(floor {args.min_speedup:.1f}x), steady-state update "
          f"{record.get('steady_state_update_ms', '?')} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
