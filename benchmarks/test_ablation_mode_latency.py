"""Ablation — mode-change latency: data plane vs. control plane.

Section 2.1's "per-packet dynamicity" claim: responding in the data
plane avoids the round trip to a software controller, and responding
with distributed probes avoids the minutes-scale TE loop entirely.  This
bench measures the in-data-plane propagation latency on two topologies
and contrasts it with the controller-loop and TE-period alternatives.
"""

import pytest

from repro.core import ModeEventBus, ModeRegistry, ModeSpec, \
    install_mode_agents
from repro.netsim import Simulator, abilene_like, fat_tree, figure2_topology

#: A software controller's reaction: detection report + rule pushes, at
#: least one network RTT plus processing ([43]-style SDN defenses).
CONTROLLER_LOOP_S = 0.25
#: Centralized TE reconfiguration period (Figure 3 baseline).
TE_PERIOD_S = 30.0


def propagation_latency(build_topo, initiator):
    """Time for a mode change to reach every switch, fully in data plane."""
    sim = Simulator(seed=3)
    topo = build_topo(sim)
    registry = ModeRegistry()
    registry.register(ModeSpec.of("mitigate", "lfa", ()))
    bus = ModeEventBus()
    agents = install_mode_agents(topo, registry, bus=bus)
    start = 1.0
    sim.schedule(start, agents[initiator].initiate, "lfa", "mitigate")
    sim.run(until=5.0)
    activated = {e.switch for e in bus.events if e.new_mode == "mitigate"}
    assert activated == set(topo.switch_names)
    return max(e.time for e in bus.events) - start


CASES = {
    "figure2": (lambda sim: figure2_topology(sim).topo, "s1"),
    "abilene": (abilene_like, "sw_seattle"),
    "fattree4": (lambda sim: fat_tree(sim, k=4), "edge0_0"),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_data_plane_mode_change_beats_controller(benchmark, name):
    build, initiator = CASES[name]
    latency = benchmark.pedantic(propagation_latency,
                                 args=(build, initiator),
                                 rounds=1, iterations=1)
    # RTT-timescale: orders of magnitude under the software loop.
    assert latency < CONTROLLER_LOOP_S / 5
    assert latency < TE_PERIOD_S / 1000
    benchmark.extra_info["propagation_ms"] = round(latency * 1e3, 3)
    benchmark.extra_info["controller_loop_ms"] = CONTROLLER_LOOP_S * 1e3
    benchmark.extra_info["speedup_vs_controller"] = \
        round(CONTROLLER_LOOP_S / latency, 1)
    print()
    print(f"{name}: data-plane mode change {latency * 1e3:.2f} ms vs "
          f"controller loop {CONTROLLER_LOOP_S * 1e3:.0f} ms vs TE period "
          f"{TE_PERIOD_S:.0f} s "
          f"({CONTROLLER_LOOP_S / latency:.0f}x / "
          f"{TE_PERIOD_S / latency:.0f}x faster)")
