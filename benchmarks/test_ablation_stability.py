"""Ablation — mode-flapping under pulsing attacks, guard on vs. off (§6).

A pulsing attacker ([1, 54]) turns its flood on and off to make the
multimode data plane thrash: every burst triggers mitigation, every gap
triggers the return to default.  The stability guard's dwell/rate-limit/
cool-down machinery caps that thrash.  The bench counts mode transitions
over a fixed pulse train with and without the guard.
"""


from repro.attacks import PulsingAttacker
from repro.boosters import LfaDetectorBooster, build_figure2_defense
from repro.core import StabilityGuard
from repro.netsim import (FlowSet, FluidNetwork, GBPS, Simulator,
                          figure2_topology, install_flow_route, make_flow)

DURATION_S = 40.0


def run_pulsing(guard_factory, seed=31):
    sim = Simulator(seed=seed)
    net = figure2_topology(sim, critical_capacity=10 * GBPS,
                           detour_capacity=2 * GBPS)
    flows = FlowSet()
    for index, client in enumerate(net.client_hosts):
        flows.add(make_flow(client, net.victim, 1.5 * GBPS,
                            sport=8800 + index))
    fluid = FluidNetwork(net.topo, flows)
    detector = LfaDetectorBooster(fluid=fluid, clear_sustain_s=0.3,
                                  persist_s=0.2)
    defense = build_figure2_defense(
        net, fluid, detector=detector,
        stability_guard_factory=guard_factory)
    deployment = defense.setup(flows)
    for flow in flows:
        install_flow_route(net.topo, flow.path)
    fluid.start()

    attacker = PulsingAttacker(
        net.topo, fluid, bots=net.bot_hosts, decoys=net.decoy_servers,
        on_duration_s=1.0, off_duration_s=2.0,
        connections_per_bot=200, per_connection_bps=10e6)
    attacker.start(delay_s=2.0)
    sim.run(until=DURATION_S)

    transitions = len([e for e in deployment.bus.events
                       if e.switch == "sL"])
    agents = deployment.mode_agents.values()
    return {
        "transitions_per_switch": transitions,
        "pulses": attacker.pulses,
        "locks": sum(a.guard.stats.locks_triggered for a in agents
                     if a.guard is not None),
        "suppressed": sum(a.changes_suppressed for a in agents),
    }


def test_unguarded_data_plane_flaps(benchmark):
    result = benchmark.pedantic(
        run_pulsing, args=(lambda _name: None,), rounds=1, iterations=1)
    # Every pulse cycle costs the network a mode round trip.
    assert result["transitions_per_switch"] >= 6
    benchmark.extra_info.update(result)
    print()
    print(f"no guard: {result['transitions_per_switch']} transitions "
          f"over {result['pulses']} pulses")


def test_guard_caps_flapping(benchmark):
    guarded = benchmark.pedantic(
        run_pulsing,
        args=(lambda _name: StabilityGuard(
            min_dwell_s=0.5, max_changes=3, window_s=10.0,
            cooldown_s=15.0),),
        rounds=1, iterations=1)
    unguarded = run_pulsing(lambda _name: None)
    assert guarded["transitions_per_switch"] < \
        unguarded["transitions_per_switch"]
    assert guarded["locks"] >= 1
    benchmark.extra_info.update(
        {f"guarded_{k}": v for k, v in guarded.items()})
    print()
    print(f"guard on: {guarded['transitions_per_switch']} transitions "
          f"(locks: {guarded['locks']}) vs "
          f"{unguarded['transitions_per_switch']} without")
