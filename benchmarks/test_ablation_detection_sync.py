"""Ablation — distributed detection: accuracy/latency vs. sync overhead.

§3.3: network-wide attacks (global rate limits [62], network-wide heavy
hitters [34]) need detectors to synchronize views periodically, "while
minimizing the amount of synchronization".  This bench sweeps the sync
period: shorter periods detect a distributed violation faster but cost
more probe bytes; without sync the violation is *never* detected.
"""


from repro.core import DetectorSyncAgent
from repro.netsim import (Simulator, figure2_topology, install_host_routes,
                          install_switch_routes)

LIMIT = 10.0
HORIZON_S = 5.0
#: Deliberately misaligned with every sync period in the sweep, so the
#: violation falls *between* digests (the realistic worst case; aligned
#: starts would make every period look equally fast).
VIOLATION_START_S = 1.013


def run_case(sync_period_s, seed=17):
    """Two detectors each see 60% of the limit from t=1; measure when
    the merged view crosses the limit at the first detector."""
    sim = Simulator(seed=seed)
    net = figure2_topology(sim)
    install_host_routes(net.topo)
    install_switch_routes(net.topo)

    def local_rate():
        return ({"tenant": 0.6 * LIMIT}
                if sim.now >= VIOLATION_START_S else {})

    agents = {}
    for name in ("sL", "sR"):
        agent = DetectorSyncAgent(
            source=local_rate,
            peers=[p for p in ("sL", "sR") if p != name],
            sync_period_s=sync_period_s, name=f"sync.{name}")
        net.topo.switch(name).install_program(agent)
        agents[name] = agent

    detected = {"at": None}

    def poll():
        if detected["at"] is None and \
                agents["sL"].global_exceeders(LIMIT):
            detected["at"] = sim.now

    sim.every(0.01, poll)
    sim.run(until=HORIZON_S)
    overhead = sum(a.stats.bytes_sent for a in agents.values())
    latency = (detected["at"] - VIOLATION_START_S
               if detected["at"] is not None else None)
    return latency, overhead


def test_sync_period_tradeoff(benchmark):
    def sweep():
        return {period: run_case(period)
                for period in (0.05, 0.1, 0.5, 1.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'sync period':>12}{'detect latency':>16}{'probe bytes':>13}")
    latencies, overheads = [], []
    for period in sorted(results):
        latency, overhead = results[period]
        assert latency is not None, f"no detection at period {period}"
        print(f"{period:>12.2f}{latency:>16.3f}{overhead:>13d}")
        latencies.append(latency)
        overheads.append(overhead)
    # Faster sync: lower latency, higher overhead.
    assert latencies == sorted(latencies)
    assert overheads == sorted(overheads, reverse=True)
    # Even the slowest sync beats a 30 s TE loop by an order of magnitude.
    assert max(latencies) < 3.0
    benchmark.extra_info["latencies"] = latencies
    benchmark.extra_info["overhead_bytes"] = overheads


def test_no_sync_never_detects(benchmark):
    """Local views alone stay below the limit forever — the §3.3
    motivation for cross-detector synchronization."""

    def run_without_sync():
        sim = Simulator(seed=19)
        net = figure2_topology(sim)
        install_host_routes(net.topo)
        install_switch_routes(net.topo)
        agent = DetectorSyncAgent(
            source=lambda: {"tenant": 0.6 * LIMIT}, peers=[],
            sync_period_s=0.1, name="sync.solo")
        net.topo.switch("sL").install_program(agent)
        sim.run(until=HORIZON_S)
        return agent.global_exceeders(LIMIT)

    exceeders = benchmark.pedantic(run_without_sync, rounds=1,
                                   iterations=1)
    assert exceeders == {}
