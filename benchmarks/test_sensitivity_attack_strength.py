"""Sensitivity — attack strength sweep (where the crossover falls).

The Figure 3 gap should grow with attack strength: a weak flood barely
hurts the baseline (TE absorbs it), while a strong one collapses it; the
FastFlex line stays flat throughout.  This sweep varies the per-bot
connection count and records both systems' means.
"""


from repro.experiments.figure3 import (Figure3Config, run_baseline,
                                       run_fastflex)

#: connections per bot: 6 bots x conns x 10 Mbps of offered attack load.
STRENGTHS = {
    "weak": 50,       # 3 Gbps — below the critical-link capacity
    "paper": 200,     # 12 Gbps — the Figure 3 operating point
    "strong": 400,    # 24 Gbps
}


def run_pair(connections_per_bot):
    config = Figure3Config(duration_s=40.0,
                           connections_per_bot=connections_per_bot)
    baseline = run_baseline(config)
    fastflex = run_fastflex(config)
    return (baseline.mean_during_attack(config),
            fastflex.mean_during_attack(config))


def test_strength_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {name: run_pair(conns)
                 for name, conns in STRENGTHS.items()},
        rounds=1, iterations=1)
    print()
    print(f"{'attack':>8}{'offered':>10}{'baseline':>10}{'fastflex':>10}")
    for name, conns in STRENGTHS.items():
        base, fast = results[name]
        offered = 6 * conns * 10e6 / 1e9
        print(f"{name:>8}{offered:>9.1f}G{base:>10.1%}{fast:>10.1%}")

    weak_base, weak_fast = results["weak"]
    paper_base, paper_fast = results["paper"]
    strong_base, strong_fast = results["strong"]

    # FastFlex flat across strengths.
    assert min(weak_fast, paper_fast, strong_fast) > 0.9
    # Baseline damage grows with strength (weak attack under capacity
    # barely registers; strong attack collapses it).
    assert weak_base > 0.9, "a sub-capacity flood should not hurt"
    assert paper_base < 0.75
    assert strong_base <= paper_base + 0.05
    benchmark.extra_info.update(
        {name: {"baseline": round(b, 3), "fastflex": round(f, 3)}
         for name, (b, f) in results.items()})
