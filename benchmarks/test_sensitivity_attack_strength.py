"""Sensitivity — attack strength sweep (where the crossover falls).

The Figure 3 gap should grow with attack strength: a weak flood barely
hurts the baseline (TE absorbs it), while a strong one collapses it; the
FastFlex line stays flat throughout.  The strength axis runs as a grid
through the sweep runner (one group per per-bot connection count), so
the numbers come with checkpoints and per-group aggregation for free.
"""


from repro.sweep import SweepSpec, params_slug, run_sweep

#: connections per bot: 6 bots x conns x 10 Mbps of offered attack load.
STRENGTHS = {
    "weak": 50,       # 3 Gbps — below the critical-link capacity
    "paper": 200,     # 12 Gbps — the Figure 3 operating point
    "strong": 400,    # 24 Gbps
}


def _group_key(conns):
    return params_slug({"connections_per_bot": conns, "duration_s": 40.0})


def test_strength_sweep(benchmark, tmp_path):
    def sweep():
        return run_sweep(
            SweepSpec(experiment="figure3", seeds=[7],
                      base_params={"duration_s": 40.0},
                      grid={"connections_per_bot":
                            list(STRENGTHS.values())},
                      raw_seeds=True),
            out_dir=tmp_path / "strength")

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert result.ok, result.errors
    assert len(result.aggregates) == len(STRENGTHS)

    means = {}
    print()
    print(f"{'attack':>8}{'offered':>10}{'baseline':>10}{'fastflex':>10}")
    for name, conns in STRENGTHS.items():
        scalars = result.aggregates[_group_key(conns)]["scalars"]
        base = scalars["baseline_mean_during_attack"]["mean"]
        fast = scalars["fastflex_mean_during_attack"]["mean"]
        means[name] = (base, fast)
        offered = 6 * conns * 10e6 / 1e9
        print(f"{name:>8}{offered:>9.1f}G{base:>10.1%}{fast:>10.1%}")

    weak_base, weak_fast = means["weak"]
    paper_base, paper_fast = means["paper"]
    strong_base, strong_fast = means["strong"]

    # FastFlex flat across strengths.
    assert min(weak_fast, paper_fast, strong_fast) > 0.9
    # Baseline damage grows with strength (weak attack under capacity
    # barely registers; strong attack collapses it).
    assert weak_base > 0.9, "a sub-capacity flood should not hurt"
    assert paper_base < 0.75
    assert strong_base <= paper_base + 0.05
    benchmark.extra_info.update(
        {name: {"baseline": round(b, 3), "fastflex": round(f, 3)}
         for name, (b, f) in means.items()})
