"""Figure 2 — the multimode data plane sequence, panel by panel.

Regenerates the figure's four states as measurable events: default-off
gating (a), probe-carried activation (b), selective mitigation (c), and
robustness to rolling (d) — plus the caption's mixed-vector co-existing
modes.
"""

import pytest

from repro.experiments.figure2 import run_mixed_vector, run_mode_sequence


@pytest.fixture(scope="module")
def sequence():
    return run_mode_sequence(duration_s=25.0)


def test_mode_sequence(benchmark):
    result = benchmark.pedantic(run_mode_sequence,
                                kwargs={"duration_s": 25.0},
                                rounds=1, iterations=1)
    # (a) default mode: only detectors on.
    gating = result.default_mode_boosters["sL"]
    assert gating == {"lfa_detector": True, "reroute": False,
                      "dropper": False, "obfuscation": False}
    # (b) millisecond propagation.
    assert len(result.activation_times) == 8
    assert result.propagation_delay_s < 0.05
    # (c) selective mitigation.
    assert result.suspicious_rerouted == result.suspicious_total
    assert result.normal_pinned == result.normal_total
    assert result.forged_traceroute_replies > 0
    assert result.policed_flows > 0
    # (d) rolling defeated.
    assert result.attacker_rolls == 0
    assert result.attacker_perceived_success

    benchmark.extra_info.update({
        "propagation_ms": round(result.propagation_delay_s * 1e3, 2),
        "suspicious_rerouted": result.suspicious_rerouted,
        "normal_pinned": result.normal_pinned,
        "forged_replies": result.forged_traceroute_replies,
    })
    print()
    print(f"Figure 2: detection at t={result.detection_time:.2f}s; "
          f"all 8 switches in mitigation within "
          f"{result.propagation_delay_s * 1e3:.1f} ms; "
          f"{result.suspicious_rerouted}/{result.suspicious_total} "
          f"suspicious rerouted, {result.normal_pinned}/"
          f"{result.normal_total} normal pinned; attacker rolls: "
          f"{result.attacker_rolls}")


def test_mixed_vector_coexisting_modes(benchmark):
    result = benchmark.pedantic(run_mixed_vector, rounds=1, iterations=1)
    assert result.lfa_region and result.ddos_region
    assert not (result.lfa_region & result.ddos_region & {"sw_seattle",
                                                          "sw_washington"})
    benchmark.extra_info["lfa_region"] = sorted(result.lfa_region)
    benchmark.extra_info["ddos_region"] = sorted(result.ddos_region)
    print()
    print(f"mixed vectors: LFA mode in {sorted(result.lfa_region)}; "
          f"DDoS mode in {sorted(result.ddos_region)}")
