"""Benchmark-suite configuration.

Every benchmark prints the rows/series the paper reports (visible with
``pytest benchmarks/ --benchmark-only -s``) and stores the same numbers
in ``benchmark.extra_info`` for machine consumption.

At session end this conftest writes ``BENCH_summary.json`` at the repo
root: one entry per benchmark that ran (name, timing stats, extra_info)
plus the contents of any standalone ``BENCH_*.json`` files the suites
wrote themselves, the aggregates of any sweep-runner outputs
(``BENCH_sweep_*.json``, folded under a dedicated ``sweeps`` key), and
a snapshot of the telemetry registry accumulated over the session.  CI
and cross-PR comparisons read this one file instead of scraping pytest
output.
"""

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_summary.json"


def _benchmark_entries(config):
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return []
    entries = []
    for bench in session.benchmarks:
        stats = {}
        if bench.stats is not None:
            for field in ("min", "max", "mean", "median", "stddev",
                          "rounds", "iterations"):
                value = getattr(bench.stats, field, None)
                if value is not None:
                    stats[field] = value
        entries.append({
            "name": bench.name,
            "group": bench.group,
            "fullname": bench.fullname,
            "stats": stats,
            "extra_info": dict(bench.extra_info),
        })
    return entries


def _standalone_records():
    records = {}
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        if path == SUMMARY_PATH or path.name.startswith("BENCH_sweep_"):
            continue
        try:
            records[path.name] = json.loads(path.read_text())
        except (OSError, ValueError):
            records[path.name] = {"error": f"unreadable: {path.name}"}
    return records


def _sweep_records():
    """Sweep-runner aggregates (multi-seed figure evidence), keyed by
    sweep name: ``BENCH_sweep_figure3.json`` -> ``figure3``."""
    records = {}
    for path in sorted(REPO_ROOT.glob("BENCH_sweep_*.json")):
        name = path.stem[len("BENCH_sweep_"):]
        try:
            records[name] = json.loads(path.read_text())
        except (OSError, ValueError):
            records[name] = {"error": f"unreadable: {path.name}"}
    return records


def _telemetry_snapshot():
    try:
        from repro import telemetry
    except ImportError:
        return {}
    return telemetry.metrics().snapshot()


def pytest_sessionfinish(session, exitstatus):
    config = session.config
    benchmarks = _benchmark_entries(config)
    if not benchmarks and not any(REPO_ROOT.glob("BENCH_*.json")):
        return  # collection-only / empty runs: nothing to summarize
    summary = {
        "exitstatus": int(exitstatus),
        "benchmarks": benchmarks,
        "standalone": _standalone_records(),
        "sweeps": _sweep_records(),
        "telemetry": _telemetry_snapshot(),
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True,
                                       default=str) + "\n")
    reporter = config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line(
            f"BENCH_summary: {len(benchmarks)} benchmark(s), "
            f"{len(summary['standalone'])} standalone file(s), "
            f"{len(summary['sweeps'])} sweep(s) -> {SUMMARY_PATH.name}")
