"""Benchmark-suite configuration.

Every benchmark prints the rows/series the paper reports (visible with
``pytest benchmarks/ --benchmark-only -s``) and stores the same numbers
in ``benchmark.extra_info`` for machine consumption.
"""
