"""Ablation — incremental deployment: FastFlex among legacy switches.

§2: programmable elements enter/exit defense modes while legacy elements
stay in the default mode.  This sweep converts a growing fraction of an
Abilene-like WAN to legacy fixed-function switches and measures what
survives: mode-change propagation (probes tunnel through legacy hops)
and detector path coverage (paths crossing only legacy switches cannot
be watched).
"""


from repro.core import (ModeEventBus, ModeRegistry, ModeSpec,
                        ProgramAnalyzer, Scheduler, greedy_min_max_te,
                        install_mode_agents)
from repro.netsim import (GBPS, Simulator, Topology, install_host_routes,
                          install_switch_routes, make_flow)

#: Abilene edges, duplicated here so the bench can rebuild the topology
#: with selected switches downgraded to legacy.
from repro.netsim.topology import _ABILENE_EDGES


def build_wan(sim, legacy: set):
    topo = Topology(sim, name="abilene_partial")
    cities = sorted({c for edge in _ABILENE_EDGES for c in edge})
    for city in cities:
        topo.add_switch(f"sw_{city}",
                        programmable=f"sw_{city}" not in legacy)
    for a, b in _ABILENE_EDGES:
        topo.add_duplex_link(f"sw_{a}", f"sw_{b}", 10 * GBPS, 0.005)
    for city in cities:
        topo.attach_host(f"{city}0", f"sw_{city}")
    install_host_routes(topo)
    install_switch_routes(topo)
    return topo


def pick_legacy(fraction, seed=5):
    import random
    cities = sorted({c for edge in _ABILENE_EDGES for c in edge})
    rng = random.Random(seed)
    count = int(len(cities) * fraction)
    return {f"sw_{c}" for c in rng.sample(cities, count)}


def propagation_case(legacy_fraction):
    sim = Simulator(seed=2)
    legacy = pick_legacy(legacy_fraction)
    # Keep the initiator programmable.
    legacy.discard("sw_seattle")
    topo = build_wan(sim, legacy)
    registry = ModeRegistry()
    registry.register(ModeSpec.of("mitigate", "lfa", ()))
    bus = ModeEventBus()
    agents = install_mode_agents(topo, registry, bus=bus)
    start = 1.0
    sim.schedule(start, agents["sw_seattle"].initiate, "lfa", "mitigate")
    sim.run(until=3.0)
    activated = {e.switch for e in bus.events if e.new_mode == "mitigate"}
    reached_all = activated == set(topo.programmable_switch_names)
    latency = (max(e.time for e in bus.events) - start
               if bus.events else None)
    return reached_all, latency, len(agents)


def coverage_case(legacy_fraction):
    from tests.core.test_scheduler import tiny_booster
    sim = Simulator(seed=2)
    topo = build_wan(sim, pick_legacy(legacy_fraction))
    hosts = topo.host_names
    flows = [make_flow(hosts[i], hosts[(i + 4) % len(hosts)], GBPS,
                       sport=i) for i in range(8)
             if hosts[i] != hosts[(i + 4) % len(hosts)]]
    te = greedy_min_max_te(topo, flows)
    merged = ProgramAnalyzer().merge([tiny_booster()])
    placement = Scheduler().place(
        merged, topo, [te.paths[f.flow_id] for f in flows])
    return placement.metrics.path_coverage


def test_mode_probes_tunnel_through_legacy(benchmark):
    def sweep():
        return {fraction: propagation_case(fraction)
                for fraction in (0.0, 0.3, 0.5)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'legacy':>8}{'agents':>8}{'reached':>9}{'latency ms':>12}")
    for fraction, (reached, latency, n_agents) in sorted(results.items()):
        print(f"{fraction:>8.0%}{n_agents:>8}{str(reached):>9}"
              f"{latency * 1e3:>12.1f}")
        # Every programmable switch still hears the mode change, at
        # millisecond timescale, regardless of legacy hops in between.
        assert reached
        assert latency < 0.1
    benchmark.extra_info["latencies_ms"] = {
        str(f): round(lat * 1e3, 2)
        for f, (_, lat, _) in results.items()}


def test_detector_coverage_degrades_gracefully(benchmark):
    def sweep():
        return {fraction: coverage_case(fraction)
                for fraction in (0.0, 0.3, 0.6)}

    coverages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for fraction, coverage in sorted(coverages.items()):
        print(f"legacy {fraction:.0%}: detector path coverage "
              f"{coverage:.0%}")
    assert coverages[0.0] == 1.0
    # Coverage is monotone non-increasing in the legacy fraction.
    ordered = [coverages[f] for f in sorted(coverages)]
    assert ordered == sorted(ordered, reverse=True)
