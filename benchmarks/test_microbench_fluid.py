"""Microbenchmark — the fluid allocator hot path (PR trajectory bench).

Times one optimized :func:`max_min_allocate` pass against the kept
:func:`max_min_allocate_reference` on a 50-switch / 500-flow scenario
(the scale the Figure 1 placement benches stress), plus the cost of a
steady-state ``FluidNetwork.update`` epoch served by the dirty-flag fast
path.  Results are printed and written to ``BENCH_fluid.json`` at the
repo root so the numbers are comparable across PRs.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_microbench_fluid.py -s``.
"""

import json
import random
import statistics
import time
from pathlib import Path as FsPath

from repro import telemetry
from repro.netsim import (FlowSet, FluidNetwork, Simulator, make_flow,
                          max_min_allocate, max_min_allocate_reference,
                          random_topology, shortest_path)

N_SWITCHES = 50
N_HOSTS = 60
N_FLOWS = 500
REPEATS = 5
BENCH_PATH = FsPath(__file__).resolve().parent.parent / "BENCH_fluid.json"


def build_scenario(seed=42):
    sim = Simulator(seed=seed)
    topo = random_topology(sim, N_SWITCHES, N_HOSTS, extra_edges=30,
                           seed=seed)
    rng = random.Random(seed)
    hosts = topo.host_names
    flows = []
    for index in range(N_FLOWS):
        src, dst = rng.sample(hosts, 2)
        flow = make_flow(src, dst, rng.uniform(1e6, 5e9),
                         weight=rng.choice([1.0, 3.0, 50.0]),
                         elastic=rng.random() > 0.15,
                         sport=1024 + index)
        flow.set_path(shortest_path(topo, src, dst))
        flows.append(flow)
    return sim, topo, flows


def median_ms(fn, repeats=REPEATS):
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append((time.perf_counter() - start) * 1e3)
    return statistics.median(timings)


# Registry counters whose per-benchmark deltas go into BENCH_fluid.json.
# The registry is process-wide, so absolute values would aggregate over
# the whole pytest session; deltas isolate this benchmark's work.
TELEMETRY_COUNTERS = (
    "fluid_updates_total",
    "fluid_allocation_passes_total",
    "fluid_fastpath_hits_total",
    "fluid_fastpath_misses_total",
    "fluid_freeze_rounds_total",
    "fluid_stall_freezes_total",
)


def telemetry_counters():
    registry = telemetry.metrics()
    return {name: (registry.get(name).value if name in registry else 0.0)
            for name in TELEMETRY_COUNTERS}


def test_fluid_allocator_speedup():
    sim, topo, flows = build_scenario()

    optimized_ms = median_ms(lambda: max_min_allocate(topo, flows))
    reference_ms = median_ms(lambda: max_min_allocate_reference(topo, flows))
    speedup = reference_ms / optimized_ms

    # Steady-state epoch cost: after the first pass, updates with no
    # flow/topology changes reuse the allocation (smoothing only).
    flow_set = FlowSet()
    flow_set.add_all(flows)
    fluid = FluidNetwork(topo, flow_set, update_interval=0.01)
    counters_before = telemetry_counters()
    fluid.update()  # the one real allocation pass
    steady_ms = median_ms(fluid.update, repeats=20)
    assert fluid.allocation_passes == 1, "steady epochs must not reallocate"
    counters_after = telemetry_counters()
    deltas = {name: counters_after[name] - counters_before[name]
              for name in TELEMETRY_COUNTERS}
    assert deltas["fluid_allocation_passes_total"] == 1
    assert deltas["fluid_fastpath_hits_total"] == 20

    record = {
        "scenario": {"switches": N_SWITCHES, "hosts": N_HOSTS,
                     "flows": N_FLOWS, "repeats": REPEATS},
        "optimized_ms": round(optimized_ms, 3),
        "reference_ms": round(reference_ms, 3),
        "speedup": round(speedup, 2),
        "steady_state_update_ms": round(steady_ms, 3),
        "telemetry": deltas,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_fluid: optimized {optimized_ms:.1f} ms, "
          f"reference {reference_ms:.1f} ms, speedup {speedup:.1f}x, "
          f"steady-state update {steady_ms:.2f} ms -> {BENCH_PATH.name}")

    assert speedup >= 3.0, (
        f"incremental allocator regressed: only {speedup:.2f}x over "
        f"the reference on {N_SWITCHES} switches / {N_FLOWS} flows")
