"""Figure 1c — the scheduler maps the merged graph onto the network.

Reports the placement quality metrics the figure depicts: detector
coverage (pervasive distribution), mitigation proximity, feasibility
under the multi-dimensional resource constraints, and the min-max TE
objective for the default mode.
"""

import pytest

from repro.experiments.figure1 import run_placement


@pytest.mark.parametrize("topology", ["figure2", "abilene"])
def test_placement(benchmark, topology):
    summary = benchmark.pedantic(run_placement, args=(topology,),
                                 rounds=1, iterations=1)
    assert summary.feasible, summary.placement.infeasibility_reasons
    assert summary.path_coverage == 1.0
    assert summary.te_max_utilization <= 1.0
    metrics = summary.placement.metrics
    benchmark.extra_info.update({
        "detector_switches": summary.detector_switches,
        "path_coverage": summary.path_coverage,
        "te_max_utilization": round(summary.te_max_utilization, 3),
        "mitigation_colocated": metrics.mitigation_colocated,
        "mitigation_downstream": metrics.mitigation_downstream,
    })
    print()
    print(f"Figure 1c placement on {topology}: "
          f"{summary.detector_switches} detector switches, "
          f"coverage {summary.path_coverage:.0%}, "
          f"TE max util {summary.te_max_utilization:.2f}, "
          f"mitigation co-located {metrics.mitigation_colocated} / "
          f"downstream {metrics.mitigation_downstream} / "
          f"detoured {metrics.mitigation_detoured}")


def test_pervasive_vs_minimal_cover(benchmark):
    """The §3.2 trade: pervasive detection vs. minimal path cover."""

    def both():
        return (run_placement("abilene", pervasive=True),
                run_placement("abilene", pervasive=False))

    pervasive, minimal = benchmark.pedantic(both, rounds=1, iterations=1)
    assert pervasive.detector_switches >= minimal.detector_switches
    assert minimal.path_coverage == 1.0
    benchmark.extra_info["pervasive_detectors"] = \
        pervasive.detector_switches
    benchmark.extra_info["minimal_detectors"] = minimal.detector_switches
