"""Ablation — PPM clustering: heavy edges stay co-located (§3.1).

"Ideally, we should identify clusters of PPMs, where intra-cluster edges
are dense and have heavy weights and inter-cluster edges have opposite
properties."  The cut weight of a partition is the number of state bits
packets must carry between switches when the partition's groups land on
different hardware.  This bench compares the analyzer's weight-threshold
clustering against naive splits on the real booster catalog.
"""

import random


from repro.experiments.figure1 import booster_suite, run_merge


def catalog_graph():
    merged, _ = run_merge()
    return merged.merged


def test_cluster_cut_beats_random_splits(benchmark):
    graph = benchmark.pedantic(catalog_graph, rounds=1, iterations=1)
    clusters = graph.clusters(weight_threshold=16)
    cluster_cut = graph.cut_weight(clusters)

    # Random balanced 2-way splits for comparison.
    names = [p.qualified_name for p in graph.ppms()]
    rng = random.Random(7)
    random_cuts = []
    for _ in range(50):
        shuffled = list(names)
        rng.shuffle(shuffled)
        half = len(shuffled) // 2
        random_cuts.append(graph.cut_weight(
            [set(shuffled[:half]), set(shuffled[half:])]))
    mean_random = sum(random_cuts) / len(random_cuts)

    print()
    print(f"clustering cut weight: {cluster_cut:.0f} bits/packet vs "
          f"random split mean {mean_random:.0f} "
          f"(min {min(random_cuts):.0f})")
    assert cluster_cut < mean_random
    benchmark.extra_info["cluster_cut"] = cluster_cut
    benchmark.extra_info["random_mean_cut"] = round(mean_random, 1)


def test_threshold_trades_cluster_size_for_cut(benchmark):
    graph = benchmark.pedantic(catalog_graph, rounds=1, iterations=1)
    rows = []
    for threshold in (1, 8, 16, 32, 64):
        clusters = graph.clusters(weight_threshold=threshold)
        cut = graph.cut_weight(clusters)
        biggest = max(len(c) for c in clusters)
        rows.append((threshold, len(clusters), biggest, cut))
    print()
    print(f"{'threshold':>10}{'clusters':>10}{'largest':>9}{'cut bits':>10}")
    for threshold, n, biggest, cut in rows:
        print(f"{threshold:>10}{n:>10}{biggest:>9}{cut:>10.0f}")
    # Raising the threshold fragments clusters and exposes more state to
    # carrying: cut weight is monotone non-decreasing in the threshold,
    # cluster count non-decreasing too.
    cuts = [cut for *_rest, cut in rows]
    counts = [n for _, n, _, _ in rows]
    assert cuts == sorted(cuts)
    assert counts == sorted(counts)


def test_per_booster_clusters_are_coherent(benchmark):
    """Within one booster, the heavy parser->state->logic chain should
    cluster together at moderate thresholds."""

    def per_booster():
        results = {}
        for booster in booster_suite():
            graph = booster.dataflow()
            clusters = graph.clusters(weight_threshold=8)
            results[booster.name] = (len(graph), len(clusters))
        return results

    results = benchmark.pedantic(per_booster, rounds=1, iterations=1)
    for name, (n_ppms, n_clusters) in sorted(results.items()):
        assert n_clusters <= n_ppms
        # Every booster's dataflow is connected by >=8-bit edges into at
        # most two clusters (its modules are meant to co-locate).
        assert n_clusters <= 2, (name, n_clusters)
