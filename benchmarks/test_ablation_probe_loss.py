"""Ablation — mode-probe loss tolerance via re-advertisement.

Mode-change probes share links with the attack traffic that triggered
them, so they face exactly the congestion loss the defense exists to
fix.  The initiating agent's periodic re-advertisement repairs missed
switches; this bench floods every link with heavy congestion loss and
compares convergence with refresh enabled vs. (effectively) disabled.
"""


from repro.core import ModeEventBus, ModeRegistry, ModeSpec, \
    install_mode_agents
from repro.netsim import Simulator, figure2_topology
from repro.sweep import SweepSpec, register_driver, run_sweep

LOSS_OVERLOAD = 2.0  # offered load 2x capacity -> 50% probe loss


def run_case(readvertise_s, seed, horizon_s=6.0):
    sim = Simulator(seed=seed)
    net = figure2_topology(sim)
    registry = ModeRegistry()
    registry.register(ModeSpec.of("mitigate", "lfa", ()))
    bus = ModeEventBus()
    agents = install_mode_agents(net.topo, registry, bus=bus)
    for agent in agents.values():
        agent.readvertise_s = readvertise_s
    # Every switch-switch link loses half its packets.
    switch_names = set(net.topo.switch_names)
    for (a, b), link in net.topo.links.items():
        if a in switch_names and b in switch_names:
            link.fluid_load_bps = link.capacity_bps * LOSS_OVERLOAD
    start = 1.0
    sim.schedule(start, agents["s1"].initiate, "lfa", "mitigate")
    sim.run(until=start + horizon_s)
    converged = {name for name, agent in agents.items()
                 if agent.mode_table.mode_for("lfa") == "mitigate"}
    if converged == set(agents):
        latency = max(e.time for e in bus.events) - start
    else:
        latency = None
    return len(converged), len(agents), latency


@register_driver("ablation_probe_loss")
def probe_loss_driver(seed, params):
    """Sweep-runner adapter around :func:`run_case`."""
    converged, total, latency = run_case(
        readvertise_s=params["readvertise_s"], seed=seed)
    scalars = {"converged": converged, "total": total,
               "converged_fraction": converged / total}
    if latency is not None:
        scalars["latency_s"] = latency
    return {"scalars": scalars}


def _probe_loss_sweep(readvertise_s, out_dir):
    # raw_seeds keeps the historical seeds 0..4 this ablation has
    # always reported; the runner adds checkpointing + aggregation.
    return run_sweep(
        SweepSpec(experiment="ablation_probe_loss", seeds=list(range(5)),
                  base_params={"readvertise_s": readvertise_s},
                  raw_seeds=True),
        out_dir=out_dir)


def test_refresh_converges_despite_heavy_loss(benchmark, tmp_path):
    result = benchmark.pedantic(
        _probe_loss_sweep, args=(0.25, tmp_path / "refresh"),
        rounds=1, iterations=1)
    assert result.ok, result.errors
    (group,) = result.aggregates.values()
    scalars = group["scalars"]
    # With refresh, every run converges fully under 50% probe loss.
    assert scalars["converged_fraction"]["min"] == 1.0
    assert scalars["latency_s"]["n"] == 5, "every seed must converge"
    print()
    print(f"with refresh: 5/5 runs converged, latency mean "
          f"{scalars['latency_s']['mean'] * 1e3:.0f} ms "
          f"(max {scalars['latency_s']['max'] * 1e3:.0f} ms)")
    benchmark.extra_info["latency_ms_mean"] = \
        round(scalars["latency_s"]["mean"] * 1e3, 1)
    benchmark.extra_info["latency_ms_max"] = \
        round(scalars["latency_s"]["max"] * 1e3, 1)


def test_without_refresh_loss_strands_switches(benchmark, tmp_path):
    # A refresh period beyond the horizon = no repair wave at all.
    result = benchmark.pedantic(
        _probe_loss_sweep, args=(100.0, tmp_path / "norefresh"),
        rounds=1, iterations=1)
    assert result.ok, result.errors
    (group,) = result.aggregates.values()
    fraction = group["scalars"]["converged_fraction"]
    stranded_runs = sum(
        1 for record in result.records
        if record["result"]["scalars"]["converged_fraction"] < 1.0)
    print()
    print(f"without refresh: {stranded_runs}/5 runs left switches "
          f"stranded out of mode under 50% probe loss")
    assert stranded_runs >= 1, (
        "expected the single flood to miss someone at 50% loss")
    assert fraction["min"] < 1.0
    benchmark.extra_info["stranded_runs"] = stranded_runs
