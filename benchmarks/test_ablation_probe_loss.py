"""Ablation — mode-probe loss tolerance via re-advertisement.

Mode-change probes share links with the attack traffic that triggered
them, so they face exactly the congestion loss the defense exists to
fix.  The initiating agent's periodic re-advertisement repairs missed
switches; this bench floods every link with heavy congestion loss and
compares convergence with refresh enabled vs. (effectively) disabled.
"""


from repro.core import ModeEventBus, ModeRegistry, ModeSpec, \
    install_mode_agents
from repro.netsim import Simulator, figure2_topology

LOSS_OVERLOAD = 2.0  # offered load 2x capacity -> 50% probe loss


def run_case(readvertise_s, seed, horizon_s=6.0):
    sim = Simulator(seed=seed)
    net = figure2_topology(sim)
    registry = ModeRegistry()
    registry.register(ModeSpec.of("mitigate", "lfa", ()))
    bus = ModeEventBus()
    agents = install_mode_agents(net.topo, registry, bus=bus)
    for agent in agents.values():
        agent.readvertise_s = readvertise_s
    # Every switch-switch link loses half its packets.
    switch_names = set(net.topo.switch_names)
    for (a, b), link in net.topo.links.items():
        if a in switch_names and b in switch_names:
            link.fluid_load_bps = link.capacity_bps * LOSS_OVERLOAD
    start = 1.0
    sim.schedule(start, agents["s1"].initiate, "lfa", "mitigate")
    sim.run(until=start + horizon_s)
    converged = {name for name, agent in agents.items()
                 if agent.mode_table.mode_for("lfa") == "mitigate"}
    if converged == set(agents):
        latency = max(e.time for e in bus.events) - start
    else:
        latency = None
    return len(converged), len(agents), latency


def test_refresh_converges_despite_heavy_loss(benchmark):
    def sweep():
        return [run_case(readvertise_s=0.25, seed=seed)
                for seed in range(5)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for index, (converged, total, latency) in enumerate(rows):
        label = f"{latency * 1e3:.0f} ms" if latency else "no"
        print(f"seed {index}: {converged}/{total} switches, "
              f"convergence {label}")
        # With refresh, every run converges fully under 50% probe loss.
        assert converged == total
        assert latency is not None
    benchmark.extra_info["latencies_ms"] = [
        round(l * 1e3, 1) for _, _, l in rows]


def test_without_refresh_loss_strands_switches(benchmark):
    def sweep():
        # A refresh period beyond the horizon = no repair wave at all.
        return [run_case(readvertise_s=100.0, seed=seed)
                for seed in range(5)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    stranded_runs = sum(1 for converged, total, _ in rows
                        if converged < total)
    print()
    print(f"without refresh: {stranded_runs}/5 runs left switches "
          f"stranded out of mode under 50% probe loss")
    assert stranded_runs >= 1, (
        "expected the single flood to miss someone at 50% loss")
