"""Ablation — repurposing disruption: notify+FRR vs. silent vs. hitless.

§3.4 and footnote 1: Tofino-style reinstallation takes seconds of
downtime, so a switch must tell its neighbors to fast-reroute before it
goes dark; Trident-style partial reconfiguration is hitless.  The bench
streams probes across the repurposed switch during the window and counts
what survives under the three disciplines.
"""


from repro.core import ScalingManager, StateTransferService
from repro.netsim import (Packet, Simulator, figure2_topology,
                          install_fast_reroute_alternates,
                          install_host_routes, install_switch_routes)

RECONFIG_S = 2.0
PROBE_PERIOD_S = 0.05


def run_discipline(discipline, seed=23):
    """Returns (delivered, lost) for probes sent during the window."""
    sim = Simulator(seed=seed)
    net = figure2_topology(sim)
    topo = net.topo
    install_host_routes(topo)
    install_switch_routes(topo)
    install_fast_reroute_alternates(topo)
    # Pin the probed pair through s1, the switch being repurposed.
    topo.switch("sL").flow_routes[("client0", "victim")] = "s1"

    service = StateTransferService(topo)
    service.install_agents()
    manager = ScalingManager(topo, service, reconfig_seconds=RECONFIG_S)

    sent = []

    def probe():
        pkt = Packet(src="client0", dst="victim", size_bytes=200)
        topo.host("client0").originate(pkt)
        sent.append(pkt)

    start = 1.0
    if discipline == "notify_frr":
        sim.schedule(start, manager.repurpose, "s1")
    elif discipline == "silent":
        # No neighbor notification: the switch just goes dark.
        sim.schedule(start, topo.switch("s1").begin_reconfiguration,
                     RECONFIG_S)
    elif discipline == "hitless":
        sim.schedule(start, manager.repurpose, "s1", None, None, None,
                     True)
    else:
        raise ValueError(discipline)

    # Probe only inside the reconfiguration window.
    tick = start + 0.1
    while tick < start + RECONFIG_S - 0.1:
        sim.schedule(tick, probe)
        tick += PROBE_PERIOD_S
    sim.run(until=start + RECONFIG_S + 1.0)

    delivered = topo.host("victim").received_count()
    lost = sum(1 for p in sent if p.dropped is not None)
    return delivered, lost, len(sent)


def test_notify_and_frr_avoid_loss(benchmark):
    delivered, lost, total = benchmark.pedantic(
        run_discipline, args=("notify_frr",), rounds=1, iterations=1)
    assert delivered == total
    assert lost == 0
    benchmark.extra_info.update(delivered=delivered, lost=lost)


def test_silent_reconfig_blackholes(benchmark):
    delivered, lost, total = benchmark.pedantic(
        run_discipline, args=("silent",), rounds=1, iterations=1)
    assert lost == total, "a dark switch with no warning drops everything"
    assert delivered == 0
    benchmark.extra_info.update(delivered=delivered, lost=lost)


def test_hitless_reconfig_is_transparent(benchmark):
    delivered, lost, total = benchmark.pedantic(
        run_discipline, args=("hitless",), rounds=1, iterations=1)
    assert delivered == total
    assert lost == 0
    benchmark.extra_info.update(delivered=delivered, lost=lost)


def test_disruption_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: {d: run_discipline(d)
                 for d in ("notify_frr", "silent", "hitless")},
        rounds=1, iterations=1)
    print()
    print(f"{'discipline':>12}{'delivered':>11}{'lost':>6}")
    for discipline, (delivered, lost, total) in rows.items():
        print(f"{discipline:>12}{delivered:>11}{lost:>6}")
    assert rows["silent"][1] > rows["notify_frr"][1]
