"""Ablation — selective rerouting: pin normal flows or move everything.

Step (3) of the FastFlex defense reroutes *only suspicious* flows and
pins normal flows to their TE-optimal paths, because detour paths trade
queueing delay for propagation delay (§4.2).  This bench runs the attack
scenario both ways and reports what pinning buys: normal flows keep
their short paths (no latency stretch) with the same throughput
protection.
"""


from repro.boosters import CongestionRerouteBooster, PacketDropperBooster
from repro.boosters.lfa_defense import build_figure2_defense
from repro.experiments.figure3 import Figure3Config, _build_network, \
    _launch_attacker
from repro.netsim import Monitor, install_flow_route

CONFIG = Figure3Config(duration_s=30.0)


def run_variant(pin_normal):
    """Rerouting-only defense (no policing), pinning on or off.

    Isolating the reroute booster keeps the flood alive, which is when
    the pin-normal decision matters: the steering happens while the
    network is genuinely congested.
    """
    sim, net, fluid, flows = _build_network(CONFIG)
    reroute = CongestionRerouteBooster(pin_normal=pin_normal)
    # A dropper that never fires: suspicion scores stay below 2.0.
    inert_dropper = PacketDropperBooster(drop_score_threshold=2.0)
    defense = build_figure2_defense(net, fluid, reroute=reroute,
                                    dropper=inert_dropper)
    deployment = defense.setup(flows)
    te_latency = {f.flow_id: f.path.latency(net.topo) for f in flows}
    for flow in flows:
        install_flow_route(net.topo, flow.path)
    fluid.start()
    monitor = Monitor(fluid, period=CONFIG.sample_period_s)
    series = monitor.watch_normal_goodput(CONFIG.normal_demand_total)
    monitor.start()
    _launch_attacker(net, fluid, CONFIG)
    sim.run(until=CONFIG.duration_s)

    stretched = 0
    for flow in flows.normal():
        if flow.path.latency(net.topo) > te_latency[flow.flow_id] + 1e-9:
            stretched += 1
    mean_throughput = series.mean_over(CONFIG.attack_start_s + 2.0,
                                       CONFIG.duration_s)
    return {
        "mean_throughput": mean_throughput,
        "normal_flows_stretched": stretched,
        "normal_total": len(flows.normal()),
        "reroutes": defense.reroute.reroutes_applied,
    }


def test_pinning_protects_normal_paths(benchmark):
    pinned = benchmark.pedantic(run_variant, args=(True,),
                                rounds=1, iterations=1)
    assert pinned["mean_throughput"] > 0.9
    assert pinned["normal_flows_stretched"] == 0, (
        "pinned normal flows must keep their TE paths")
    benchmark.extra_info.update(pinned)


def test_reroute_everything_disturbs_normal_flows(benchmark):
    naive = benchmark.pedantic(run_variant, args=(False,),
                               rounds=1, iterations=1)
    pinned = run_variant(True)
    # The naive variant drags normal flows onto whatever path the
    # distance-vector currently likes — alongside the (unmitigated)
    # attack — so they inherit both the longer paths and the congestion.
    # That is exactly why §4.2 step (3) pins normal flows.
    assert naive["normal_flows_stretched"] >= 1
    assert pinned["normal_flows_stretched"] == 0
    assert pinned["mean_throughput"] > naive["mean_throughput"] + 0.3
    benchmark.extra_info.update(
        {f"naive_{k}": v for k, v in naive.items()})
    print()
    print(f"pin-normal: {pinned['normal_flows_stretched']}/"
          f"{pinned['normal_total']} normal flows stretched, mean "
          f"throughput {pinned['mean_throughput']:.1%}")
    print(f"reroute-all: {naive['normal_flows_stretched']}/"
          f"{naive['normal_total']} normal flows stretched, mean "
          f"throughput {naive['mean_throughput']:.1%}")
