"""Figure 1d — dynamic scaling: replicating a booster at runtime.

The figure shows booster E being replicated when its region runs hot.
This bench replicates a loaded heavy-hitter instance onto a second
switch, seeding it with FEC-protected state transfer, and reports the
replication latency.
"""


from repro.experiments.figure1 import run_scaling_demo


def test_scale_out_with_state(benchmark):
    summary = benchmark.pedantic(run_scaling_demo, rounds=1, iterations=1)
    assert summary.instances_before == 1
    assert summary.instances_after == 2
    assert summary.state_seeded
    assert summary.seed_latency_s < 0.5
    benchmark.extra_info["seed_latency_ms"] = \
        round(summary.seed_latency_s * 1e3, 2)
    print()
    print(f"Figure 1d scale-out: 1 -> 2 instances, state seeded in "
          f"{summary.seed_latency_s * 1e3:.1f} ms of simulated time")
