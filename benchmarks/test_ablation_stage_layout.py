"""Ablation — RMT realizability: placements admit per-stage layouts.

The scheduler budgets stages as a scalar; real RMT hardware additionally
requires a dependency-respecting *assignment of tables to physical
stages* with per-stage memory slices.  This bench takes the actual
per-switch module assignments produced for the Figure 2 network and lays
each switch's modules out with the stage allocator — proving the
placements are realizable, not just arithmetically feasible.
"""


from repro.dataplane import (MatchActionTable, MatchKind,
                             PipelineLayoutError, layout_tables)
from repro.experiments.figure1 import run_placement

#: A Tofino-like physical profile: 12 stages, per-stage memory slices.
N_STAGES = 12
STAGE_SRAM_MB = 1.5
STAGE_TCAM_KB = 128


def tables_for_assignment(specs):
    """One synthetic match-action table per stage a module occupies,
    carrying a proportional share of its memory."""
    tables = []
    dependencies = {}
    for spec in specs:
        stages = max(int(spec.requirement.stages), 0)
        if stages == 0:
            continue  # parser-block modules occupy no match stages
        sram_per_stage = spec.requirement.sram_mb / stages
        tcam_per_stage = spec.requirement.tcam_kb / stages
        previous = None
        for index in range(stages):
            kind = (MatchKind.TERNARY if tcam_per_stage > 0
                    else MatchKind.EXACT)
            entry_bytes = 16
            memory = (tcam_per_stage * 1e3 if kind == MatchKind.TERNARY
                      else sram_per_stage * 1e6)
            max_entries = max(1, int(memory / entry_bytes))
            name = f"{spec.qualified_name}#{index}"
            tables.append(MatchActionTable(
                name, match_kind=kind, max_entries=max_entries,
                entry_bytes=entry_bytes))
            if previous is not None:
                dependencies[name] = [previous]
            previous = name
    return tables, dependencies


def test_every_switch_assignment_is_stage_realizable(benchmark):
    def check_all():
        summary = run_placement("figure2")
        results = {}
        for switch, specs in sorted(
                summary.placement.assignments.items()):
            tables, deps = tables_for_assignment(specs)
            layout = layout_tables(tables, deps, n_stages=N_STAGES,
                                   stage_sram_mb=STAGE_SRAM_MB,
                                   stage_tcam_kb=STAGE_TCAM_KB)
            results[switch] = layout.stages_used
        return results

    stages_used = benchmark.pedantic(check_all, rounds=1, iterations=1)
    print()
    for switch, used in sorted(stages_used.items()):
        print(f"{switch}: {used}/{N_STAGES} physical stages")
        assert used <= N_STAGES
    benchmark.extra_info["stages_used"] = stages_used


def test_overpacked_switch_fails_layout(benchmark):
    """Sanity: the allocator does reject genuinely infeasible loads."""

    def overpack():
        tables = [MatchActionTable(f"t{i}", max_entries=1000,
                                   entry_bytes=2000)  # 2 MB > stage slice
                  for i in range(3)]
        deps = {}
        try:
            layout_tables(tables, deps, n_stages=1,
                          stage_sram_mb=STAGE_SRAM_MB,
                          stage_tcam_kb=STAGE_TCAM_KB)
        except PipelineLayoutError:
            return True
        return False

    assert benchmark.pedantic(overpack, rounds=1, iterations=1)
