"""Figure 1a-b — joint analysis: dataflow graphs to a merged graph.

Regenerates the figure's module table (module / stages / SRAM / TCAM)
for the full booster catalog and reports the sharing savings that
motivate Challenge 1 (resource multiplexing).
"""


from repro.experiments.figure1 import run_merge


def test_merge_full_catalog(benchmark):
    merged, summary = benchmark(run_merge)
    assert summary.ppms_after < summary.ppms_before
    assert summary.shared_groups >= 1
    assert summary.sram_savings_fraction > 0.05
    benchmark.extra_info["ppms_before"] = summary.ppms_before
    benchmark.extra_info["ppms_after"] = summary.ppms_after
    benchmark.extra_info["sram_savings"] = \
        round(summary.sram_savings_fraction, 3)

    print()
    print("Figure 1 module table (merged catalog)")
    print(f"{'module':<34}{'stages':>7}{'SRAM MB':>9}{'TCAM KB':>9}")
    for name, stages, sram, tcam in summary.module_table:
        print(f"{name:<34}{stages:>7.0f}{sram:>9.2f}{tcam:>9.0f}")
    print(f"PPMs {summary.ppms_before} -> {summary.ppms_after}; "
          f"SRAM saved {summary.sram_savings_fraction:.1%}")


def test_merge_identifies_cross_booster_equivalence(benchmark):
    """Two differently-written but equivalent modules collapse to one."""
    from repro.boosters import sketch_ppm
    from repro.core import DataflowGraph, ProgramAnalyzer

    def build_and_merge():
        graphs = []
        for author, style in (("alice", "macros"), ("bob", "handwritten")):
            graph = DataflowGraph(author)
            graph.add_ppm(sketch_ppm(author, f"{author}_counter",
                                     width=2048, depth=4, style=style))
            graphs.append(graph)
        return ProgramAnalyzer().merge(graphs)

    merged = benchmark(build_and_merge)
    assert merged.report.total_ppms_after == 1
    assert merged.merged_name("alice.alice_counter") == \
        merged.merged_name("bob.bob_counter")
