"""Microbenchmark — sharded region simulation scaling (PR trajectory bench).

Runs one 1000-switch / 20000-flow random scenario under
:func:`repro.shard.coordinator.run_sharded` (``local`` sync: per-region
allocators with boundary-pin consensus) at ``regions = workers = K`` for
K in 1, 2, 4, 8, plus the true single-process engine
(:func:`repro.shard.scenario.run_single`) for reference.  Results go to
``BENCH_shard.json`` at the repo root.

The headline number is **scaling** = t(K=1) / t(K=8).  On a one-core
container (CI) the win is algorithmic, not parallel: global max-min
allocation is superlinear in flows x links, so splitting one 1000-switch
allocation problem into eight ~125-switch regional problems shrinks the
per-epoch allocator work far more than the coordinator's barrier costs
add back.  ``cpu_count`` is recorded so multi-core readings are never
mistaken for single-core ones.  **speedup** = single-engine time /
t(K=8) is reported alongside, honestly including every sharding
overhead the single engine does not pay.

**workers1_overhead** = t(K=1) / single-engine time isolates the
resident transport's own cost: with one region and one inline worker
the sharded run does the same simulation work as the single engine,
so anything above 1.0x is pure coordinator overhead.  The pre-resident
blob-per-window transport sat at ~1.38x; the resident transport
serializes no state on this path and must stay within 1.10x (CI gate
ceiling 1.25x via ``scripts/check_bench.py --max-shard-overhead``).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_microbench_shard.py -s``.
"""

import json
import os
import time
from pathlib import Path as FsPath

from repro.shard import random_scenario, run_sharded, run_single

N_SWITCHES = 1000
N_HOSTS = 2000
N_FLOWS = 20000
#: Flow sources concentrate on this many hosts so path assignment reuses
#: Dijkstra trees; large enough that every region homes allocator work.
SOURCE_HOSTS = 256
#: One fluid epoch every 40 ms over a 1 s horizon = 26 allocator epochs.
FLUID_INTERVAL_S = 0.04
DURATION_S = 1.0
#: Demand churn per epoch keeps every epoch an allocation pass (the
#: steady-state fast path would otherwise make t(K) measure smoothing).
CHURN_PER_EPOCH = 300
WORKER_COUNTS = (1, 2, 4, 8)
BENCH_PATH = FsPath(__file__).resolve().parent.parent / "BENCH_shard.json"


def build_scenario():
    return random_scenario(seed=42, n_switches=N_SWITCHES, n_hosts=N_HOSTS,
                           n_flows=N_FLOWS, extra_edges=300,
                           duration_s=DURATION_S,
                           fluid_interval_s=FLUID_INTERVAL_S,
                           sample_period_s=0.5,
                           churn_per_epoch=CHURN_PER_EPOCH,
                           locality=1, source_hosts=SOURCE_HOSTS)


def transport_summary(record):
    """The per-run transport accounting run_sharded emits: window count,
    barrier wall time, state bytes moved (zero without checkpoints) and
    the coordinator/worker CPU split."""
    transport = record["transport"]
    return {
        "windows": transport["windows"],
        "barrier_seconds_total": round(
            transport["barrier_seconds_total"], 3),
        "state_bytes": transport["state_bytes"],
        "messages": transport["messages"],
        "cpu_time_s": {
            "coordinator": round(
                transport["cpu_time_s"]["coordinator"], 3),
            "workers": [round(cpu, 3)
                        for cpu in transport["cpu_time_s"]["workers"]],
        },
    }


def test_shard_scaling():
    scenario = build_scenario()

    start = time.perf_counter()
    single = run_single(scenario)
    single_s = time.perf_counter() - start
    single_passes = single["allocation_passes"]
    del single

    # No process-level telemetry deltas here: run_sharded isolates the
    # registry per region (capture/restore), so its counters never land
    # in this process — per-K allocation passes come from the records.
    # Only scalar summaries are retained between runs: holding the full
    # 20000-flow records would bloat the heap every subsequent K's
    # forked workers inherit, taxing their GC and COW pages.
    times = {}
    summaries = {}
    for k in WORKER_COUNTS:
        start = time.perf_counter()
        record = run_sharded(scenario, n_regions=k, workers=k,
                             sync="local", window_s=DURATION_S)
        times[k] = time.perf_counter() - start
        summaries[k] = {"allocation_passes": record["allocation_passes"],
                        "cut_edges": record["cut_edges"],
                        "transport": transport_summary(record)}
        del record

    scaling = times[1] / times[8]
    speedup = single_s / times[8]
    workers1_overhead = times[1] / single_s

    record = {
        "scenario": {"switches": N_SWITCHES, "hosts": N_HOSTS,
                     "flows": N_FLOWS, "source_hosts": SOURCE_HOSTS,
                     "duration_s": DURATION_S,
                     "fluid_interval_s": FLUID_INTERVAL_S,
                     "churn_per_epoch": CHURN_PER_EPOCH, "sync": "local"},
        "cpu_count": os.cpu_count(),
        "single_engine_s": round(single_s, 3),
        "workers": {str(k): {"seconds": round(times[k], 3),
                             **summaries[k]}
                    for k in WORKER_COUNTS},
        "scaling": round(scaling, 2),
        "speedup": round(speedup, 2),
        "workers1_overhead": round(workers1_overhead, 2),
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    curve = ", ".join(f"K={k} {times[k]:.1f}s" for k in WORKER_COUNTS)
    print(f"\nBENCH_shard: single {single_s:.1f}s; {curve}; "
          f"scaling {scaling:.2f}x, speedup vs single {speedup:.2f}x, "
          f"workers=1 overhead {workers1_overhead:.2f}x "
          f"on {os.cpu_count()} cpu(s) -> {BENCH_PATH.name}")

    assert single_passes > 0
    assert scaling >= 3.0, (
        f"sharded scaling regressed: t(1)/t(8) = {scaling:.2f}x < 3.0x "
        f"on {N_SWITCHES} switches / {N_FLOWS} flows")
    assert workers1_overhead <= 1.25, (
        f"workers=1 sharded overhead regressed: {workers1_overhead:.2f}x "
        f"> 1.25x - the resident transport is serializing state on the "
        f"window path again")
