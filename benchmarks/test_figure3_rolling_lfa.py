"""Figure 3 — FastFlex vs. the SDN baseline under a rolling LFA.

Regenerates the paper's quantitative evaluation: normalized throughput
of normal user flows over a 120 s run with a 3-round rolling Crossfire
attack.  Acceptance criteria (shape, not absolute numbers):

* the baseline repeatedly collapses — one collapse per attacker roll,
  partial recovery after each 30 s TE pass;
* FastFlex detects in well under a second, changes modes at millisecond
  timescale, and sustains near-baseline throughput throughout;
* the attacker rolls ~3 times against the baseline and never against
  FastFlex (obfuscation + illusion of success).
"""

import pytest

from repro.experiments.figure3 import (Figure3Config, format_report,
                                       run_baseline, run_fastflex)

CONFIG = Figure3Config()  # the paper's 120 s scenario


@pytest.fixture(scope="module")
def results():
    return {"baseline_sdn": run_baseline(CONFIG),
            "fastflex": run_fastflex(CONFIG)}


def test_figure3_baseline(benchmark, results):
    baseline = benchmark.pedantic(run_baseline, args=(CONFIG,),
                                  rounds=1, iterations=1)
    assert baseline.rolls >= 2, "rolling attack must keep rolling"
    assert baseline.mean_during_attack(CONFIG) < 0.8
    assert baseline.min_during_attack(CONFIG) < 0.5
    benchmark.extra_info["mean_during_attack"] = \
        round(baseline.mean_during_attack(CONFIG), 3)
    benchmark.extra_info["worst_sample"] = \
        round(baseline.min_during_attack(CONFIG), 3)
    benchmark.extra_info["attacker_rolls"] = baseline.rolls


def test_figure3_fastflex(benchmark, results):
    fastflex = benchmark.pedantic(run_fastflex, args=(CONFIG,),
                                  rounds=1, iterations=1)
    assert fastflex.rolls == 0
    assert fastflex.mean_during_attack(CONFIG) > 0.9
    assert fastflex.detections
    detection_lag = fastflex.detections[0].time - CONFIG.attack_start_s
    assert detection_lag < 1.0
    benchmark.extra_info["mean_during_attack"] = \
        round(fastflex.mean_during_attack(CONFIG), 3)
    benchmark.extra_info["detection_lag_s"] = round(detection_lag, 3)
    benchmark.extra_info["attacker_rolls"] = fastflex.rolls


def test_figure3_shape(benchmark, results):
    """The paper's headline comparison, printed as the figure's series."""
    baseline, fastflex = benchmark.pedantic(
        lambda: (results["baseline_sdn"], results["fastflex"]),
        rounds=1, iterations=1)
    # Who wins, by roughly what factor.
    gap = (fastflex.mean_during_attack(CONFIG)
           - baseline.mean_during_attack(CONFIG))
    assert gap > 0.25, f"FastFlex should win clearly, gap={gap:.2f}"
    # Baseline sawtooth: each roll is followed by a collapse window.
    roll_times = [e.time for e in baseline.attack_events
                  if e.kind == "roll"]
    assert len(roll_times) >= 2
    for roll in roll_times:
        if roll + 5.0 <= CONFIG.duration_s:
            dip = baseline.throughput.min_over(roll, roll + 5.0)
            assert dip < 0.85, f"no collapse after roll at t={roll}"
    print()
    print(format_report(results, CONFIG))
