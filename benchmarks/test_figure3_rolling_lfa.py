"""Figure 3 — FastFlex vs. the SDN baseline under a rolling LFA.

Regenerates the paper's quantitative evaluation: normalized throughput
of normal user flows over a 120 s run with a 3-round rolling Crossfire
attack.  Acceptance criteria (shape, not absolute numbers):

* the baseline repeatedly collapses — one collapse per attacker roll,
  partial recovery after each 30 s TE pass;
* FastFlex detects in well under a second, changes modes at millisecond
  timescale, and sustains near-baseline throughput throughout;
* the attacker rolls ~3 times against the baseline and never against
  FastFlex (obfuscation + illusion of success).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.figure3 import (Figure3Config, format_report,
                                       run_baseline, run_fastflex)
from repro.sweep import SweepSpec, run_sweep

CONFIG = Figure3Config()  # the paper's 120 s scenario

SWEEP_BENCH_PATH = (Path(__file__).resolve().parent.parent
                    / "BENCH_sweep_figure3.json")
#: Multi-seed evidence for the figure: the paper's operating point at a
#: shorter horizon, repeated across seeds through the sweep runner.
SWEEP_SEEDS = [0, 1, 2, 3]
SWEEP_DURATION_S = 40.0


@pytest.fixture(scope="module")
def results():
    return {"baseline_sdn": run_baseline(CONFIG),
            "fastflex": run_fastflex(CONFIG)}


def test_figure3_baseline(benchmark, results):
    baseline = benchmark.pedantic(run_baseline, args=(CONFIG,),
                                  rounds=1, iterations=1)
    assert baseline.rolls >= 2, "rolling attack must keep rolling"
    assert baseline.mean_during_attack(CONFIG) < 0.8
    assert baseline.min_during_attack(CONFIG) < 0.5
    benchmark.extra_info["mean_during_attack"] = \
        round(baseline.mean_during_attack(CONFIG), 3)
    benchmark.extra_info["worst_sample"] = \
        round(baseline.min_during_attack(CONFIG), 3)
    benchmark.extra_info["attacker_rolls"] = baseline.rolls


def test_figure3_fastflex(benchmark, results):
    fastflex = benchmark.pedantic(run_fastflex, args=(CONFIG,),
                                  rounds=1, iterations=1)
    assert fastflex.rolls == 0
    assert fastflex.mean_during_attack(CONFIG) > 0.9
    assert fastflex.detections
    detection_lag = fastflex.detections[0].time - CONFIG.attack_start_s
    assert detection_lag < 1.0
    benchmark.extra_info["mean_during_attack"] = \
        round(fastflex.mean_during_attack(CONFIG), 3)
    benchmark.extra_info["detection_lag_s"] = round(detection_lag, 3)
    benchmark.extra_info["attacker_rolls"] = fastflex.rolls


def test_figure3_shape(benchmark, results):
    """The paper's headline comparison, printed as the figure's series."""
    baseline, fastflex = benchmark.pedantic(
        lambda: (results["baseline_sdn"], results["fastflex"]),
        rounds=1, iterations=1)
    # Who wins, by roughly what factor.
    gap = (fastflex.mean_during_attack(CONFIG)
           - baseline.mean_during_attack(CONFIG))
    assert gap > 0.25, f"FastFlex should win clearly, gap={gap:.2f}"
    # Baseline sawtooth: each roll is followed by a collapse window.
    roll_times = [e.time for e in baseline.attack_events
                  if e.kind == "roll"]
    assert len(roll_times) >= 2
    for roll in roll_times:
        if roll + 5.0 <= CONFIG.duration_s:
            dip = baseline.throughput.min_over(roll, roll + 5.0)
            assert dip < 0.85, f"no collapse after roll at t={roll}"
    print()
    print(format_report(results, CONFIG))


def test_figure3_multiseed_sweep(benchmark, tmp_path):
    """The figure's repetitions, driven through the sweep runner: the
    headline gap must hold in the mean *and* at the worst seed, with
    per-system metrics recoverable from the checkpointed records."""
    def sweep():
        return run_sweep(
            SweepSpec(experiment="figure3", seeds=SWEEP_SEEDS,
                      base_params={"duration_s": SWEEP_DURATION_S}),
            out_dir=tmp_path / "figure3_sweep")

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert result.ok, result.errors
    (group,) = result.aggregates.values()
    scalars = group["scalars"]
    assert scalars["baseline_mean_during_attack"]["mean"] < 0.8
    assert scalars["fastflex_mean_during_attack"]["min"] > 0.9
    assert scalars["gap"]["min"] > 0.25, \
        "FastFlex must win clearly at every seed"
    assert scalars["fastflex_attacker_rolls"]["max"] == 0

    # Per-system telemetry stays unconflated through the sweep: every
    # record carries separate baseline/fastflex registry snapshots.
    for record in result.records:
        per_system = record["result"]["per_system_metrics"]
        assert set(per_system) == {"baseline_sdn", "fastflex"}
        for snap in per_system.values():
            assert snap["fluid_updates_total"]["value"] > 0

    payload = {
        "seeds": SWEEP_SEEDS,
        "duration_s": SWEEP_DURATION_S,
        "aggregates": result.aggregates,
        "wall_seconds": result.wall_seconds,
    }
    SWEEP_BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    benchmark.extra_info["gap_mean"] = round(scalars["gap"]["mean"], 3)
    benchmark.extra_info["gap_ci95"] = round(scalars["gap"]["ci95"], 4)
    benchmark.extra_info["n_seeds"] = len(SWEEP_SEEDS)
    print()
    print(f"figure3 sweep ({len(SWEEP_SEEDS)} seeds, "
          f"{SWEEP_DURATION_S:.0f}s): gap mean "
          f"{scalars['gap']['mean']:.3f} ± {scalars['gap']['ci95']:.4f} "
          f"(95% CI), worst-seed gap {scalars['gap']['min']:.3f}")
