"""Ablation — PPM sharing: resource use with vs. without merging (§3.1).

How many copies of the booster catalog fit on one switch, and how much
SRAM/stage budget the joint analysis saves, with parser merging on and
off.  This is the quantified version of Figure 1's (a) -> (b) step.
"""


from repro.dataplane import ResourceLedger, TOFINO_LIKE
from repro.experiments.figure1 import run_merge


def catalog_requirements(merge_all_parsers):
    merged, summary = run_merge(merge_all_parsers=merge_all_parsers)
    return summary


def suites_fitting_on_one_switch(requirement):
    """Whole-catalog copies fitting within one Tofino-like budget."""
    ledger = ResourceLedger(TOFINO_LIKE)
    count = 0
    while ledger.can_allocate(requirement):
        ledger.allocate(f"copy{count}", requirement)
        count += 1
    return count


def test_sharing_reduces_catalog_footprint(benchmark):
    shared = benchmark.pedantic(catalog_requirements, args=(True,),
                                rounds=1, iterations=1)
    unshared = catalog_requirements(False)
    assert shared.requirement_after.sram_mb < \
        unshared.requirement_after.sram_mb
    assert shared.ppms_after < unshared.ppms_after
    benchmark.extra_info["sram_mb_shared"] = \
        round(shared.requirement_after.sram_mb, 3)
    benchmark.extra_info["sram_mb_unshared"] = \
        round(unshared.requirement_after.sram_mb, 3)
    print()
    print(f"catalog footprint: shared {shared.requirement_after} vs "
          f"unshared {unshared.requirement_after}")


def test_sharing_lets_more_boosters_pack(benchmark):
    def measure():
        shared = catalog_requirements(True)
        unshared = catalog_requirements(False)
        return (suites_fitting_on_one_switch(shared.requirement_after),
                suites_fitting_on_one_switch(unshared.requirement_after))

    with_sharing, without_sharing = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    # Stage budget (12) dominates; both fit zero whole catalogs (25
    # stages) on one switch — the point is the per-module packing below.
    assert with_sharing >= without_sharing
    benchmark.extra_info["catalog_copies_shared"] = with_sharing
    benchmark.extra_info["catalog_copies_unshared"] = without_sharing


def test_flow_table_sharing_saves_stages(benchmark):
    """The paper's per-flow-table sharing example, quantified.

    The LFA detector ([43]-style) and NetWarden ([78]) both keep a
    per-flow TCP state table with identical semantics; the analyzer
    installs one.  Measure the whole-booster-pair stage demand with and
    without the joint analysis.
    """
    from repro.boosters import LfaDetectorBooster, NetWardenBooster
    from repro.core import ProgramAnalyzer

    def measure():
        graphs = [LfaDetectorBooster().dataflow(),
                  NetWardenBooster().dataflow()]
        merged = ProgramAnalyzer().merge(graphs)
        return merged.report

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert report.requirement_after.stages < \
        report.requirement_before.stages
    saved = report.requirement_before.stages - \
        report.requirement_after.stages
    benchmark.extra_info["stages_saved"] = saved
    benchmark.extra_info["sram_mb_saved"] = round(report.savings.sram_mb, 3)
    print()
    print(f"LFA detector + NetWarden: {report.requirement_before.stages:g}"
          f" -> {report.requirement_after.stages:g} stages "
          f"({saved:g} saved by sharing the per-flow TCP table), "
          f"{report.savings.sram_mb:.2f} MB SRAM saved")
