"""Microbenchmarks — per-operation cost of the data-plane substrate.

Sanity checks that the structures behind the boosters are cheap enough
for the simulator to sustain the experiment workloads, and a place to
catch accidental algorithmic regressions (these run with real
pytest-benchmark statistics, unlike the single-shot scenario benches).
"""

import random


from repro.core import ModeRegistry, ModeSpec, ModeTable
from repro.dataplane import (BloomFilter, CountMinSketch, FecDecoder,
                             FecEncoder, FlowTable, HashPipe)
from repro.netsim import (Path, Simulator, Topology, make_flow,
                          max_min_allocate)

KEYS = [f"10.0.{i % 256}.{i // 256}" for i in range(10_000)]


def test_sketch_update(benchmark):
    sketch = CountMinSketch("bench", width=2048, depth=4)
    counter = iter(range(10**9))
    benchmark(lambda: sketch.update(KEYS[next(counter) % len(KEYS)]))


def test_sketch_estimate(benchmark):
    sketch = CountMinSketch("bench", width=2048, depth=4)
    for key in KEYS[:2000]:
        sketch.update(key)
    benchmark(lambda: sketch.estimate(KEYS[123]))


def test_bloom_add_and_query(benchmark):
    bloom = BloomFilter("bench", size_bits=1 << 16, n_hashes=4)
    for key in KEYS[:2000]:
        bloom.add(key)
    benchmark(lambda: KEYS[1500] in bloom)


def test_hashpipe_update(benchmark):
    pipe = HashPipe("bench", stages=4, slots_per_stage=256)
    counter = iter(range(10**9))
    benchmark(lambda: pipe.update(KEYS[next(counter) % 512]))


def test_flow_table_observe(benchmark):
    table = FlowTable("bench", capacity=8192)
    counter = iter(range(10**9))

    def observe():
        index = next(counter)
        table.observe(KEYS[index % 4000], now=index * 1e-5,
                      size_bytes=1000)

    benchmark(observe)


def test_fec_encode_decode_roundtrip(benchmark):
    words = list(range(256))
    encoder = FecEncoder(group_size=4)
    decoder = FecDecoder(group_size=4)

    def roundtrip():
        symbols = encoder.encode(words)
        decoded, _ = decoder.decode(symbols, len(words))
        return decoded

    result = benchmark(roundtrip)
    assert result == words


def test_mode_table_apply(benchmark):
    registry = ModeRegistry()
    registry.register(ModeSpec.of("mitigate", "lfa", ("a",)))
    table = ModeTable(registry)
    counter = iter(range(10**9))
    benchmark(lambda: table.apply("lfa", "mitigate", next(counter) + 1))


def test_max_min_allocation_medium(benchmark):
    """One fluid allocation pass over 60 flows on a tandem network
    (the figure-3 inner loop runs 100x per simulated second)."""
    sim = Simulator(seed=0)
    topo = Topology(sim)
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_switch("s3")
    topo.add_duplex_link("s1", "s2", 10e9, 0.001)
    topo.add_duplex_link("s2", "s3", 10e9, 0.001)
    for i in range(30):
        topo.attach_host(f"a{i}", "s1")
        topo.attach_host(f"b{i}", "s3")
    rng = random.Random(1)
    flows = []
    for i in range(60):
        src, dst = f"a{i % 30}", f"b{(i * 7) % 30}"
        flow = make_flow(src, dst, rng.uniform(1e8, 2e9),
                         weight=rng.choice([1.0, 50.0]), sport=i)
        flow.set_path(Path.of([src, "s1", "s2", "s3", dst]))
        flows.append(flow)

    result = benchmark(lambda: max_min_allocate(topo, flows))
    assert all(rate >= 0 for rate in result.rates.values())
