"""Microbenchmarks — per-operation cost of the data-plane substrate.

Sanity checks that the structures behind the boosters are cheap enough
for the simulator to sustain the experiment workloads, and a place to
catch accidental algorithmic regressions (these run with real
pytest-benchmark statistics, unlike the single-shot scenario benches).

``test_dataplane_batch_speedup`` is the PR-trajectory scenario bench for
the vectorized batch data plane: it times the batch kernels against the
retained ``*_reference`` sequential paths on a 10^5-packet mixed
workload (structure level) and a coalesced-window switch pipeline
against per-packet ``receive`` (engine level), asserts byte-identical
end state for both, and writes ``BENCH_dataplane.json`` at the repo
root so the numbers are comparable across PRs.
"""

import json
import random
import statistics
import time
from pathlib import Path as FsPath

from repro import telemetry
from repro.boosters.heavy_hitter import (HeavyHitterFilterProgram,
                                         HeavyHitterProgram)
from repro.boosters.hop_count import (HopCountFilterBooster,
                                      HopCountFilterProgram)
from repro.boosters.lfa_detector import LfaDetectorProgram
from repro.boosters.packet_dropper import PacketDropperProgram
from repro.core import ModeRegistry, ModeSpec, ModeTable
from repro.dataplane import (BloomFilter, CountMinSketch, FecDecoder,
                             FecEncoder, FlowTable, HashPipe)
from repro.netsim import (Packet, Path, Protocol, Simulator, Topology,
                          make_flow, max_min_allocate)
from repro.netsim.packet import FlowKey

KEYS = [f"10.0.{i % 256}.{i // 256}" for i in range(10_000)]


def test_sketch_update(benchmark):
    sketch = CountMinSketch("bench", width=2048, depth=4)
    counter = iter(range(10**9))
    benchmark(lambda: sketch.update(KEYS[next(counter) % len(KEYS)]))


def test_sketch_estimate(benchmark):
    sketch = CountMinSketch("bench", width=2048, depth=4)
    for key in KEYS[:2000]:
        sketch.update(key)
    benchmark(lambda: sketch.estimate(KEYS[123]))


def test_bloom_add_and_query(benchmark):
    bloom = BloomFilter("bench", size_bits=1 << 16, n_hashes=4)
    for key in KEYS[:2000]:
        bloom.add(key)
    benchmark(lambda: KEYS[1500] in bloom)


def test_hashpipe_update(benchmark):
    pipe = HashPipe("bench", stages=4, slots_per_stage=256)
    counter = iter(range(10**9))
    benchmark(lambda: pipe.update(KEYS[next(counter) % 512]))


def test_flow_table_observe(benchmark):
    table = FlowTable("bench", capacity=8192)
    counter = iter(range(10**9))

    def observe():
        index = next(counter)
        table.observe(KEYS[index % 4000], now=index * 1e-5,
                      size_bytes=1000)

    benchmark(observe)


def test_fec_encode_decode_roundtrip(benchmark):
    words = list(range(256))
    encoder = FecEncoder(group_size=4)
    decoder = FecDecoder(group_size=4)

    def roundtrip():
        symbols = encoder.encode(words)
        decoded, _ = decoder.decode(symbols, len(words))
        return decoded

    result = benchmark(roundtrip)
    assert result == words


def test_mode_table_apply(benchmark):
    registry = ModeRegistry()
    registry.register(ModeSpec.of("mitigate", "lfa", ("a",)))
    table = ModeTable(registry)
    counter = iter(range(10**9))
    benchmark(lambda: table.apply("lfa", "mitigate", next(counter) + 1))


def test_max_min_allocation_medium(benchmark):
    """One fluid allocation pass over 60 flows on a tandem network
    (the figure-3 inner loop runs 100x per simulated second)."""
    sim = Simulator(seed=0)
    topo = Topology(sim)
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_switch("s3")
    topo.add_duplex_link("s1", "s2", 10e9, 0.001)
    topo.add_duplex_link("s2", "s3", 10e9, 0.001)
    for i in range(30):
        topo.attach_host(f"a{i}", "s1")
        topo.attach_host(f"b{i}", "s3")
    rng = random.Random(1)
    flows = []
    for i in range(60):
        src, dst = f"a{i % 30}", f"b{(i * 7) % 30}"
        flow = make_flow(src, dst, rng.uniform(1e8, 2e9),
                         weight=rng.choice([1.0, 50.0]), sport=i)
        flow.set_path(Path.of([src, "s1", "s2", "s3", dst]))
        flows.append(flow)

    result = benchmark(lambda: max_min_allocate(topo, flows))
    assert all(rate >= 0 for rate in result.rates.values())


# ----------------------------------------------------------------------
# Scenario bench: the vectorized batch data plane (PR trajectory).
# ----------------------------------------------------------------------

N_PACKETS = 100_000
WINDOW = 8192          # packets per coalesced link window
WINDOW_S = 0.001       # window cadence (fixed-time injection, see below)
REPEATS = 3
SEED = 42
WORKLOAD_SEED = 43
#: Rare sources/flows primed into the pre-filter stages: drops must stay
#: rare (~0.3%) so the bench measures full-pipeline traversal, not
#: early-exit economics.
FLAGGED_SOURCE_IDS = (37, 53, 61)
BLOCKED_FLOW_IDS = range(70, 90)
STRUCTURE_FLOOR = 10.0  # composite structures speedup gate (ISSUE 6)
PIPELINE_FLOOR = 4.0    # end-to-end engine floor (CI; target 10x)
BENCH_PATH = FsPath(__file__).resolve().parent.parent / "BENCH_dataplane.json"

TELEMETRY_COUNTERS = (
    "dataplane_batch_events_total",
    "dataplane_batch_packets_total",
    "dataplane_batch_fallback_packets_total",
    "booster_packets_dropped_total",
)


def _mixed_workload():
    """Pareto-skewed source/size columns: a few heavy hitters, a long
    tail of mice — the mix every sketching structure is built for."""
    rng = random.Random(WORKLOAD_SEED)
    keys, sizes = [], []
    for _ in range(N_PACKETS):
        j = int(rng.paretovariate(1.1)) % 1500
        keys.append(f"10.{j % 256}.{j // 256}.{j % 40}")
        sizes.append(rng.choice([64, 512, 1500]))
    return keys, sizes


def _structure_cases(keys, sizes):
    flow_keys = [FlowKey(k, "h_dst", Protocol.UDP, 1000, 80) for k in keys]
    # Share one FlowKey object per unique flow, as the batch flow-key
    # column does (the contract the id-token kernels exploit).
    interned = {}
    flow_keys = [interned.setdefault(k, k) for k in flow_keys]
    return [
        ("cms_update",
         lambda: CountMinSketch("bench.cms", width=2048, depth=4),
         lambda s: s.update_batch(keys, sizes),
         lambda s: s.update_batch_reference(keys, sizes)),
        ("bloom_add",
         lambda: BloomFilter("bench.bloom", size_bits=8192, n_hashes=4),
         lambda s: s.add_batch(keys),
         lambda s: s.add_batch_reference(keys)),
        ("hashpipe_update",
         lambda: HashPipe("bench.pipe", stages=4, slots_per_stage=64),
         lambda s: s.update_batch(keys, sizes),
         lambda s: s.update_batch_reference(keys, sizes)),
        ("flowtable_observe",
         lambda: FlowTable("bench.flows", capacity=4096),
         lambda s: s.observe_batch(flow_keys, 1.0, sizes),
         lambda s: s.observe_batch_reference(flow_keys, 1.0, sizes)),
    ]


def _run_structures():
    """Batch vs sequential-reference timings per structure; asserts
    byte-identical end state for each pair."""
    keys, sizes = _mixed_workload()
    per_structure = {}
    batch_total = 0.0
    reference_total = 0.0
    for name, make, batch_fn, reference_fn in _structure_cases(keys, sizes):
        batched = make()
        start = time.perf_counter()
        batch_fn(batched)
        batch_s = time.perf_counter() - start
        sequential = make()
        start = time.perf_counter()
        reference_fn(sequential)
        reference_s = time.perf_counter() - start
        assert batched.export_state() == sequential.export_state(), (
            f"{name}: batch kernel diverged from sequential reference")
        per_structure[name] = {
            "batch_ms": round(batch_s * 1e3, 3),
            "reference_ms": round(reference_s * 1e3, 3),
            "speedup": round(reference_s / batch_s, 2),
        }
        batch_total += batch_s
        reference_total += reference_s
    return per_structure, batch_total, reference_total


def _build_pipeline():
    """One edge switch running the five batch-capable defense programs,
    draining into a sink host over a fat link (the pre-filter pipeline
    of DESIGN.md "Batch data plane")."""
    sim = Simulator(seed=SEED)
    topo = Topology(sim)
    topo.add_switch("s1")
    topo.add_host("h_dst", gateway="s1")
    topo.add_duplex_link("s1", "h_dst", 100e9, 1e-4, queue_bytes=10**9)
    switch = topo.switch("s1")
    switch.set_route("h_dst", ["h_dst"])
    programs = (
        HeavyHitterProgram("hh", "hh.counter", stages=4,
                           slots_per_stage=64),
        HeavyHitterFilterProgram("hh.filter", "hh.filter"),
        LfaDetectorProgram("lfa_detector", "lfa_detector.flow_state",
                           capacity=4096),
        PacketDropperProgram("dropper", "dropper.blocklist",
                             size_bits=8192),
        HopCountFilterProgram(HopCountFilterBooster(),
                              "hop_count.hc_table"),
    )
    for program in programs:
        switch.install_program(program)
    hh_filter = programs[1]
    for j in FLAGGED_SOURCE_IDS:
        hh_filter.flag(f"10.{j % 256}.{j // 256}.{j % 40}")
    dropper = programs[3]
    for j in BLOCKED_FLOW_IDS:
        template = Packet(src=f"10.{j % 256}.{j // 256}.{j % 40}",
                          dst="h_dst", proto=Protocol.UDP,
                          sport=1000 + j % 16, dport=80)
        dropper.block(template.flow_key)
    return sim, switch, programs, topo.host("h_dst")


def _make_packets():
    rng = random.Random(WORKLOAD_SEED)
    packets = []
    for _ in range(N_PACKETS):
        j = int(rng.paretovariate(1.1)) % 1500
        packets.append(Packet(
            src=f"10.{j % 256}.{j // 256}.{j % 40}", dst="h_dst",
            size_bytes=rng.choice([64, 512, 1500]),
            proto=Protocol.UDP, sport=1000 + j % 16, dport=80,
            ttl=64 - (j % 9)))
    return packets


def _inject_scalar(switch, window):
    for packet in window:
        switch.receive(packet)


def _pipeline_snapshot(switch, programs, host, packets):
    hh, hh_filter, lfa, dropper, hop = programs
    return {
        "hh": hh.pipe.export_state(),
        "hh_filter": (hh_filter.export_state(),
                      hh_filter.packets_dropped),
        "lfa": lfa.table.export_state(),
        "dropper": (dropper.export_state(), dropper.packets_dropped),
        "hop": (dict(hop.learned), hop.mismatches, hop.packets_dropped),
        "switch_stats": vars(switch.stats).copy(),
        "drop_reasons": [p.dropped for p in packets],
        "host_received": dict(host.received_by_kind),
    }


def _run_pipeline(mode):
    """One full engine run; windows are scheduled at *fixed absolute
    times* (k * WINDOW_S) with a single ``sim.run()`` so both modes
    observe identical clocks at injection — interleaved run() calls let
    float event-time accumulation drift between the per-packet and the
    coalesced schedules, which breaks FlowTable timestamp identity."""
    sim, switch, programs, host = _build_pipeline()
    packets = _make_packets()
    for k in range(0, N_PACKETS, WINDOW):
        window = packets[k:k + WINDOW]
        when = (k // WINDOW) * WINDOW_S
        if mode == "batch":
            sim.schedule_at(when, switch.receive_batch, window)
        else:
            sim.schedule_at(when, _inject_scalar, switch, window)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return elapsed, _pipeline_snapshot(switch, programs, host, packets)


def _telemetry_counters():
    registry = telemetry.metrics()
    out = {}
    for name in TELEMETRY_COUNTERS:
        if name not in registry:
            out[name] = 0.0
            continue
        snap = registry.get(name).snapshot()
        labels = snap.get("labels")
        if labels:
            for label, value in labels.items():
                out[f"{name}:{label}"] = value
        else:
            out[name] = snap["value"]
    return out


def test_dataplane_batch_speedup():
    # -- structure level: batch kernels vs *_reference twins ------------
    structure_runs = []
    for _ in range(REPEATS):
        structure_runs.append(_run_structures())
    per_structure = structure_runs[0][0]
    structure_speedups = [ref / batch
                          for _, batch, ref in structure_runs]
    structure_speedup = statistics.median(structure_speedups)

    # -- engine level: coalesced windows vs per-packet receive ----------
    scalar_times, batch_times = [], []
    batch_snapshot = scalar_snapshot = None
    counters_before = _telemetry_counters()
    for _ in range(REPEATS):
        elapsed, scalar_snapshot = _run_pipeline("scalar")
        scalar_times.append(elapsed)
        elapsed, batch_snapshot = _run_pipeline("batch")
        batch_times.append(elapsed)
        assert scalar_snapshot == batch_snapshot, (
            "batch pipeline end state diverged from per-packet replay")
    counters_after = _telemetry_counters()

    scalar_s = statistics.median(scalar_times)
    batch_s = statistics.median(batch_times)
    pipeline_speedup = scalar_s / batch_s
    dropped = sum(1 for reason in batch_snapshot["drop_reasons"] if reason)
    deltas = {name: counters_after.get(name, 0.0)
              - counters_before.get(name, 0.0)
              for name in counters_after}

    record = {
        "scenario": {
            "packets": N_PACKETS, "window": WINDOW,
            "window_s": WINDOW_S, "repeats": REPEATS,
            "programs": ["heavy_hitter", "heavy_hitter_filter",
                         "lfa_detector", "packet_dropper",
                         "hop_count_filter"],
            "flagged_sources": len(FLAGGED_SOURCE_IDS),
            "blocked_flows": len(BLOCKED_FLOW_IDS),
            "program_drops": dropped,
        },
        "structures": {
            "per_structure": per_structure,
            "composite_speedup": round(structure_speedup, 2),
            "floor": STRUCTURE_FLOOR,
        },
        "pipeline": {
            "scalar_s": round(scalar_s, 3),
            "batch_s": round(batch_s, 3),
            "scalar_pps": round(N_PACKETS / scalar_s),
            "batch_pps": round(N_PACKETS / batch_s),
            "speedup": round(pipeline_speedup, 2),
            "floor": PIPELINE_FLOOR,
            "target": 10.0,
        },
        "telemetry": deltas,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_dataplane: structures {structure_speedup:.1f}x "
          f"(floor {STRUCTURE_FLOOR}x), pipeline {pipeline_speedup:.1f}x "
          f"({N_PACKETS / batch_s:,.0f} pps batch vs "
          f"{N_PACKETS / scalar_s:,.0f} pps scalar, floor "
          f"{PIPELINE_FLOOR}x) -> {BENCH_PATH.name}")

    # The batch engine must actually be coalescing, not falling back.
    assert deltas.get("dataplane_batch_packets_total", 0) > 0
    assert structure_speedup >= STRUCTURE_FLOOR, (
        f"batch structure kernels regressed: {structure_speedup:.2f}x "
        f"composite over the sequential references (floor "
        f"{STRUCTURE_FLOOR}x)")
    assert pipeline_speedup >= PIPELINE_FLOOR, (
        f"batch pipeline regressed: {pipeline_speedup:.2f}x over "
        f"per-packet receive (floor {PIPELINE_FLOOR}x, target 10x)")
