"""Microbenchmark — the routing hot path (PR trajectory bench).

Times the workload the versioned route cache was built for: repeated TE
passes over a 50-switch / 60-host topology with mid-run link removals
(the SDN baseline's periodic reconfiguration under a changing network).
The cached variant runs :func:`greedy_min_max_te` on top of the route
cache; the reference variant replays the pre-cache behaviour — the same
greedy selection but with candidates from
:func:`k_shortest_paths_reference` (fresh networkx graph + Yen per
commodity, memoized only within a single pass, which is what the old
``candidate_cache`` dict did).

Results are printed and written to ``BENCH_routing.json`` at the repo
root so the numbers are comparable across PRs.

Run with
``PYTHONPATH=src python -m pytest benchmarks/test_microbench_routing.py -s``.
"""

import json
import random
import statistics
import time
from pathlib import Path as FsPath
from typing import Dict, Optional, Tuple

from repro import telemetry
from repro.core.te import greedy_min_max_te
from repro.netsim import (Simulator, k_shortest_paths_reference, make_flow,
                          random_topology)

N_SWITCHES = 50
N_HOSTS = 60
N_FLOWS = 120
N_PASSES = 6
K_PATHS = 4
REMOVE_AT = {2: 0, 4: 1}  # pass index -> removable-link index
REPEATS = 3
SEED = 42
BENCH_PATH = FsPath(__file__).resolve().parent.parent / "BENCH_routing.json"


def build_scenario():
    sim = Simulator(seed=SEED)
    topo = random_topology(sim, N_SWITCHES, N_HOSTS, extra_edges=30,
                           seed=SEED)
    rng = random.Random(SEED)
    hosts = topo.host_names
    flows = []
    for index in range(N_FLOWS):
        src, dst = rng.sample(hosts, 2)
        flows.append(make_flow(src, dst, rng.uniform(1e6, 5e9),
                               sport=1024 + index))
    return topo, flows


def removable_links(topo):
    """Switch-switch links whose removal keeps the network connected
    (everything outside a BFS spanning tree), deterministically ordered."""
    switches = set(topo.switch_names)
    adjacency: Dict[str, list] = {}
    for a, b in topo.duplex_pairs():
        if a in switches and b in switches:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
    root = sorted(adjacency)[0]
    seen = {root}
    tree = set()
    queue = [root]
    while queue:
        node = queue.pop(0)
        for neighbor in sorted(adjacency[node]):
            if neighbor not in seen:
                seen.add(neighbor)
                tree.add((node, neighbor) if node < neighbor
                         else (neighbor, node))
                queue.append(neighbor)
    extras = [pair for pair in topo.duplex_pairs()
              if pair[0] in switches and pair[1] in switches
              and pair not in tree]
    return extras


def reference_te_pass(topo, flows, k):
    """The pre-cache TE pass: same greedy min-max selection as
    :func:`greedy_min_max_te`, candidates from the networkx reference
    with the old per-pass memo dict."""
    candidate_cache: Dict[Tuple[str, str], tuple] = {}
    load = {key: 0.0 for key in topo.links}
    capacities = {key: link.capacity_bps for key, link in topo.links.items()}
    ordered = sorted(flows, key=lambda f: (-f.demand_bps, f.flow_id))
    worst_overall = 0.0
    for flow in ordered:
        pair = (flow.src, flow.dst)
        candidates = candidate_cache.get(pair)
        if candidates is None:
            candidates = k_shortest_paths_reference(topo, flow.src,
                                                    flow.dst, k)
            candidate_cache[pair] = candidates
        best_path, best_cost = None, (float("inf"), float("inf"))
        for path in candidates:
            worst = 0.0
            for key in path.link_keys:
                worst = max(worst,
                            (load[key] + flow.demand_bps) / capacities[key])
            cost = (worst, path.latency(topo))
            if cost < best_cost:
                best_cost, best_path = cost, path
        for key in best_path.link_keys:
            load[key] += flow.demand_bps
        worst_overall = max(worst_overall, best_cost[0])
    return worst_overall


def run_workload(use_reference):
    """N_PASSES TE passes with link removals mid-run; returns the
    elapsed seconds and the per-pass objective values (for the
    equivalence check between variants)."""
    topo, flows = build_scenario()
    removable = removable_links(topo)
    objectives = []
    start = time.perf_counter()
    for index in range(N_PASSES):
        link_index = REMOVE_AT.get(index)
        if link_index is not None:
            a, b = removable[link_index]
            topo.remove_link(a, b)
        if use_reference:
            objectives.append(round(reference_te_pass(topo, flows,
                                                      K_PATHS), 9))
        else:
            te = greedy_min_max_te(topo, flows, k=K_PATHS, assign=False)
            objectives.append(round(te.max_utilization, 9))
    return time.perf_counter() - start, objectives


TELEMETRY_COUNTERS = (
    "routing_cache_hits_total",
    "routing_cache_misses_total",
    "routing_sssp_recomputes_total",
    "routing_graph_rebuilds_total",
    "routing_candidates_invalidated_total",
)


def telemetry_counters():
    registry = telemetry.metrics()
    out = {}
    for name in TELEMETRY_COUNTERS:
        if name not in registry:
            out[name] = 0.0
            continue
        snap = registry.get(name).snapshot()
        labels = snap.get("labels")
        if labels:
            for label, value in labels.items():
                out[f"{name}:{label}"] = value
        else:
            out[name] = snap["value"]
    return out


def test_routing_cache_speedup():
    cached_runs, reference_runs = [], []
    cached_objectives: Optional[list] = None
    counters_before = telemetry_counters()
    for _ in range(REPEATS):
        elapsed, objectives = run_workload(use_reference=False)
        cached_runs.append(elapsed * 1e3)
        cached_objectives = objectives
    counters_after = telemetry_counters()
    for _ in range(REPEATS):
        elapsed, reference_objectives = run_workload(use_reference=True)
        reference_runs.append(elapsed * 1e3)

    # Both variants must agree on the TE objective of every pass —
    # equal-cost candidate reorderings may pick different paths, but the
    # min-max objective they optimize is tie-invariant.
    assert cached_objectives == reference_objectives

    cached_ms = statistics.median(cached_runs)
    reference_ms = statistics.median(reference_runs)
    speedup = reference_ms / cached_ms
    deltas = {name: counters_after.get(name, 0.0)
              - counters_before.get(name, 0.0)
              for name in counters_after}

    record = {
        "scenario": {"switches": N_SWITCHES, "hosts": N_HOSTS,
                     "flows": N_FLOWS, "te_passes": N_PASSES,
                     "k": K_PATHS, "link_removals": len(REMOVE_AT),
                     "repeats": REPEATS},
        "cached_ms": round(cached_ms, 3),
        "reference_ms": round(reference_ms, 3),
        "speedup": round(speedup, 2),
        "telemetry": deltas,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_routing: cached {cached_ms:.1f} ms, "
          f"reference {reference_ms:.1f} ms, speedup {speedup:.1f}x "
          f"-> {BENCH_PATH.name}")

    # Candidate memo must be doing its job: later passes over the
    # unchanged topology should hit, not recompute.
    assert deltas.get("routing_cache_hits_total:yen", 0) > 0
    assert speedup >= 3.0, (
        f"routing cache regressed: only {speedup:.2f}x over the networkx "
        f"reference on {N_SWITCHES} switches / {N_PASSES} TE passes")
