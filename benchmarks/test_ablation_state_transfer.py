"""Ablation — state transfer under loss, with and without FEC (§3.4).

State-carrying packets share flooded links with the attack; the paper
prescribes FEC so single losses per group are repaired in the data
plane.  This bench sweeps link overload levels and reports transfer
success rates with FEC on and off, plus the analytic survival model.
"""

import pytest

from repro.core import StateTransferService
from repro.dataplane import loss_survival_probability
from repro.netsim import (Simulator, figure2_topology, install_host_routes,
                          install_switch_routes)

PAYLOAD = {"table": {i: i * 7 for i in range(40)}}
ATTEMPTS = 30


def run_sweep(group_size, overload_factor, seed=11):
    """Success fraction of ``ATTEMPTS`` transfers across a lossy link."""
    sim = Simulator(seed=seed)
    net = figure2_topology(sim)
    install_host_routes(net.topo)
    install_switch_routes(net.topo)
    service = StateTransferService(net.topo, group_size=group_size,
                                   symbols_per_packet=1, deadline_s=0.3)
    service.install_agents()
    link = net.topo.link("sL", "s1")
    link.fluid_load_bps = link.capacity_bps * overload_factor
    results = []
    for index in range(ATTEMPTS):
        sim.schedule(index * 0.5, service.send, "sL", "sR", PAYLOAD,
                     results.append)
    sim.run(until=ATTEMPTS * 0.5 + 2.0)
    assert len(results) == ATTEMPTS
    ok = sum(r.success for r in results)
    recovered = sum(r.recovered_by_fec for r in results)
    return ok / ATTEMPTS, recovered


def test_fec_beats_raw_under_loss(benchmark):
    def sweep():
        rows = []
        for overload in (1.0, 1.02, 1.05, 1.10):
            with_fec, recovered = run_sweep(4, overload)
            without_fec, _ = run_sweep(None, overload)
            rows.append((overload, with_fec, without_fec, recovered))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'overload':>9}{'FEC ok':>8}{'raw ok':>8}{'repaired words':>16}")
    for overload, with_fec, without_fec, recovered in rows:
        print(f"{overload:>9.2f}{with_fec:>8.1%}{without_fec:>8.1%}"
              f"{recovered:>16d}")
        assert with_fec >= without_fec
    # Lossless: both perfect.
    assert rows[0][1] == 1.0 and rows[0][2] == 1.0
    # Mild loss: FEC keeps transfers alive notably better.
    mild = rows[1]
    assert mild[1] > mild[2]
    benchmark.extra_info["rows"] = [
        {"overload": o, "fec": f, "raw": r} for o, f, r, _ in rows]


def test_survival_model_tracks_measurement(benchmark):
    """The closed-form group-survival model vs. measured transfers."""
    overload = 1.05
    loss = 1.0 - 1.0 / overload

    def measure():
        return run_sweep(4, overload)

    measured, _ = benchmark.pedantic(measure, rounds=1, iterations=1)
    # A transfer needs every group to survive; the payload spans ~60
    # words = 15 groups, each crossing one lossy link.
    group_survival = loss_survival_probability(loss, 4)
    predicted = group_survival ** 15
    assert measured == pytest.approx(predicted, abs=0.35)
    print()
    print(f"measured success {measured:.1%} vs model {predicted:.1%} "
          f"at {loss:.1%} symbol loss")


def test_redundancy_overhead_tradeoff(benchmark):
    """Smaller FEC groups mean more parity overhead but more repair."""
    from repro.dataplane import FecEncoder

    def sweep():
        rows = []
        for group_size in (2, 4, 8):
            ok, _ = run_sweep(group_size, 1.05)
            overhead = FecEncoder(group_size).overhead_ratio(60)
            rows.append((group_size, ok, overhead))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for group_size, ok, overhead in rows:
        print(f"group={group_size}: success {ok:.1%}, "
              f"overhead {overhead:.1%}")
    overheads = [r[2] for r in rows]
    assert overheads == sorted(overheads, reverse=True)
