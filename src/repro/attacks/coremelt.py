"""The Coremelt attack ([74], cited alongside Crossfire in §1 and §4).

Coremelt differs from Crossfire in a crucial way: the bots send traffic
*to each other*, so there is no victim endpoint at all — only the
network core suffers.  N bots yield O(N^2) bot pairs; the attacker
selects the pairs whose paths cross the target link and drives
legitimate-looking traffic between them.

Defense-wise this exercises the paper's "the network is the end" class:
only an in-network defense can even see the problem, since every
endpoint involved is attacker-controlled and perfectly happy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..netsim.flows import make_flow
from ..netsim.fluid import FluidNetwork
from ..netsim.routing import NoRouteError, default_path_for
from ..netsim.topology import Topology
from .base import Attacker


class CoremeltAttacker(Attacker):
    """Pairwise bot-to-bot flooding of a target core link."""

    def __init__(self, topo: Topology, fluid: FluidNetwork,
                 left_bots: List[str], right_bots: List[str],
                 connections_per_pair: int = 100,
                 per_connection_bps: float = 10e6):
        super().__init__(topo, fluid)
        if not left_bots or not right_bots:
            raise ValueError("Coremelt needs bots on both sides of "
                             "the core")
        self.left_bots = list(left_bots)
        self.right_bots = list(right_bots)
        self.connections_per_pair = connections_per_pair
        self.per_connection_bps = per_connection_bps
        self.target_link: Optional[Tuple[str, str]] = None

    # ------------------------------------------------------------------
    def eligible_pairs(self, target_link: Tuple[str, str]) -> List[tuple]:
        """Bot pairs whose current network path crosses the target."""
        pairs = []
        for left in self.left_bots:
            for right in self.right_bots:
                try:
                    path = default_path_for(self.topo, left, right)
                except NoRouteError:
                    continue
                if target_link in path.links():
                    pairs.append((left, right, path))
        return pairs

    def launch(self, target_link: Tuple[str, str],
               start_delay: float = 0.0) -> int:
        """Start pairwise flows over the target link; returns how many
        pairs the attacker could aim at it."""
        self.target_link = target_link
        pairs = self.eligible_pairs(target_link)
        start = self.sim.now + start_delay
        for index, (left, right, path) in enumerate(pairs):
            flow = make_flow(
                left, right,
                demand_bps=self.connections_per_pair
                * self.per_connection_bps,
                weight=float(self.connections_per_pair),
                sport=30_000 + index, start_time=start)
            flow.set_path(path)
            self.register_flow(flow)
        self.log("launch",
                 f"coremelt: {len(pairs)} bot pairs over "
                 f"{target_link[0]}->{target_link[1]}")
        return len(pairs)
