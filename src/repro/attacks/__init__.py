"""Attack models: Crossfire LFA, rolling LFA, pulsing, volumetric DDoS,
and multi-vector combinations.  Attackers control endpoints only; they
observe the network through traceroute and their own goodput."""

from .base import AttackEvent, Attacker
from .coremelt import CoremeltAttacker
from .crossfire import CrossfireAttacker
from .pulsing import PulsingAttacker
from .rolling import RollingAttacker
from .volumetric import (MultiVectorAttacker, VolumetricDdosAttacker,
                         attack_packet_stream)

__all__ = [
    "AttackEvent", "Attacker", "CoremeltAttacker", "CrossfireAttacker",
    "MultiVectorAttacker",
    "PulsingAttacker", "RollingAttacker", "VolumetricDdosAttacker",
    "attack_packet_stream",
]
