"""Volumetric and multi-vector DDoS attacks ([12, 31, 34, 70]).

Volumetric floods are the classic high-rate UDP barrage against an
endpoint: inelastic flows that do not back off, detectable as heavy
hitters.  The multi-vector attacker combines a volumetric flood with a
simultaneous LFA elsewhere in the network — the Figure 2 caption's
"mixed-vector attacks would trigger co-existing modes at different
regions" scenario, exercised by the Figure 2 benchmark.

Besides fluid flows, this module offers a packet-stream generator for
the packet-level boosters (HashPipe, hop-count filter): synthetic DATA
packets with a configurable mix of attack and background sources.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from ..netsim.flows import make_flow
from ..netsim.fluid import FluidNetwork
from ..netsim.packet import Packet, Protocol
from ..netsim.routing import shortest_path
from ..netsim.topology import Topology
from .base import Attacker
from .crossfire import CrossfireAttacker


class VolumetricDdosAttacker(Attacker):
    """High-rate inelastic (UDP) flood straight at the victim."""

    def __init__(self, topo: Topology, fluid: FluidNetwork,
                 bots: List[str], victim: str,
                 rate_per_bot_bps: float = 5e9):
        super().__init__(topo, fluid)
        self.bots = list(bots)
        self.victim = victim
        self.rate_per_bot_bps = rate_per_bot_bps

    def launch(self, start_delay: float = 0.0,
               duration_s: Optional[float] = None) -> None:
        start = self.sim.now + start_delay
        end = None if duration_s is None else start + duration_s
        for index, bot in enumerate(self.bots):
            flow = make_flow(
                bot, self.victim, demand_bps=self.rate_per_bot_bps,
                proto=Protocol.UDP, elastic=False,
                sport=4096 + index, dport=53,
                start_time=start, end_time=end)
            flow.set_path(shortest_path(self.topo, bot, self.victim))
            self.register_flow(flow)
        self.log("launch", f"{len(self.bots)} bots x "
                           f"{self.rate_per_bot_bps / 1e9:.1f} Gbps UDP")


class MultiVectorAttacker:
    """LFA in one region plus a volumetric flood in another."""

    def __init__(self, topo: Topology, fluid: FluidNetwork,
                 lfa_bots: List[str], decoys: List[str], lfa_victim: str,
                 ddos_bots: List[str], ddos_victim: str,
                 **crossfire_kwargs):
        self.lfa = CrossfireAttacker(topo, fluid, lfa_bots, decoys,
                                     lfa_victim, **crossfire_kwargs)
        self.ddos = VolumetricDdosAttacker(topo, fluid, ddos_bots,
                                           ddos_victim)

    def launch(self, lfa_delay_s: float = 0.0,
               ddos_delay_s: float = 0.0) -> None:
        self.lfa.map_then_attack(start_delay=lfa_delay_s)
        self.ddos.launch(start_delay=ddos_delay_s)


def attack_packet_stream(rng: random.Random, attack_sources: List[str],
                         background_sources: List[str], victim: str,
                         n_packets: int, attack_fraction: float = 0.8,
                         attack_size_bytes: int = 1200,
                         background_size_bytes: int = 400,
                         spoof_ttl: bool = False) -> Iterator[Packet]:
    """Synthetic per-packet workload for packet-level boosters.

    ``spoof_ttl=True`` randomizes attack packets' TTLs (spoofed sources
    at fake distances) — the hop-count filter's target workload.
    """
    if not 0 <= attack_fraction <= 1:
        raise ValueError("attack_fraction must be in [0, 1]")
    if not attack_sources or not background_sources:
        raise ValueError("need both attack and background sources")
    for index in range(n_packets):
        is_attack = rng.random() < attack_fraction
        if is_attack:
            src = rng.choice(attack_sources)
            size = attack_size_bytes
            ttl = rng.randint(4, 60) if spoof_ttl else 60
        else:
            src = rng.choice(background_sources)
            size = background_size_bytes
            ttl = 60
        yield Packet(src=src, dst=victim, size_bytes=size,
                     proto=Protocol.UDP, sport=1024 + index % 64000,
                     dport=53 if is_attack else 80, ttl=ttl)
