"""Common attacker machinery.

Attackers control endpoints (bots), never the network: they launch
flows, observe the network exactly the way a real adversary can —
traceroute replies and their own flows' goodput — and adapt.  Ground
truth (``Flow.malicious``) is set for evaluation only; no defense code
reads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..netsim.flows import Flow
from ..netsim.fluid import FluidNetwork
from ..netsim.topology import Topology


@dataclass
class AttackEvent:
    """Something the attacker did or perceived (for experiment logs)."""

    time: float
    kind: str           # "launch", "roll", "pause", "resume", "perceived_success"
    detail: str = ""


class Attacker:
    """Base class: flow bookkeeping and the event log."""

    def __init__(self, topo: Topology, fluid: FluidNetwork):
        self.topo = topo
        self.fluid = fluid
        self.sim = topo.sim
        self.flows: List[Flow] = []
        self.events: List[AttackEvent] = []

    def log(self, kind: str, detail: str = "") -> None:
        self.events.append(AttackEvent(self.sim.now, kind, detail))

    def register_flow(self, flow: Flow) -> Flow:
        flow.malicious = True
        self.fluid.flows.add(flow)
        self.flows.append(flow)
        return flow

    def stop_all_flows(self) -> None:
        now = self.sim.now
        for flow in self.flows:
            if flow.end_time is None or flow.end_time > now:
                flow.end_time = now

    def attack_goodput(self) -> float:
        now = self.sim.now
        return sum(f.goodput_bps for f in self.flows if f.active(now))

    def attack_offered(self) -> float:
        now = self.sim.now
        return sum(f.demand_bps for f in self.flows if f.active(now))

    def rolls(self) -> List[AttackEvent]:
        return [e for e in self.events if e.kind == "roll"]
