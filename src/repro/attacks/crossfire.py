"""The Crossfire link-flooding attack ([44], §4).

The attack proceeds exactly as the paper describes it:

1. **Map** — the adversary traceroutes from bots to public (decoy)
   servers near the victim, assembling the reported victim-ward paths
   and identifying the critical link(s) that carry them.
2. **Flood** — each bot opens *many individually legitimate, low-rate
   TCP connections* to the decoys (one weighted elastic flow per
   bot-decoy assignment in the fluid model), collectively saturating the
   target link while every connection stays indistinguishable from a
   slow web client.

The attacker can choose bot/decoy pairs so that their connections
traverse the intended link; we realize that ability by pinning each
attack flow onto the traceroute-reported victim-ward path with the decoy
substituted as the endpoint (see DESIGN.md).  The network remains free
to reroute those flows afterward — the attacker controls endpoints, not
switches.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..netsim.flows import make_flow
from ..netsim.fluid import FluidNetwork
from ..netsim.routing import Path
from ..netsim.topology import Topology
from ..netsim.traceroute import TracerouteClient, TracerouteResult
from .base import Attacker


class CrossfireAttacker(Attacker):
    """Maps the victim-ward path, then floods it with low-rate flows."""

    def __init__(self, topo: Topology, fluid: FluidNetwork,
                 bots: List[str], decoys: List[str], victim: str,
                 connections_per_bot: int = 200,
                 per_connection_bps: float = 10e6,
                 trace_timeout_s: float = 0.3):
        super().__init__(topo, fluid)
        if not bots or not decoys:
            raise ValueError("need at least one bot and one decoy")
        self.bots = list(bots)
        self.decoys = list(decoys)
        self.victim = victim
        self.connections_per_bot = connections_per_bot
        self.per_connection_bps = per_connection_bps
        #: The reference tracer: the first bot probes the victim-ward path.
        self.tracer = TracerouteClient(topo, self.bots[0],
                                       timeout_s=trace_timeout_s)
        #: The victim-ward path as last reported by traceroute.
        self.observed_path: Optional[List[str]] = None
        #: The path the flood is currently pinned along (switch hops).
        self.target_hops: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Phase 1: mapping
    # ------------------------------------------------------------------
    def map_then_attack(self, start_delay: float = 0.0) -> None:
        """Traceroute the victim-ward path, then launch the flood."""
        self.sim.schedule(start_delay, self._map)

    def _map(self) -> None:
        self.tracer.trace(self.victim, callback=self._on_mapped)

    def _on_mapped(self, result: TracerouteResult) -> None:
        hops = self._switch_hops(result)
        if not hops:
            # Mapping failed (lost probes); retry shortly.
            self.sim.schedule(0.5, self._map)
            return
        self.observed_path = hops
        self.target_hops = hops
        self.log("launch", f"target path {'->'.join(hops)}")
        self.launch_flood(hops)

    def _switch_hops(self, result: TracerouteResult) -> List[str]:
        """The reported path's switch hops (drop the destination entry)."""
        path = result.path
        if result.reached and path and path[-1] == result.dst:
            path = path[:-1]
        switch_names = set(self.topo.switch_names)
        return [hop for hop in path if hop in switch_names]

    @property
    def target_link(self) -> Optional[Tuple[str, str]]:
        """The last switch-switch hop of the pinned path — the critical
        link the flood lands on."""
        if self.target_hops is None or len(self.target_hops) < 2:
            return None
        return (self.target_hops[-2], self.target_hops[-1])

    # ------------------------------------------------------------------
    # Phase 2: flooding
    # ------------------------------------------------------------------
    def launch_flood(self, hops: List[str]) -> None:
        """Start one weighted flow per bot along the mapped path."""
        for index, bot in enumerate(self.bots):
            decoy = self.decoys[index % len(self.decoys)]
            flow = make_flow(
                bot, decoy,
                demand_bps=self.connections_per_bot * self.per_connection_bps,
                weight=float(self.connections_per_bot),
                sport=1024 + index, dport=80,
                start_time=self.sim.now)
            flow.set_path(self._pin_path(bot, decoy, hops))
            self.register_flow(flow)

    def repin_flood(self, hops: List[str]) -> None:
        """Move the existing flood onto a new victim-ward path."""
        self.target_hops = hops
        now = self.sim.now
        for flow in self.flows:
            if flow.active(now):
                flow.set_path(self._pin_path(flow.src, flow.dst, hops))

    def _pin_path(self, bot: str, decoy: str, hops: List[str]) -> Path:
        """[bot] + reported switch hops + [decoy].

        The decoy attaches to the same edge as the victim; if the mapped
        path's last switch is not the decoy's gateway, extend it.
        """
        gateway = self.topo.host(decoy).gateway
        nodes = [bot] + list(hops)
        if nodes[-1] != gateway:
            nodes.append(gateway)
        nodes.append(decoy)
        return Path.of(nodes)
