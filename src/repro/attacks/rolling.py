"""Rolling link-flooding attacks ([44, 80], §4).

The rolling attacker extends Crossfire with the feedback loop that
defeats reactive TE: it periodically re-traceroutes the victim-ward path
and, whenever the *reported* path differs from the one its flood is
pinned on, concludes a routing change happened and rolls — re-pinning
the flood onto wherever the victim's traffic now flows.  Because
centralized TE reacts on a timescale of minutes, each roll buys the
attacker another window of damage.

Against FastFlex the loop breaks twice over: topology obfuscation keeps
the reported path frozen at the pre-attack view (no change to detect),
and the packet-dropping booster's "illusion of success" — the attacker
sees its connections starving, which looks like a working attack — is a
positive reason to stay put.
"""

from __future__ import annotations

from typing import List, Optional

from ..netsim.fluid import FluidNetwork
from ..netsim.topology import Topology
from ..netsim.traceroute import TracerouteResult
from .crossfire import CrossfireAttacker


class RollingAttacker(CrossfireAttacker):
    """Crossfire plus the detect-and-roll loop."""

    def __init__(self, topo: Topology, fluid: FluidNetwork,
                 bots: List[str], decoys: List[str], victim: str,
                 check_period_s: float = 1.0,
                 reaction_delay_s: float = 1.0,
                 max_rolls: Optional[int] = None,
                 **crossfire_kwargs):
        super().__init__(topo, fluid, bots, decoys, victim,
                         **crossfire_kwargs)
        self.check_period_s = check_period_s
        #: Time between noticing a change and completing the re-pin
        #: (attacker-side orchestration latency).
        self.reaction_delay_s = reaction_delay_s
        self.max_rolls = max_rolls
        self.roll_count = 0
        self.perceived_success = False
        self._checking = False
        self._roll_pending = False

    # ------------------------------------------------------------------
    def map_then_attack(self, start_delay: float = 0.0) -> None:
        super().map_then_attack(start_delay)
        self.sim.every(self.check_period_s, self._periodic_check,
                       start=start_delay + self.check_period_s)

    def _periodic_check(self) -> None:
        if (self.target_hops is None or self._checking
                or self._roll_pending):
            return
        if self.max_rolls is not None and self.roll_count >= self.max_rolls:
            return
        self._checking = True
        self.tracer.trace(self.victim, callback=self._on_check_result)

    # ------------------------------------------------------------------
    def _on_check_result(self, result: TracerouteResult) -> None:
        self._checking = False
        hops = self._switch_hops(result)
        if not hops or self.target_hops is None:
            return
        if hops == self.target_hops:
            # No routing change visible.  If our connections are starving
            # anyway, the attack *looks* like it is working (the illusion
            # of success) — stay the course.
            if self._flows_starving() and not self.perceived_success:
                self.perceived_success = True
                self.log("perceived_success",
                         "connections starving on an unchanged path")
            return
        # The network moved the victim-ward path: roll onto it.
        self._roll_pending = True
        self.log("roll_detected",
                 f"path changed {'->'.join(self.target_hops)} => "
                 f"{'->'.join(hops)}")
        self.sim.schedule(self.reaction_delay_s, self._complete_roll, hops)

    def _complete_roll(self, hops: List[str]) -> None:
        self._roll_pending = False
        if self.max_rolls is not None and self.roll_count >= self.max_rolls:
            return
        self.roll_count += 1
        self.perceived_success = False
        self.repin_flood(hops)
        self.log("roll", f"round {self.roll_count}: now flooding "
                         f"{'->'.join(hops)}")

    # ------------------------------------------------------------------
    def _flows_starving(self) -> bool:
        """Do our connections get only a trickle of their demand?"""
        now = self.sim.now
        offered = sum(f.demand_bps for f in self.flows if f.active(now))
        if offered <= 0:
            return False
        achieved = sum(f.goodput_bps for f in self.flows if f.active(now))
        return achieved < 0.25 * offered
