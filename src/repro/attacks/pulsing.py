"""Pulsing denial-of-service attacks ([1, 54], Figure 2 caption).

A pulsing attacker alternates short high-intensity bursts with quiet
periods.  Against a naive multimode defense this induces *mode flapping*
— enter mitigation on every burst, fall back to default in every gap —
which is exactly the §6 stability threat the
:class:`~repro.core.stability.StabilityGuard` exists for.  The stability
ablation runs this attacker with and without the guard.
"""

from __future__ import annotations

from typing import List, Optional

from ..netsim.flows import make_flow
from ..netsim.fluid import FluidNetwork
from ..netsim.routing import Path, shortest_path
from ..netsim.topology import Topology
from .base import Attacker


class PulsingAttacker(Attacker):
    """Square-wave offered load toward the victim-ward links."""

    def __init__(self, topo: Topology, fluid: FluidNetwork,
                 bots: List[str], decoys: List[str],
                 on_duration_s: float = 1.0, off_duration_s: float = 1.0,
                 connections_per_bot: int = 200,
                 per_connection_bps: float = 10e6,
                 path: Optional[Path] = None):
        super().__init__(topo, fluid)
        if on_duration_s <= 0 or off_duration_s <= 0:
            raise ValueError("pulse durations must be positive")
        self.bots = list(bots)
        self.decoys = list(decoys)
        self.on_duration_s = on_duration_s
        self.off_duration_s = off_duration_s
        self.connections_per_bot = connections_per_bot
        self.per_connection_bps = per_connection_bps
        self.forced_path = path
        self.pulses = 0
        self._burst_demand = connections_per_bot * per_connection_bps

    def start(self, delay_s: float = 0.0) -> None:
        """Create the (initially idle) flows and begin pulsing."""
        for index, bot in enumerate(self.bots):
            decoy = self.decoys[index % len(self.decoys)]
            flow = make_flow(
                bot, decoy, demand_bps=0.0,
                weight=float(self.connections_per_bot),
                sport=2048 + index, start_time=self.sim.now)
            path = (self.forced_path
                    if self.forced_path is not None
                    else shortest_path(self.topo, bot, decoy))
            flow.set_path(path)
            self.register_flow(flow)
        self.sim.schedule(delay_s, self._burst_on)

    # ------------------------------------------------------------------
    def _burst_on(self) -> None:
        self.pulses += 1
        self.log("resume", f"pulse {self.pulses} on")
        for flow in self.flows:
            flow.demand_bps = self._burst_demand
        self.sim.schedule(self.on_duration_s, self._burst_off)

    def _burst_off(self) -> None:
        self.log("pause", f"pulse {self.pulses} off")
        for flow in self.flows:
            flow.demand_bps = 0.0
        self.sim.schedule(self.off_duration_s, self._burst_on)
