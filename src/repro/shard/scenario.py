"""Shard scenarios: fluid-only workloads with a single-engine reference.

A :class:`ShardScenario` is a fully declarative description of a run —
topology recipe, flow specs, scheduled demand changes, fluid/sampling
cadence — that both execution paths consume:

* :func:`run_single` builds everything on ONE simulator and runs it to
  the horizon: the single-process reference the determinism contract is
  stated against.
* :class:`repro.shard.coordinator.ShardCoordinator` partitions the same
  scenario across regions and must reproduce :func:`run_single`'s
  stable record byte-for-byte in ``exact`` sync mode.

Scenarios are JSON-serializable (:meth:`ShardScenario.to_dict` /
:meth:`ShardScenario.from_dict`) so the coordinator can embed them in
checkpoint manifests and resume a sharded run in a fresh process.

Why ``math.fsum`` for the goodput series: the single engine sums all
flows in one process, while the sharded run sums per-region lists in
region order.  A plain ``sum`` depends on addition order, so the two
could differ in the last ulp; ``fsum`` returns the correctly rounded
true sum, which is order-independent — the one aggregation that can be
byte-identical across any partitioning.  (``FluidNetwork.normal_goodput``
keeps its plain ``sum``: changing it would perturb the pinned figure3
outputs from earlier PRs.)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
import math
import random
from typing import Any, Dict, List, Optional, Tuple

from ..netsim.engine import Simulator
from ..netsim.flows import Flow, FlowSet, make_flow
from ..netsim.fluid import FluidNetwork
from ..netsim.routing import shortest_path
from ..netsim.topology import (Topology, figure2_topology, random_topology)

GBPS = 1e9
MBPS = 1e6


@dataclass
class FlowSpec:
    """One flow, declaratively (paths are computed at build time)."""

    src: str
    dst: str
    demand_bps: float
    weight: float = 1.0
    elastic: bool = True
    start_time: float = 0.0
    end_time: Optional[float] = None
    malicious: bool = False
    sport: int = 0


@dataclass
class DemandChange:
    """Scheduled mutation: at ``time_s`` set flow ``flow_index``'s
    demand to ``demand_bps`` (flow_index is the FlowSpec list index)."""

    time_s: float
    flow_index: int
    demand_bps: float


@dataclass
class ShardScenario:
    """A declarative, JSON-serializable shard workload."""

    topology: str = "figure2"
    topology_params: Dict[str, Any] = field(default_factory=dict)
    flows: List[FlowSpec] = field(default_factory=list)
    changes: List[DemandChange] = field(default_factory=list)
    seed: int = 0
    duration_s: float = 8.0
    fluid_interval_s: float = 0.01
    sample_period_s: float = 0.5
    tcp_tau: float = 0.05

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardScenario":
        data = dict(payload)
        data["flows"] = [FlowSpec(**f) for f in data.get("flows", [])]
        data["changes"] = [DemandChange(**c)
                           for c in data.get("changes", [])]
        return cls(**data)


# ----------------------------------------------------------------------
# Canned scenarios
# ----------------------------------------------------------------------

def figure3_scenario(seed: int = 0, duration_s: float = 8.0,
                     n_clients: int = 4, n_bots: int = 6,
                     attack_start_s: float = 5.0,
                     fluid_interval_s: float = 0.01,
                     sample_period_s: float = 0.5) -> ShardScenario:
    """The figure3 workload, fluid-only: clients sending to the victim
    over the Figure 2 network, a Crossfire-style bot wave joining at
    ``attack_start_s``, plus seeded mid-run demand churn so the sharded
    allocator faces both active-set changes and version bumps."""
    flows: List[FlowSpec] = []
    for i in range(n_clients):
        flows.append(FlowSpec(src=f"client{i}", dst="victim",
                              demand_bps=1.5 * GBPS, sport=10000 + i))
    for i in range(n_bots):
        flows.append(FlowSpec(src=f"bot{i}", dst="victim",
                              demand_bps=200 * 10 * MBPS, weight=200.0,
                              malicious=True, start_time=attack_start_s,
                              sport=20000 + i))
    rng = random.Random(f"figure3_scenario:{seed}")
    changes: List[DemandChange] = []
    for i in range(n_clients):
        for _ in range(2):
            changes.append(DemandChange(
                time_s=rng.uniform(0.5, max(duration_s - 0.5, 1.0)),
                flow_index=i,
                demand_bps=1.5 * GBPS * rng.choice((0.5, 0.75, 1.25))))
    return ShardScenario(
        topology="figure2",
        topology_params={"n_clients": n_clients, "n_bots": n_bots},
        flows=flows, changes=changes, seed=seed, duration_s=duration_s,
        fluid_interval_s=fluid_interval_s,
        sample_period_s=sample_period_s)


def random_scenario(seed: int = 0, n_switches: int = 50,
                    n_hosts: int = 100, n_flows: int = 500,
                    extra_edges: int = 25,
                    duration_s: float = 2.0,
                    fluid_interval_s: float = 0.1,
                    sample_period_s: float = 0.5,
                    link_capacity_bps: float = 10 * GBPS,
                    demand_levels_bps: Tuple[float, ...] = (
                        50 * MBPS, 120 * MBPS, 300 * MBPS, 700 * MBPS),
                    locality: int = 1,
                    churn_per_epoch: int = 0,
                    source_hosts: Optional[int] = None) -> ShardScenario:
    """A random-topology workload with graph-local flows.

    Flows connect hosts a few switch hops apart (``locality`` bounds the
    BFS radius of the destination's switch from the source's), which is
    what makes partitioning profitable: a low edge cut keeps most flows
    interior to one region.  ``churn_per_epoch`` schedules that many
    demand changes inside every fluid epoch, defeating the steady-state
    fast path on purpose — the benchmark uses it to make allocator
    passes, not smoothing, the dominant cost.  ``source_hosts`` bounds
    how many distinct hosts originate flows (bounding Dijkstra-tree
    count at path-assignment time).
    """
    rng = random.Random(f"random_scenario:{seed}")
    # Rebuild the exact topology the builders will construct (cheap: no
    # simulator events) so flow endpoints can be sampled with locality.
    probe_topo = random_topology(Simulator(seed=seed), n_switches, n_hosts,
                                 extra_edges=extra_edges,
                                 link_capacity=link_capacity_bps, seed=seed)
    hosts_by_switch: Dict[str, List[str]] = {}
    for host_name in probe_topo.host_names:
        gateway = probe_topo.nodes[host_name].gateway
        hosts_by_switch.setdefault(gateway, []).append(host_name)
    for members in hosts_by_switch.values():
        members.sort()
    adjacency: Dict[str, List[str]] = {
        name: [] for name in probe_topo.switch_names}
    host_set = set(probe_topo.host_names)
    for a, b in probe_topo.duplex_pairs():
        if a in adjacency and b in adjacency:
            adjacency[a].append(b)
            adjacency[b].append(a)
    populated = sorted(hosts_by_switch)
    candidates: List[str] = []
    if source_hosts is not None:
        candidates = sorted(host_set)[:source_hosts]

    def _near_host(switch: str) -> Optional[str]:
        """A host attached within ``locality`` hops of ``switch``."""
        ring = [switch]
        seen = {switch}
        for _ in range(locality + 1):
            pool = [h for s in ring for h in hosts_by_switch.get(s, ())]
            if pool:
                return pool[rng.randrange(len(pool))]
            nxt = []
            for s in ring:
                for n in adjacency[s]:
                    if n not in seen:
                        seen.add(n)
                        nxt.append(n)
            ring = nxt
        return None

    flows: List[FlowSpec] = []
    attempts = 0
    while len(flows) < n_flows and attempts < 20 * n_flows:
        attempts += 1
        if candidates:
            src = candidates[rng.randrange(len(candidates))]
        else:
            anchor = populated[rng.randrange(len(populated))]
            src = _near_host(anchor)
        if src is None:
            continue
        dst = _near_host(probe_topo.nodes[src].gateway)
        if dst is None or dst == src:
            continue
        demand = demand_levels_bps[rng.randrange(len(demand_levels_bps))]
        flows.append(FlowSpec(src=src, dst=dst, demand_bps=demand,
                              sport=len(flows)))
    changes: List[DemandChange] = []
    if churn_per_epoch > 0 and flows:
        n_epochs = int(duration_s / fluid_interval_s)
        for epoch in range(n_epochs):
            when = (epoch + 0.5) * fluid_interval_s
            for _ in range(churn_per_epoch):
                idx = rng.randrange(len(flows))
                demand = demand_levels_bps[
                    rng.randrange(len(demand_levels_bps))]
                changes.append(DemandChange(time_s=when, flow_index=idx,
                                            demand_bps=demand))
    return ShardScenario(
        topology="random",
        topology_params={"n_switches": n_switches, "n_hosts": n_hosts,
                         "extra_edges": extra_edges,
                         "link_capacity": link_capacity_bps, "seed": seed},
        flows=flows, changes=changes, seed=seed, duration_s=duration_s,
        fluid_interval_s=fluid_interval_s,
        sample_period_s=sample_period_s)


# ----------------------------------------------------------------------
# Building and running
# ----------------------------------------------------------------------

def build_topology(scenario: ShardScenario, sim: Simulator) -> Topology:
    if scenario.topology == "figure2":
        return figure2_topology(sim, **scenario.topology_params).topo
    if scenario.topology == "random":
        return random_topology(sim, **scenario.topology_params)
    raise ValueError(f"unknown scenario topology {scenario.topology!r}")


def _set_demand(flow: Flow, demand_bps: float) -> None:
    """Scheduled-event target for a :class:`DemandChange` (module-level
    so region event queues stay checkpoint-picklable)."""
    flow.demand_bps = demand_bps


def build_world(scenario: ShardScenario
                ) -> Tuple[Simulator, Topology, FlowSet, List[Flow]]:
    """Construct the single-engine world: topology, routed flows (spec
    order), and the scheduled demand changes.  Shared by
    :func:`run_single` and the coordinator's pin planner."""
    sim = Simulator(seed=scenario.seed)
    topo = build_topology(scenario, sim)
    flows = FlowSet()
    flow_list: List[Flow] = []
    for spec in scenario.flows:
        flow = make_flow(spec.src, spec.dst, spec.demand_bps,
                         sport=spec.sport, weight=spec.weight,
                         elastic=spec.elastic, malicious=spec.malicious,
                         start_time=spec.start_time,
                         end_time=spec.end_time)
        flow.set_path(shortest_path(topo, spec.src, spec.dst))
        flows.add(flow)
        flow_list.append(flow)
    for change in scenario.changes:
        sim.schedule_at(change.time_s, _set_demand,
                        flow_list[change.flow_index], change.demand_bps)
    return sim, topo, flows, flow_list


class GoodputSampler:
    """Periodic per-flow goodput sampler, identical on both paths.

    Records raw per-flow goodput lists (normal and attack groups) at
    every sample tick; :func:`aggregate_samples` folds rows with
    ``math.fsum`` so the aggregate is independent of how flows are
    distributed across regions.  Started *after* the fluid process so a
    coincident tick samples post-update state — the same ordering
    ``build_world``-style constructions use for monitors.
    """

    __slots__ = ("sim", "normal_flows", "attack_flows", "records",
                 "_process")

    def __init__(self, sim: Simulator, normal_flows: List[Flow],
                 attack_flows: List[Flow]):
        self.sim = sim
        self.normal_flows = normal_flows
        self.attack_flows = attack_flows
        #: (time, [normal goodputs...], [attack goodputs...]) per tick.
        self.records: List[Tuple[float, List[float], List[float]]] = []
        self._process = None

    def start(self, period_s: float) -> "GoodputSampler":
        self._process = self.sim.every(period_s, self.sample)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def sample(self) -> None:
        self.records.append(
            (self.sim.now,
             [f.goodput_bps for f in self.normal_flows],
             [f.goodput_bps for f in self.attack_flows]))


def flow_finals(flow_list: List[Flow]) -> List[List[float]]:
    """Final per-flow observables, in list (spec) order."""
    return [[f.rate_bps, f.goodput_bps, f.bytes_delivered, f.loss_rate]
            for f in flow_list]


def aggregate_samples(record_lists: List[List[Tuple[float, List[float],
                                                    List[float]]]]
                      ) -> List[List[float]]:
    """Fold one or more samplers' raw records into
    ``[[t, normal_fsum, attack_fsum], ...]`` rows.

    Every sampler must tick the same grid (same period, same horizon).
    ``fsum`` over the concatenated per-flow lists is order-independent,
    so the fold over R regional samplers equals the fold over one global
    sampler — the keystone of the exact-mode parity contract.
    """
    if not record_lists:
        return []
    lengths = {len(records) for records in record_lists}
    if len(lengths) != 1:
        raise ValueError(
            f"samplers disagree on tick count: {sorted(lengths)}")
    rows: List[List[float]] = []
    for tick in range(lengths.pop()):
        time_s = record_lists[0][tick][0]
        normal: List[float] = []
        attack: List[float] = []
        for records in record_lists:
            row = records[tick]
            if row[0] != time_s:
                raise ValueError(
                    f"samplers disagree on tick time: {row[0]} vs {time_s}")
            normal.extend(row[1])
            attack.extend(row[2])
        rows.append([time_s, math.fsum(normal), math.fsum(attack)])
    return rows


def run_single(scenario: ShardScenario,
               window_s: Optional[float] = None) -> Dict[str, Any]:
    """Run the scenario on one simulator; returns its stable record.

    ``window_s`` slices the run via ``Simulator.run_windows`` —
    observationally free, pinned by a test — so callers can checkpoint
    at boundaries without changing results.
    """
    sim, topo, flows, flow_list = build_world(scenario)
    fluid = FluidNetwork(topo, flows,
                         update_interval=scenario.fluid_interval_s,
                         tcp_tau=scenario.tcp_tau)
    fluid.start()
    sampler = GoodputSampler(
        sim, [f for f in flow_list if not f.malicious],
        [f for f in flow_list if f.malicious])
    sampler.start(scenario.sample_period_s)
    if window_s is None:
        sim.run(until=scenario.duration_s)
    else:
        sim.run_windows(scenario.duration_s, window_s)
    return {
        "mode": "single",
        "seed": scenario.seed,
        "samples": aggregate_samples([sampler.records]),
        "flows": flow_finals(flow_list),
        "updates": fluid.updates,
        "allocation_passes": fluid.allocation_passes,
    }
