"""METIS-style greedy edge-cut partitioning of a :class:`Topology`.

The partitioner splits the switch graph into ``n_regions`` balanced,
mostly-contiguous regions while greedily minimizing the number of cut
(boundary) links — the same objective METIS optimizes, computed here
with a deterministic multi-source BFS growth plus one
Kernighan–Lin-style refinement sweep, so a few hundred switches
partition in milliseconds without a native dependency.

Determinism contract: given the same topology and ``seed``, the
partition — assignments, region member order, boundary map — is
byte-identical across runs, processes, and worker counts.  Every
iteration below runs over sorted or insertion-ordered collections; the
only randomness is one seed-derived :class:`random.Random` stream used
to pick the first BFS source.

Hosts are not partitioned independently: each host follows its gateway
switch (its single uplink), so a host and its access link are always
interior to one region and only switch-switch links can be cut.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
import random
from typing import Dict, List, Optional, Tuple

from ..netsim.topology import Topology

LinkKey = Tuple[str, str]


@dataclass
class Partition:
    """The output of :func:`partition_topology`."""

    n_regions: int
    #: Every node name (switches *and* hosts) -> region index.
    assignment: Dict[str, int]
    #: Region index -> sorted member node names.
    regions: List[List[str]] = field(default_factory=list)
    #: Directed cut links -> (src region, dst region).  Symmetric by
    #: construction: ``(a, b)`` is present iff ``(b, a)`` is.
    boundary: Dict[LinkKey, Tuple[int, int]] = field(default_factory=dict)
    #: Number of cut *physical* (duplex) links.
    cut_edges: int = 0

    def region_of(self, name: str) -> int:
        return self.assignment[name]

    def boundary_out(self, region: int) -> List[LinkKey]:
        """Cut links leaving ``region``, sorted for determinism."""
        return sorted(key for key, (src, _dst) in self.boundary.items()
                      if src == region)

    def min_boundary_delay(self, topo: Topology) -> Optional[float]:
        """The global lower bound on boundary-link propagation delay —
        the conservative window bound: a window no longer than this
        cannot create a cross-region causality violation (see DESIGN.md
        "Sharded simulation").  ``None`` when nothing is cut."""
        delays = [topo.links[key].delay_s for key in sorted(self.boundary)]
        return min(delays) if delays else None


def _switch_adjacency(topo: Topology) -> Dict[str, List[str]]:
    """Switch -> sorted neighbor switches (host links never count)."""
    switches = set(topo.switch_names)
    adjacency: Dict[str, List[str]] = {name: [] for name in topo.switch_names}
    for a, b in topo.duplex_pairs():
        if a in switches and b in switches:
            adjacency[a].append(b)
            adjacency[b].append(a)
    for name in adjacency:
        adjacency[name].sort()
    return adjacency


def _pick_sources(switches: List[str], adjacency: Dict[str, List[str]],
                  n_regions: int, rng: random.Random) -> List[str]:
    """One BFS source per region: a random first pick, then repeated
    farthest-point selection (max hop distance from the chosen set,
    ties broken by name) so sources spread across the graph."""
    sources = [switches[rng.randrange(len(switches))]]
    while len(sources) < n_regions:
        dist = {name: None for name in switches}
        queue = deque()
        for src in sources:
            dist[src] = 0
            queue.append(src)
        while queue:
            current = queue.popleft()
            for neighbor in adjacency[current]:
                if dist[neighbor] is None:
                    dist[neighbor] = dist[current] + 1
                    queue.append(neighbor)
        best = None
        best_rank = None
        for name in switches:
            if name in sources:
                continue
            # Unreachable switches (disconnected components) rank as
            # infinitely far, so each component gets a source first.
            rank = (dist[name] if dist[name] is not None else float("inf"))
            if best_rank is None or rank > best_rank \
                    or (rank == best_rank and name < best):
                best, best_rank = name, rank
        sources.append(best)
    return sources


def _grow_regions(switches: List[str], adjacency: Dict[str, List[str]],
                  sources: List[str]) -> Dict[str, int]:
    """Balanced multi-source BFS: the smallest region expands next, so
    region sizes stay within one node of each other whenever frontiers
    allow it."""
    assignment: Dict[str, int] = {}
    frontiers: List[deque] = []
    sizes = [0] * len(sources)
    for region, src in enumerate(sources):
        assignment[src] = region
        sizes[region] = 1
        frontiers.append(deque(adjacency[src]))
    unassigned = [name for name in switches if name not in assignment]
    while len(assignment) < len(switches):
        region = min(range(len(sources)), key=lambda r: (sizes[r], r))
        chosen = None
        frontier = frontiers[region]
        while frontier:
            candidate = frontier.popleft()
            if candidate not in assignment:
                chosen = candidate
                break
        if chosen is None:
            # Frontier exhausted (disconnected remainder): grab the
            # smallest-named unassigned switch so coverage is total.
            for name in unassigned:
                if name not in assignment:
                    chosen = name
                    break
        assignment[chosen] = region
        sizes[region] += 1
        frontier.extend(adjacency[chosen])
    return assignment


def _refine(switches: List[str], adjacency: Dict[str, List[str]],
            assignment: Dict[str, int], n_regions: int) -> None:
    """One KL-style sweep: move a switch to its neighbor-majority region
    when that strictly reduces the edge cut without emptying or badly
    unbalancing its current region."""
    sizes = [0] * n_regions
    for name in switches:
        sizes[assignment[name]] += 1
    floor = max(1, len(switches) // (2 * n_regions))
    for name in switches:
        current = assignment[name]
        if sizes[current] <= floor:
            continue
        counts = [0] * n_regions
        for neighbor in adjacency[name]:
            counts[assignment[neighbor]] += 1
        best = current
        for region in range(n_regions):
            if counts[region] > counts[best]:
                best = region
        if best != current and counts[best] > counts[current]:
            assignment[name] = best
            sizes[current] -= 1
            sizes[best] += 1


def partition_topology(topo: Topology, n_regions: int,
                       seed: int = 0) -> Partition:
    """Partition ``topo`` into ``n_regions`` regions (see module doc)."""
    if n_regions < 1:
        raise ValueError(f"n_regions must be >= 1, got {n_regions}")
    switches = topo.switch_names
    if not switches:
        raise ValueError(f"topology {topo.name!r} has no switches")
    if n_regions > len(switches):
        raise ValueError(
            f"cannot split {len(switches)} switches into {n_regions} "
            f"regions")
    adjacency = _switch_adjacency(topo)
    # Seed-derived stream, never ``sim.rng`` (same policy as
    # random_topology): partitioning must not perturb event tie-breaks.
    rng = random.Random(f"partition:{seed}")
    sources = _pick_sources(switches, adjacency, n_regions, rng)
    assignment = _grow_regions(switches, adjacency, sources)
    if n_regions > 1:
        _refine(switches, adjacency, assignment, n_regions)

    # Hosts follow their gateway switch.
    for host_name in topo.host_names:
        host = topo.nodes[host_name]
        gateway = getattr(host, "gateway", None)
        if gateway not in assignment:
            neighbors = sorted(host.links)
            gateway = neighbors[0] if neighbors else None
        assignment[host_name] = assignment.get(gateway, 0)

    regions: List[List[str]] = [[] for _ in range(n_regions)]
    for name in sorted(assignment):
        regions[assignment[name]].append(name)

    boundary: Dict[LinkKey, Tuple[int, int]] = {}
    for key in sorted(topo.links):
        src_region = assignment[key[0]]
        dst_region = assignment[key[1]]
        if src_region != dst_region:
            boundary[key] = (src_region, dst_region)
    cut_edges = len({(a, b) if a < b else (b, a) for (a, b) in boundary})
    return Partition(n_regions=n_regions, assignment=assignment,
                     regions=regions, boundary=boundary,
                     cut_edges=cut_edges)
