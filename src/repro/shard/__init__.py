"""Sharded region simulation with conservative boundary sync.

Splits one simulation across region workers (see DESIGN.md "Sharded
simulation"):

* :mod:`repro.shard.partition` — METIS-style greedy edge-cut
  partitioning of a :class:`~repro.netsim.topology.Topology` into
  balanced regions with a symmetric boundary-link map.
* :mod:`repro.shard.scenario` — declarative, JSON-serializable
  workloads plus :func:`run_single`, the single-process reference every
  determinism claim is stated against.
* :mod:`repro.shard.region` — one :class:`RegionWorld` per region: a
  normal simulator + per-shard fluid allocator over a sub-topology.
* :mod:`repro.shard.workers` — resident worker processes: each region
  lives in one long-lived process for the whole run, built fresh there
  (or unpacked once on resume); the per-window wire carries only the
  outbox, boundary report and new sample records, never region state.
* :mod:`repro.shard.coordinator` — conservative time windows: simulate
  to the window end, exchange boundary packets and granted rates at the
  barrier, re-run the allocators with crossing flows pinned.  State
  serializes only when a checkpoint is due (``checkpoint_every``).

``python -m repro shard --regions N --workers K`` drives it from the
command line (:mod:`repro.shard.cli`).
"""

from .coordinator import plan_pins, run_sharded
from .partition import Partition, partition_topology
from .region import LinkSegment, PortalNode, RegionWorld, build_region
from .scenario import (ShardScenario, figure3_scenario, random_scenario,
                       run_single)
from .workers import ResidentRegionHost, ShardWorkerError

__all__ = [
    "LinkSegment", "Partition", "PortalNode", "RegionWorld",
    "ResidentRegionHost", "ShardScenario", "ShardWorkerError",
    "build_region", "figure3_scenario", "partition_topology",
    "plan_pins", "random_scenario", "run_sharded", "run_single",
]
