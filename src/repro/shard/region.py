"""Region workers: one :class:`RegionWorld` per partition region.

A region runs an ordinary :class:`~repro.netsim.engine.Simulator` plus a
per-shard :class:`~repro.netsim.fluid.FluidNetwork` over its slice of
the topology (:meth:`Topology.subtopology`), advanced in conservative
time windows by :mod:`repro.shard.coordinator`.  Two sync modes:

``exact``
    Flows homed in the region (source host assigned here) are created
    **pathless**; their rates and per-link losses come from coordinator
    pin segments (:attr:`FluidNetwork.rate_pins` / ``loss_pins``)
    scheduled as build-time events.  The per-flow smoothing and
    accounting then execute the same float operations, in the same
    order, with the same inputs as the single-process engine — the basis
    of the byte-identity contract (DESIGN.md "Sharded simulation").

``local``
    Every flow is replicated into each region its global path crosses,
    with a :class:`LinkSegment` path holding only the region-local link
    keys.  Each region runs its own allocator over its local links; the
    coordinator reconciles crossing flows between windows by pinning
    them (``Flow.pinned_rate_bps``) to the minimum rate any hosting
    region granted, plus headroom so rates can re-grow.  Scalable but
    approximate (boundary-link capacity is not itself allocated).

Regions are *resident*: each lives unpacked inside a long-lived worker
process (or inline in the coordinator when ``workers == 1``) for the
whole run, exchanging only small per-window messages — see
:mod:`repro.shard.workers`.  :func:`pack_state` blobs appear only at
checkpoints and on resume.  The legacy blob-per-window task
:func:`run_region_window` is retained as the reference implementation
for the byte-identity parity tests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry
from ..checkpoint import pack_state, unpack_state
from ..netsim.engine import Simulator
from ..netsim.flows import Flow, FlowSet, make_flow
from ..netsim.fluid import FluidNetwork
from ..netsim.links import Link
from ..netsim.node import Node
from ..netsim.packet import Packet
from ..netsim.topology import Topology
from .partition import Partition
from .scenario import GoodputSampler, ShardScenario

LinkKey = Tuple[str, str]

#: Multiplicative headroom on local-mode boundary pins: pinning a
#: crossing flow to exactly its minimum granted rate would trap it there
#: (each region would re-grant at most the pin), so the coordinator pins
#: to ``min_granted * (1 + BOUNDARY_HEADROOM)`` and lets demand cap the
#: rest.  0.25 converges within a few windows without oscillating.
BOUNDARY_HEADROOM = 0.25


class LinkSegment:
    """A path stand-in holding only one region's share of a global path.

    Quacks like :class:`repro.netsim.routing.Path` where the fluid
    allocator is concerned (``link_keys`` attribute, ``links()``
    method), but carries no node sequence — a crossing flow may traverse
    a region in several disjoint runs and only the link charges matter.
    """

    __slots__ = ("src", "dst", "link_keys")

    def __init__(self, src: str, dst: str, link_keys: Tuple[LinkKey, ...]):
        self.src = src
        self.dst = dst
        self.link_keys = tuple(link_keys)

    def links(self) -> List[LinkKey]:
        return list(self.link_keys)

    def __getstate__(self):
        return (self.src, self.dst, self.link_keys)

    def __setstate__(self, state):
        self.src, self.dst, self.link_keys = state

    def __repr__(self) -> str:
        return (f"LinkSegment({self.src}->{self.dst}, "
                f"{len(self.link_keys)} local links)")


class PortalNode(Node):
    """Stand-in for an external neighbor at a region's boundary.

    Named after the real (out-of-region) node so switch forwarding
    resolves unchanged; packets delivered to it are recorded in the
    region outbox as ``(logical_arrival_time, portal_name, packet)``.
    The attaching boundary link keeps its real capacity but zero
    propagation delay, so delivery lands inside the sending window; the
    true boundary delay is added here to form the logical arrival time.
    Under the conservative-window contract (window <= min boundary
    delay) that arrival time is never earlier than the window end, so
    the coordinator can always schedule the injection in the receiving
    region.
    """

    def __init__(self, sim: Simulator, name: str,
                 outbox: List[Tuple[float, str, Packet]]):
        super().__init__(sim, name)
        self.outbox = outbox
        #: True propagation delay of the cut link, per in-region sender.
        self.delays: Dict[str, float] = {}

    def receive(self, packet: Packet,
                from_link: Optional[Link] = None) -> None:
        delay = (self.delays.get(from_link.src.name, 0.0)
                 if from_link is not None else 0.0)
        self.outbox.append((self.sim.now + delay, self.name, packet))


def _set_demand(flow: Flow, demand_bps: float) -> None:
    """Scheduled-event target for local-mode demand changes (module
    level so region event queues stay checkpoint-picklable)."""
    flow.demand_bps = demand_bps


def _apply_pins(fluid: FluidNetwork, rates: Dict[int, float],
                losses: Dict[int, Tuple[float, ...]]) -> None:
    """Scheduled-event target installing one exact-mode pin segment.

    Scheduled at build time (before ``fluid.start()``), so at a shared
    timestamp the pins land before that epoch's fluid update — mirroring
    how build-time demand events precede updates in the single engine.
    """
    fluid.rate_pins.update(rates)
    fluid.loss_pins.update(losses)


class RegionWorld:
    """One region's simulator, sub-topology, fluid model, and flows."""

    def __init__(self, region_index: int, sync: str, sim: Simulator,
                 topo: Topology, flows: FlowSet,
                 flow_by_spec: Dict[int, Flow], home_specs: List[int],
                 crossing_specs: List[int], fluid: FluidNetwork,
                 sampler: GoodputSampler,
                 outbox: List[Tuple[float, str, Packet]],
                 portals: Dict[str, PortalNode]):
        self.region_index = region_index
        self.sync = sync
        self.sim = sim
        self.topo = topo
        self.flows = flows
        #: Spec index -> this region's replica of that flow.
        self.flow_by_spec = flow_by_spec
        #: Spec indices homed here (source host in this region); only
        #: the home region samples/report a flow's goodput, so nothing
        #: is double-counted in local mode.
        self.home_specs = home_specs
        #: Spec indices of hosted flows whose global path crosses other
        #: regions (subject to boundary-pin consensus in local mode).
        self.crossing_specs = crossing_specs
        self.fluid = fluid
        self.sampler = sampler
        self.outbox = outbox
        self.portals = portals

    # ------------------------------------------------------------------
    def inject(self, payload: Optional[Dict[str, Any]]) -> None:
        """Apply one barrier's worth of coordinator input: boundary pins
        first (they affect the whole next window), then cross-region
        packet arrivals."""
        if not payload:
            return
        pins = payload.get("pins")
        if pins:
            self.set_boundary_pins(pins)
        for arrival, node_name, packet in payload.get("packets", ()):
            node = self.topo.nodes[node_name]
            self.sim.schedule_at(arrival, node.receive, packet)

    def run_window(self, t_end: float) -> None:
        self.sim.run(until=t_end)

    def drain_outbox(self) -> List[Tuple[float, str, Packet]]:
        drained = list(self.outbox)
        del self.outbox[:]
        return drained

    # ------------------------------------------------------------------
    def boundary_report(self) -> Dict[int, float]:
        """Rates this region's allocator granted to its crossing flows
        in the last pass, keyed by spec index (local mode)."""
        result = self.fluid.last_result
        rates = result.rates if result is not None else {}
        return {idx: rates.get(self.flow_by_spec[idx].flow_id, 0.0)
                for idx in self.crossing_specs}

    def set_boundary_pins(self, pins: Dict[int, Optional[float]]) -> None:
        """Pin crossing flows to coordinator-consensus rates.  ``None``
        unpins.  Assigning ``pinned_rate_bps`` bumps the flow-set
        version, so the next fluid epoch re-runs the allocator with the
        boundary flows pinned — the "re-run with pinned rates" step of
        the conservative sync protocol."""
        for idx in sorted(pins):
            flow = self.flow_by_spec.get(idx)
            if flow is not None:
                flow.pinned_rate_bps = pins[idx]

    # ------------------------------------------------------------------
    def home_finals(self) -> List[Tuple[int, List[float]]]:
        """Final per-flow observables for flows homed here, as
        (spec_index, [rate, goodput, bytes, loss]) pairs."""
        finals = []
        for idx in self.home_specs:
            flow = self.flow_by_spec[idx]
            finals.append((idx, [flow.rate_bps, flow.goodput_bps,
                                 flow.bytes_delivered, flow.loss_rate]))
        return finals


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def compute_paths(full: Topology,
                  scenario: ShardScenario) -> List[Tuple[LinkKey, ...]]:
    """Global shortest-path link keys per flow spec, computed once on
    the full topology (identical to what ``build_world`` assigns).

    Specs are grouped by source host so each source costs one
    early-terminating multi-target Dijkstra instead of one full tree
    (bit-identical paths — see ``RouteCache.shortest_node_paths_to``).
    """
    from ..netsim.routing import NoRouteError, Path
    by_src: Dict[str, List[int]] = {}
    for idx, spec in enumerate(scenario.flows):
        by_src.setdefault(spec.src, []).append(idx)
    paths: List[Optional[Tuple[LinkKey, ...]]] = [None] * len(scenario.flows)
    for src in sorted(by_src):
        indices = by_src[src]
        dsts = [scenario.flows[i].dst for i in indices]
        node_paths = full.route_cache.shortest_node_paths_to(src, dsts)
        for i, dst in zip(indices, dsts):
            nodes = node_paths[dst]
            if nodes is None:
                raise NoRouteError(f"no path {src} -> {dst}")
            paths[i] = Path(nodes).link_keys
    return paths  # type: ignore[return-value]


def _spec_placement(links: Tuple[LinkKey, ...],
                    assignment: Dict[str, int]
                    ) -> Tuple[set, bool]:
    """Where one flow spec's global path lives.

    Returns ``(regions_crossed, crossing)``: the set of regions holding
    at least one interior link of the path, and whether the path spans
    more than one region (or traverses any cut link).
    """
    regions_crossed = {assignment[a] for (a, b) in links
                       if assignment[a] == assignment[b]}
    crossing = len(regions_crossed) > 1 or any(
        assignment[a] != assignment[b] for (a, b) in links)
    return regions_crossed, crossing


def hosted_counts(scenario: ShardScenario, partition: Partition, sync: str,
                  paths: List[Tuple[LinkKey, ...]]) -> List[int]:
    """How many flows :func:`build_region` creates per region.

    One ``make_flow`` call per hosted spec — so the prefix sums give the
    exact ``repro.netsim.flows:_flow_ids`` offset each region's build
    starts at when regions are built in index order from a common
    sequence base.  Resident workers building regions concurrently use
    this to install the same flow-id assignment the sequential inline
    build produces (flow ids are allocator tie-breakers, so this is
    byte-identity, not cosmetics).
    """
    assignment = partition.assignment
    counts = [0] * partition.n_regions
    for idx, spec in enumerate(scenario.flows):
        regions_crossed, _crossing = _spec_placement(paths[idx], assignment)
        if sync == "exact":
            counts[assignment[spec.src]] += 1
        else:
            for region in regions_crossed:
                counts[region] += 1
    return counts


def build_region(full: Topology, scenario: ShardScenario,
                 partition: Partition, region_index: int, sync: str,
                 paths: List[Tuple[LinkKey, ...]],
                 pin_plan: Optional[List[Tuple[float, List[float],
                                               List[Tuple[float, ...]]]]]
                 = None,
                 exchange_packets: bool = False) -> RegionWorld:
    """Build one region's world from the shared full topology.

    ``paths`` is :func:`compute_paths` output; ``pin_plan`` is the
    coordinator's :func:`repro.shard.coordinator.plan_pins` segments
    (exact mode only).  The caller is responsible for telemetry
    isolation (reset before, capture/restore around).
    """
    if sync not in ("exact", "local"):
        raise ValueError(f"unknown sync mode {sync!r}")
    assignment = partition.assignment
    members = partition.regions[region_index]
    sim = Simulator(seed=scenario.seed)
    topo = full.subtopology(members, sim=sim,
                            name=f"{full.name}/region{region_index}")

    flows = FlowSet()
    flow_by_spec: Dict[int, Flow] = {}
    home_specs: List[int] = []
    crossing_specs: List[int] = []
    for idx, spec in enumerate(scenario.flows):
        links = paths[idx]
        home = assignment[spec.src]
        regions_crossed, crossing = _spec_placement(links, assignment)
        if sync == "exact":
            hosted = home == region_index
        else:
            hosted = region_index in regions_crossed
        if not hosted:
            continue
        flow = make_flow(spec.src, spec.dst, spec.demand_bps,
                         sport=spec.sport, weight=spec.weight,
                         elastic=spec.elastic, malicious=spec.malicious,
                         start_time=spec.start_time, end_time=spec.end_time)
        if sync == "local":
            local_keys = tuple(key for key in links
                               if assignment[key[0]] == region_index
                               and assignment[key[1]] == region_index)
            flow.path = LinkSegment(spec.src, spec.dst, local_keys)
        flows.add(flow)
        flow_by_spec[idx] = flow
        if home == region_index:
            home_specs.append(idx)
        if crossing:
            crossing_specs.append(idx)

    if sync == "local":
        # Exact mode needs no demand events: the pin segments already
        # bake the post-change allocations in.
        for change in scenario.changes:
            flow = flow_by_spec.get(change.flow_index)
            if flow is not None and change.time_s <= scenario.duration_s:
                sim.schedule_at(change.time_s, _set_demand, flow,
                                change.demand_bps)

    fluid = FluidNetwork(topo, flows,
                         update_interval=scenario.fluid_interval_s,
                         tcp_tau=scenario.tcp_tau)
    if sync == "exact" and pin_plan:
        spec_ids = sorted(flow_by_spec)
        for seg_time, rates, losses in pin_plan:
            seg_rates = {flow_by_spec[i].flow_id: rates[i]
                         for i in spec_ids}
            seg_losses = {flow_by_spec[i].flow_id: losses[i]
                          for i in spec_ids}
            sim.schedule_at(seg_time, _apply_pins, fluid, seg_rates,
                            seg_losses)

    outbox: List[Tuple[float, str, Packet]] = []
    portals: Dict[str, PortalNode] = {}
    if exchange_packets:
        for key in partition.boundary_out(region_index):
            inside, outside = key
            if outside not in portals:
                portals[outside] = PortalNode(sim, outside, outbox)
            portal = portals[outside]
            cut = full.links[key]
            # Real capacity, zero propagation: delivery lands inside the
            # sending window and the portal adds the true delay (see
            # PortalNode).  The link is attached node-side only — never
            # registered in ``topo.links`` — so the fluid allocator and
            # graph exports are unaffected.
            stitch = Link(sim, topo.nodes[inside], portal,
                          cut.capacity_bps, 0.0)
            topo.nodes[inside].attach_link(stitch)
            portal.delays[inside] = cut.delay_s

    # Mirror the single-engine build order: fluid first, sampler second,
    # so their relative event ordering matches run_single exactly.
    fluid.start()
    sampler = GoodputSampler(
        sim,
        [flow_by_spec[i] for i in home_specs
         if not flow_by_spec[i].malicious],
        [flow_by_spec[i] for i in home_specs
         if flow_by_spec[i].malicious])
    sampler.start(scenario.sample_period_s)

    return RegionWorld(region_index=region_index, sync=sync, sim=sim,
                       topo=topo, flows=flows, flow_by_spec=flow_by_spec,
                       home_specs=home_specs,
                       crossing_specs=crossing_specs, fluid=fluid,
                       sampler=sampler, outbox=outbox, portals=portals)


# ----------------------------------------------------------------------
# Legacy blob-per-window task (reference implementation)
# ----------------------------------------------------------------------

def run_region_window(payload: Tuple[bytes, float,
                                     Optional[Dict[str, Any]]]
                      ) -> Tuple[bytes, List[Tuple[float, str, Packet]],
                                 Dict[int, float]]:
    """Advance one region blob to ``t_end`` — the pre-resident transport.

    Stateless with respect to the executing process: telemetry is reset,
    the blob's globals bundle is restored, the window runs, and the
    region is re-packed.  The live coordinator no longer uses this
    (resident workers in :mod:`repro.shard.workers` keep regions
    unpacked between windows); it is kept as the reference
    implementation the parity tests drive to prove the resident
    transport is byte-identical to the blob-per-window one.
    """
    blob, t_end, inject = payload
    telemetry.reset()
    region = unpack_state(blob)
    region.inject(inject)
    region.run_window(t_end)
    outbox = region.drain_outbox()
    report = region.boundary_report()
    return pack_state(region), outbox, report
