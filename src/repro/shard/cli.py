"""``python -m repro shard`` — sharded region simulation driver.

Examples::

    python -m repro shard --regions 4 --workers 2
    python -m repro shard --scenario random --regions 8 --sync local \
        --switches 200 --hosts 400 --flows 2000
    python -m repro shard --regions 2 --compare          # vs run_single
    python -m repro shard --regions 2 --checkpoint DIR   # then --resume
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from .. import telemetry
from .coordinator import run_sharded
from .scenario import figure3_scenario, random_scenario, run_single


def shard_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro shard",
        description="Sharded region simulation with conservative "
                    "boundary sync")
    parser.add_argument("--regions", type=int, default=2,
                        help="number of partition regions (default 2)")
    parser.add_argument("--workers", type=int, default=1,
                        help="pool worker processes; 1 runs the region "
                             "windows inline (default 1)")
    parser.add_argument("--sync", choices=["exact", "local"],
                        default="exact",
                        help="'exact' replays coordinator pins for "
                             "byte-identical results; 'local' runs "
                             "per-region allocators with boundary-pin "
                             "consensus (scalable, approximate)")
    parser.add_argument("--scenario", choices=["figure3", "random"],
                        default="figure3",
                        help="workload to shard (default figure3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration", type=float, default=None,
                        help="override the scenario horizon in seconds")
    parser.add_argument("--window", type=float, default=None,
                        help="conservative window length in seconds "
                             "(default: sample period, bounded by the "
                             "minimum boundary delay when exchanging "
                             "packets)")
    parser.add_argument("--switches", type=int, default=50,
                        help="random scenario: switch count")
    parser.add_argument("--hosts", type=int, default=100,
                        help="random scenario: host count")
    parser.add_argument("--flows", type=int, default=500,
                        help="random scenario: flow count")
    parser.add_argument("--compare", action="store_true",
                        help="also run the single-process engine and "
                             "report whether the stable records match")
    parser.add_argument("--checkpoint", metavar="DIR", default=None,
                        help="write region blobs + manifest to DIR at "
                             "checkpoint barriers")
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        metavar="N",
                        help="checkpoint every N window barriers (the "
                             "horizon barrier always checkpoints; "
                             "default 1). State only serializes when a "
                             "checkpoint is due, so larger N means less "
                             "transport overhead and a coarser resume "
                             "granularity")
    parser.add_argument("--resume", action="store_true",
                        help="continue from the manifest in --checkpoint "
                             "instead of starting at t=0")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the result record as JSON to FILE")
    args = parser.parse_args(argv)

    if args.resume and args.checkpoint is None:
        parser.error("--resume needs --checkpoint DIR")

    if args.scenario == "figure3":
        kwargs = {} if args.duration is None else \
            {"duration_s": args.duration}
        scenario = figure3_scenario(seed=args.seed, **kwargs)
    else:
        kwargs = {} if args.duration is None else \
            {"duration_s": args.duration}
        scenario = random_scenario(seed=args.seed,
                                   n_switches=args.switches,
                                   n_hosts=args.hosts,
                                   n_flows=args.flows, **kwargs)

    telemetry.reset()
    record = run_sharded(scenario, n_regions=args.regions,
                         workers=args.workers, sync=args.sync,
                         window_s=args.window,
                         checkpoint_dir=args.checkpoint,
                         resume=args.resume,
                         checkpoint_every=args.checkpoint_every)
    print(f"[shard] {record['mode']}: {args.scenario} seed={args.seed} "
          f"regions={record['n_regions']} workers={record['workers']} "
          f"cut_edges={record['cut_edges']} "
          f"passes={record['allocation_passes']}")
    transport = record["transport"]
    state = transport["state_bytes"]
    cpu = transport["cpu_time_s"]
    worker_cpu = math.fsum(cpu["workers"])
    print(f"[shard] transport: {transport['windows']} windows, "
          f"barriers {transport['barrier_seconds_total']:.3f}s, "
          f"state bytes out/in "
          f"{state['to_workers']}/{state['from_workers']}, "
          f"checkpoints {transport['checkpoints_written']}, "
          f"cpu coordinator {cpu['coordinator']:.3f}s "
          f"workers {worker_cpu:.3f}s")

    status = 0
    if args.compare:
        telemetry.reset()
        single = run_single(scenario)
        keys = ("samples", "flows", "updates", "allocation_passes")
        matches = all(
            json.dumps(record[key], sort_keys=True)
            == json.dumps(single[key], sort_keys=True) for key in keys)
        print(f"[shard] single-engine comparison: "
              f"{'byte-identical' if matches else 'DIVERGED'}")
        if not matches and args.sync == "exact":
            status = 1

    if args.out is not None:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[shard] wrote result record to {args.out}",
              file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(shard_main())
