"""The sharded-run coordinator: conservative windows over region workers.

:func:`run_sharded` partitions a :class:`ShardScenario`'s topology
(:func:`repro.shard.partition.partition_topology`), builds one
:class:`~repro.shard.region.RegionWorld` per region, and advances all
regions in lockstep windows:

1. every region simulates to the window end (pool workers or inline),
2. barrier: boundary packets and (local mode) granted-rate reports are
   exchanged,
3. crossing flows are re-pinned to the cross-region consensus rate, and
   packet arrivals are scheduled into their destination regions.

The window length is bounded by the minimum boundary-link propagation
delay whenever packets cross regions: a packet sent during a window
cannot arrive before the window ends, so exchanging at the barrier never
schedules into a region's past — the classic conservative-time
guarantee (see DESIGN.md "Sharded simulation").

Exact mode adds a coordinator-side **pin planner** (:func:`plan_pins`):
a replica of the single engine's fluid epoch loop that runs only the
allocator (no smoothing, no packet events) on the full topology and
records, for every epoch where the engine would re-allocate, each flow's
granted rate and per-link loss vector.  Regions replay those pins with
byte-identical float arithmetic, which is what makes the sharded stable
record equal to :func:`repro.shard.scenario.run_single`'s byte for byte.

Region state moves as :func:`~repro.checkpoint.core.pack_state` blobs;
``workers=1`` runs the same module-level task inline under globals
isolation, so worker count never changes results.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry
from ..checkpoint import (capture_globals, pack_state, restore_globals,
                          unpack_state)
from ..netsim.engine import Simulator
from ..netsim.fluid import max_min_allocate
from ..sweep.runner import atomic_write_json, stable_metrics
from ..telemetry import MetricsRegistry
from .partition import partition_topology
from .region import (BOUNDARY_HEADROOM, build_region, compute_paths,
                     run_region_window)
from .scenario import (ShardScenario, aggregate_samples, build_topology,
                       build_world)

#: Pin segments: (epoch_time, per-spec granted rates, per-spec loss
#: tuples in path-link order).
PinPlan = List[Tuple[float, List[float], List[Tuple[float, ...]]]]

MANIFEST_NAME = "shard_manifest.json"
PENDING_NAME = "shard_pending.pkl"


def plan_pins(scenario: ShardScenario) -> Tuple[PinPlan, int, int]:
    """Replay the single engine's fluid epoch loop, allocator only.

    Returns ``(segments, updates, allocation_passes)``.  Every detail
    the engine's dirty logic observes is replicated: the epoch grid is
    the same float accumulation ``PeriodicProcess`` rescheduling
    produces (``t = t + interval`` from 0.0); demand changes apply in
    event-queue order (stable sort by time — build-time sequence
    numbers preserve list order at equal times) *before* the epoch they
    precede; a pass runs iff the first epoch, the flow-set version, or
    the active-id set changed (the topology is static here).  A segment
    is recorded only for pass epochs — between passes the engine reuses
    the same ``AllocationResult``, so the pins stay valid verbatim.

    Runs on a fresh :func:`build_world` world (it mutates demands).
    """
    _sim, topo, flows, flow_list = build_world(scenario)
    pending = sorted(scenario.changes, key=lambda c: c.time_s)
    segments: PinPlan = []
    updates = 0
    passes = 0
    last_result = None
    seen_topo = -1
    seen_flows = -1
    seen_active = None
    applied = 0
    t = 0.0
    while t <= scenario.duration_s:
        while applied < len(pending) and pending[applied].time_s <= t:
            change = pending[applied]
            flow_list[change.flow_index].demand_bps = change.demand_bps
            applied += 1
        updates += 1
        active = flows.active(t)
        active_ids = frozenset(f.flow_id for f in active)
        if (last_result is None or topo.version != seen_topo
                or flows.version != seen_flows
                or active_ids != seen_active):
            result = max_min_allocate(topo, active)
            passes += 1
            last_result = result
            seen_topo = topo.version
            seen_flows = flows.version
            seen_active = active_ids
            rates = [result.rates.get(f.flow_id, 0.0) for f in flow_list]
            losses = []
            for flow in flow_list:
                links = flow.path_links()
                losses.append(
                    tuple(result.link_loss.get(key, 0.0) for key in links)
                    if links is not None else ())
            segments.append((t, rates, losses))
        t = t + scenario.fluid_interval_s
    return segments, updates, passes


def _consensus_pins(reports: List[Dict[int, float]]
                    ) -> Dict[int, Optional[float]]:
    """Fold per-region granted rates into one pin per crossing flow:
    the minimum any hosting region granted, plus growth headroom.  A
    zero minimum unpins (an inactive or starved flow must be able to
    start), letting demand cap the rate instead."""
    min_granted: Dict[int, float] = {}
    for report in reports:
        for idx, rate in report.items():
            if idx in min_granted:
                if rate < min_granted[idx]:
                    min_granted[idx] = rate
            else:
                min_granted[idx] = rate
    pins: Dict[int, Optional[float]] = {}
    for idx in sorted(min_granted):
        value = min_granted[idx]
        pins[idx] = (None if value <= 0.0
                     else value * (1.0 + BOUNDARY_HEADROOM))
    return pins


def _write_blob(path: Path, blob: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)


def _write_checkpoint(checkpoint_dir: Path, scenario: ShardScenario,
                      n_regions: int, sync: str, workers: int,
                      window_s: float, exchange_packets: bool,
                      next_t: float, blobs: List[bytes],
                      pending: List[Dict[str, Any]]) -> None:
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    blob_names = []
    for index, blob in enumerate(blobs):
        name = f"region_{index}.blob"
        _write_blob(checkpoint_dir / name, blob)
        blob_names.append(name)
    with open(checkpoint_dir / (PENDING_NAME + ".tmp"), "wb") as fh:
        fh.write(pickle.dumps(pending, protocol=pickle.HIGHEST_PROTOCOL))
    os.replace(checkpoint_dir / (PENDING_NAME + ".tmp"),
               checkpoint_dir / PENDING_NAME)
    # Manifest last: readers treat its presence as "blobs are complete".
    atomic_write_json(checkpoint_dir / MANIFEST_NAME, {
        "scenario": scenario.to_dict(),
        "n_regions": n_regions,
        "sync": sync,
        "workers": workers,
        "window_s": window_s,
        "exchange_packets": exchange_packets,
        "next_t": next_t,
        "blobs": blob_names,
    })


def _load_checkpoint(checkpoint_dir: Path, scenario: ShardScenario,
                     n_regions: int, sync: str, exchange_packets: bool
                     ) -> Optional[Tuple[float, List[bytes],
                                         List[Dict[str, Any]]]]:
    """The resumable state at ``checkpoint_dir``, iff its manifest
    matches this exact run configuration; None otherwise."""
    manifest_path = checkpoint_dir / MANIFEST_NAME
    if not manifest_path.exists():
        return None
    manifest = json.loads(manifest_path.read_text())
    if (manifest.get("scenario") != scenario.to_dict()
            or manifest.get("n_regions") != n_regions
            or manifest.get("sync") != sync
            or manifest.get("exchange_packets") != exchange_packets):
        raise ValueError(
            f"checkpoint at {checkpoint_dir} was written by a different "
            f"shard configuration; refusing to resume from it")
    blobs = [(checkpoint_dir / name).read_bytes()
             for name in manifest["blobs"]]
    with open(checkpoint_dir / PENDING_NAME, "rb") as fh:
        pending = pickle.load(fh)
    return manifest["next_t"], blobs, pending


def _empty_pending(n_regions: int) -> List[Dict[str, Any]]:
    return [{"pins": {}, "packets": []} for _ in range(n_regions)]


def run_sharded(scenario: ShardScenario, n_regions: int, workers: int = 1,
                sync: str = "exact", window_s: Optional[float] = None,
                checkpoint_dir: Optional[Any] = None, resume: bool = False,
                exchange_packets: bool = False) -> Dict[str, Any]:
    """Run ``scenario`` sharded into ``n_regions`` regions.

    Returns the stable result record — in ``exact`` sync mode,
    byte-identical (via ``json.dumps(..., sort_keys=True)``) to
    :func:`repro.shard.scenario.run_single` on the same scenario, for
    any ``n_regions`` and any ``workers``.
    """
    if sync not in ("exact", "local"):
        raise ValueError(f"unknown sync mode {sync!r}")
    if n_regions < 1:
        raise ValueError(f"n_regions must be >= 1, got {n_regions}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    full = build_topology(scenario, Simulator(seed=scenario.seed))
    partition = partition_topology(full, n_regions, seed=scenario.seed)

    min_delay = partition.min_boundary_delay(full)
    if window_s is None:
        window_s = scenario.sample_period_s
        if exchange_packets and min_delay is not None:
            window_s = min(window_s, min_delay)
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    if exchange_packets and min_delay is not None and window_s > min_delay:
        raise ValueError(
            f"window_s={window_s} exceeds the minimum boundary-link "
            f"delay {min_delay}: packets sent in a window could arrive "
            f"before it ends, violating the conservative-sync contract. "
            f"Shrink window_s to at most {min_delay}.")

    pin_plan: Optional[PinPlan] = None
    plan_updates = 0
    plan_passes = 0
    if sync == "exact":
        pin_plan, plan_updates, plan_passes = plan_pins(scenario)

    checkpoint_path = (Path(checkpoint_dir)
                      if checkpoint_dir is not None else None)
    resumed = None
    if resume:
        if checkpoint_path is None:
            raise ValueError("resume=True needs a checkpoint_dir")
        resumed = _load_checkpoint(checkpoint_path, scenario, n_regions,
                                   sync, exchange_packets)

    if resumed is not None:
        t, blobs, pending = resumed
    else:
        t = 0.0
        pending = _empty_pending(n_regions)
        paths = compute_paths(full, scenario)
        blobs = []
        base = capture_globals()
        try:
            for index in range(n_regions):
                telemetry.reset()
                region = build_region(full, scenario, partition, index,
                                      sync, paths, pin_plan=pin_plan,
                                      exchange_packets=exchange_packets)
                blobs.append(pack_state(region))
        finally:
            restore_globals(base)

    pool = (ProcessPoolExecutor(max_workers=min(workers, n_regions))
            if workers > 1 and n_regions > 1 else None)
    try:
        while t < scenario.duration_s:
            t_end = min(t + window_s, scenario.duration_s)
            payloads = [(blobs[index], t_end, pending[index])
                        for index in range(n_regions)]
            if pool is None:
                base = capture_globals()
                try:
                    results = [run_region_window(payload)
                               for payload in payloads]
                finally:
                    restore_globals(base)
            else:
                futures = [pool.submit(run_region_window, payload)
                           for payload in payloads]
                results = [future.result() for future in futures]
            blobs = [result[0] for result in results]
            reports = [result[2] for result in results]

            # Barrier: route boundary packets, re-pin crossing flows.
            pending = _empty_pending(n_regions)
            for _blob, outbox, _report in results:
                for arrival, node_name, packet in outbox:
                    dest = partition.assignment[node_name]
                    pending[dest]["packets"].append(
                        (arrival, node_name, packet))
            if sync == "local":
                pins = _consensus_pins(reports)
                for entry in pending:
                    entry["pins"] = pins
            t = t_end
            if checkpoint_path is not None:
                _write_checkpoint(checkpoint_path, scenario, n_regions,
                                  sync, workers, window_s,
                                  exchange_packets, t, blobs, pending)
    finally:
        if pool is not None:
            pool.shutdown()

    # Final collection: unpack each region under globals isolation, fold
    # samplers and finals, merge per-region telemetry snapshots.
    record_lists = []
    finals: Dict[int, List[float]] = {}
    snapshots = []
    region_updates = 0
    region_passes = 0
    base = capture_globals()
    try:
        for blob in blobs:
            telemetry.reset()
            region = unpack_state(blob)
            snapshots.append(telemetry.metrics().snapshot())
            record_lists.append(region.sampler.records)
            for idx, final in region.home_finals():
                finals[idx] = final
            region_updates = max(region_updates, region.fluid.updates)
            region_passes += region.fluid.allocation_passes
    finally:
        restore_globals(base)
    merged = MetricsRegistry().merge(*snapshots).snapshot()

    missing = [idx for idx in range(len(scenario.flows))
               if idx not in finals]
    if missing:
        raise RuntimeError(
            f"flows {missing} were homed in no region - partition and "
            f"region construction disagree")

    return {
        "mode": f"sharded-{sync}",
        "seed": scenario.seed,
        "samples": aggregate_samples(record_lists),
        "flows": [finals[idx] for idx in range(len(scenario.flows))],
        "updates": plan_updates if sync == "exact" else region_updates,
        "allocation_passes": (plan_passes if sync == "exact"
                              else region_passes),
        "n_regions": n_regions,
        "workers": workers,
        "window_s": window_s,
        "cut_edges": partition.cut_edges,
        "merged_stable_metrics": stable_metrics(merged),
    }
