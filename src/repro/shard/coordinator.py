"""The sharded-run coordinator: conservative windows over region workers.

:func:`run_sharded` partitions a :class:`ShardScenario`'s topology
(:func:`repro.shard.partition.partition_topology`), places one
:class:`~repro.shard.region.RegionWorld` per region inside a *resident*
worker (:mod:`repro.shard.workers`), and advances all regions in
lockstep windows:

1. every region simulates to the window end (resident worker processes,
   or inline hosts when ``workers == 1``),
2. barrier: boundary packets and (local mode) granted-rate reports are
   exchanged,
3. crossing flows are re-pinned to the cross-region consensus rate, and
   packet arrivals are scheduled into their destination regions.

The window length is bounded by the minimum boundary-link propagation
delay whenever packets cross regions: a packet sent during a window
cannot arrive before the window ends, so exchanging at the barrier never
schedules into a region's past — the classic conservative-time
guarantee (see DESIGN.md "Sharded simulation").

Exact mode adds a coordinator-side **pin planner** (:func:`plan_pins`):
a replica of the single engine's fluid epoch loop that runs only the
allocator (no smoothing, no packet events) on the full topology and
records, for every epoch where the engine would re-allocate, each flow's
granted rate and per-link loss vector.  Regions replay those pins with
byte-identical float arithmetic, which is what makes the sharded stable
record equal to :func:`repro.shard.scenario.run_single`'s byte for byte.

Region state stays **resident**: each region is built fresh inside its
sticky worker (region ``r`` lives in worker ``r % workers`` for the
whole run) and only small per-window messages cross the pipes.  Full
:func:`~repro.checkpoint.core.pack_state` serialization happens only on
demand — every ``checkpoint_every``-th barrier when a checkpoint
directory is set, and once per region at resume.  Worker count never
changes results (see the sequence-installation and globals-bundle
disciplines in :mod:`repro.shard.workers`).
"""

from __future__ import annotations

import gc
import json
import math
import multiprocessing
import os
import pickle
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..checkpoint import capture_globals, restore_globals
from ..netsim.engine import Simulator
from ..netsim.fluid import max_min_allocate
from ..sweep.runner import atomic_write_json, stable_metrics
from ..telemetry import MetricsRegistry
from .partition import partition_topology
from .region import BOUNDARY_HEADROOM, compute_paths, hosted_counts
from .scenario import (ShardScenario, aggregate_samples, build_topology,
                       build_world)
from .workers import (C_MESSAGES, C_STATE_BYTES, H_BARRIER,
                      ResidentRegionHost, ShardWorkerError, WorkerInit,
                      region_worker_main)

__all__ = [
    "plan_pins", "run_sharded", "ShardWorkerError",
]

#: Pin segments: (epoch_time, per-spec granted rates, per-spec loss
#: tuples in path-link order).
PinPlan = List[Tuple[float, List[float], List[Tuple[float, ...]]]]

MANIFEST_NAME = "shard_manifest.json"
PENDING_NAME = "shard_pending.pkl"

#: Test seam: called as ``_barrier_hook(window_index, handles)`` after
#: every completed barrier (checkpoint included).  The crash-handling
#: tests use it to SIGKILL a worker between windows; ``handles`` is
#: empty when regions run inline.
_barrier_hook: Optional[Callable[[int, List["_WorkerHandle"]], None]] = None


def plan_pins(scenario: ShardScenario) -> Tuple[PinPlan, int, int]:
    """Replay the single engine's fluid epoch loop, allocator only.

    Returns ``(segments, updates, allocation_passes)``.  Every detail
    the engine's dirty logic observes is replicated: the epoch grid is
    the same float accumulation ``PeriodicProcess`` rescheduling
    produces (``t = t + interval`` from 0.0); demand changes apply in
    event-queue order (stable sort by time — build-time sequence
    numbers preserve list order at equal times) *before* the epoch they
    precede; a pass runs iff the first epoch, the flow-set version, or
    the active-id set changed (the topology is static here).  A segment
    is recorded only for pass epochs — between passes the engine reuses
    the same ``AllocationResult``, so the pins stay valid verbatim.

    Runs on a fresh :func:`build_world` world (it mutates demands).
    """
    _sim, topo, flows, flow_list = build_world(scenario)
    pending = sorted(scenario.changes, key=lambda c: c.time_s)
    segments: PinPlan = []
    updates = 0
    passes = 0
    last_result = None
    seen_topo = -1
    seen_flows = -1
    seen_active = None
    applied = 0
    t = 0.0
    while t <= scenario.duration_s:
        while applied < len(pending) and pending[applied].time_s <= t:
            change = pending[applied]
            flow_list[change.flow_index].demand_bps = change.demand_bps
            applied += 1
        updates += 1
        active = flows.active(t)
        active_ids = frozenset(f.flow_id for f in active)
        if (last_result is None or topo.version != seen_topo
                or flows.version != seen_flows
                or active_ids != seen_active):
            result = max_min_allocate(topo, active)
            passes += 1
            last_result = result
            seen_topo = topo.version
            seen_flows = flows.version
            seen_active = active_ids
            rates = [result.rates.get(f.flow_id, 0.0) for f in flow_list]
            losses = []
            for flow in flow_list:
                links = flow.path_links()
                losses.append(
                    tuple(result.link_loss.get(key, 0.0) for key in links)
                    if links is not None else ())
            segments.append((t, rates, losses))
        t = t + scenario.fluid_interval_s
    return segments, updates, passes


def _consensus_pins(reports: List[Dict[int, float]]
                    ) -> Dict[int, Optional[float]]:
    """Fold per-region granted rates into one pin per crossing flow:
    the minimum any hosting region granted, plus growth headroom.  A
    zero minimum unpins (an inactive or starved flow must be able to
    start), letting demand cap the rate instead."""
    min_granted: Dict[int, float] = {}
    for report in reports:
        for idx, rate in report.items():
            if idx in min_granted:
                if rate < min_granted[idx]:
                    min_granted[idx] = rate
            else:
                min_granted[idx] = rate
    pins: Dict[int, Optional[float]] = {}
    for idx in sorted(min_granted):
        value = min_granted[idx]
        pins[idx] = (None if value <= 0.0
                     else value * (1.0 + BOUNDARY_HEADROOM))
    return pins


def _write_blob(path: Path, blob: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)


def _write_checkpoint(checkpoint_dir: Path, scenario: ShardScenario,
                      n_regions: int, sync: str, workers: int,
                      window_s: float, exchange_packets: bool,
                      next_t: float, blobs: List[bytes],
                      pending: List[Dict[str, Any]]) -> None:
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    blob_names = []
    for index, blob in enumerate(blobs):
        name = f"region_{index}.blob"
        _write_blob(checkpoint_dir / name, blob)
        blob_names.append(name)
    with open(checkpoint_dir / (PENDING_NAME + ".tmp"), "wb") as fh:
        fh.write(pickle.dumps(pending, protocol=pickle.HIGHEST_PROTOCOL))
    os.replace(checkpoint_dir / (PENDING_NAME + ".tmp"),
               checkpoint_dir / PENDING_NAME)
    # Manifest last: readers treat its presence as "blobs are complete".
    atomic_write_json(checkpoint_dir / MANIFEST_NAME, {
        "scenario": scenario.to_dict(),
        "n_regions": n_regions,
        "sync": sync,
        "workers": workers,
        "window_s": window_s,
        "exchange_packets": exchange_packets,
        "next_t": next_t,
        "blobs": blob_names,
    })


def _load_checkpoint(checkpoint_dir: Path, scenario: ShardScenario,
                     n_regions: int, sync: str, exchange_packets: bool
                     ) -> Optional[Tuple[float, List[bytes],
                                         List[Dict[str, Any]]]]:
    """The resumable state at ``checkpoint_dir``, iff its manifest
    matches this exact run configuration; None otherwise."""
    manifest_path = checkpoint_dir / MANIFEST_NAME
    if not manifest_path.exists():
        return None
    manifest = json.loads(manifest_path.read_text())
    if (manifest.get("scenario") != scenario.to_dict()
            or manifest.get("n_regions") != n_regions
            or manifest.get("sync") != sync
            or manifest.get("exchange_packets") != exchange_packets):
        raise ValueError(
            f"checkpoint at {checkpoint_dir} was written by a different "
            f"shard configuration; refusing to resume from it")
    blobs = [(checkpoint_dir / name).read_bytes()
             for name in manifest["blobs"]]
    with open(checkpoint_dir / PENDING_NAME, "rb") as fh:
        pending = pickle.load(fh)
    return manifest["next_t"], blobs, pending


def _empty_pending(n_regions: int) -> List[Dict[str, Any]]:
    return [{"pins": {}, "packets": []} for _ in range(n_regions)]


# ----------------------------------------------------------------------
# Transports: where the resident regions live
# ----------------------------------------------------------------------

class _Tally:
    """Coordinator-side transport accounting, kept as plain Python state
    while the run swaps telemetry bundles; flushed to the real metric
    families once, after the caller's globals are back in place."""

    def __init__(self) -> None:
        self.messages: Dict[str, int] = {}
        self.state_bytes: Dict[str, int] = {"to_workers": 0,
                                            "from_workers": 0}
        self.barrier_seconds: List[float] = []
        self.checkpoints_written = 0

    def message(self, kind: str, count: int = 1) -> None:
        self.messages[kind] = self.messages.get(kind, 0) + count

    def flush(self) -> None:
        for seconds in self.barrier_seconds:
            H_BARRIER.observe(seconds)
        for kind in sorted(self.messages):
            C_MESSAGES.labels(kind).inc(self.messages[kind])
        for direction in sorted(self.state_bytes):
            if self.state_bytes[direction]:
                C_STATE_BYTES.labels(direction).inc(
                    self.state_bytes[direction])


class _InlineTransport:
    """All regions resident in the coordinator process (``workers==1``).

    Zero serialization anywhere on the window path: the hosts run live
    :class:`RegionWorld` objects under the same per-region bundle-swap
    discipline worker processes use, inside one outer globals capture
    that is restored at :meth:`close` — the caller's telemetry and
    sequences come back exactly as they were.
    """

    handles: List["_WorkerHandle"] = []

    def __init__(self, init: WorkerInit, n_regions: int, full: Any,
                 tally: _Tally):
        self._init = init
        self._n_regions = n_regions
        self._full = full
        self._tally = tally
        self._hosts: Dict[int, ResidentRegionHost] = {}
        self._base = capture_globals()
        self._closed = False

    def build_regions(self) -> None:
        for region_index in range(self._n_regions):
            self._tally.message("build")
            self._hosts[region_index] = ResidentRegionHost.build(
                self._init, region_index, self._full)

    def load_regions(self, blobs: List[bytes]) -> None:
        for region_index, blob in enumerate(blobs):
            self._tally.message("load")
            self._hosts[region_index] = ResidentRegionHost.from_blob(
                region_index, blob)

    def run_window(self, t_end: float,
                   pending: List[Dict[str, Any]]) -> List[Tuple]:
        results = []
        for region_index in range(self._n_regions):
            self._tally.message("window")
            results.append(self._hosts[region_index].window(
                t_end, pending[region_index]))
        return results

    def checkpoint_regions(self) -> List[bytes]:
        blobs = []
        for region_index in range(self._n_regions):
            self._tally.message("checkpoint")
            blobs.append(self._hosts[region_index].checkpoint())
        return blobs

    def collect_regions(self) -> List[Dict[str, Any]]:
        collected = []
        for region_index in range(self._n_regions):
            self._tally.message("collect")
            collected.append(self._hosts[region_index].collect())
        return collected

    def worker_cpu_times(self) -> List[float]:
        return []  # the coordinator's own process_time covers inline work

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._hosts.clear()
            restore_globals(self._base)


class _WorkerHandle:
    """Coordinator-side end of one resident worker process."""

    def __init__(self, worker_index: int, init: WorkerInit):
        self.worker_index = worker_index
        parent_conn, child_conn = multiprocessing.Pipe()
        self.conn = parent_conn
        self.process = multiprocessing.Process(
            target=region_worker_main,
            args=(child_conn, worker_index, init),
            daemon=True)
        self.process.start()
        child_conn.close()


class _ProcessTransport:
    """Regions resident in ``workers`` long-lived processes.

    Sticky assignment: region ``r`` lives in worker ``r % workers`` for
    the whole run.  Commands are dispatched in *waves* — each worker's
    j-th region across all workers at once — so every pipe has at most
    one outstanding command while all workers stay busy.
    """

    def __init__(self, init: WorkerInit, n_regions: int, workers: int,
                 tally: _Tally):
        self._tally = tally
        self._regions_of = [list(range(w, n_regions, workers))
                            for w in range(workers)]
        # Move the coordinator's heap (topology, paths, plan) into the
        # permanent GC generation before forking: forked workers inherit
        # it frozen, so their cyclic-GC passes never rescan it — which
        # would both burn CPU and dirty copy-on-write pages in every
        # child.  Unfrozen again in the parent once the forks exist.
        gc.freeze()
        try:
            self.handles = [_WorkerHandle(w, init) for w in range(workers)]
        finally:
            gc.unfreeze()

    def _waves(self) -> List[List[Tuple["_WorkerHandle", int]]]:
        depth = max(len(regions) for regions in self._regions_of)
        return [[(self.handles[w], self._regions_of[w][j])
                 for w in range(len(self.handles))
                 if j < len(self._regions_of[w])]
                for j in range(depth)]

    # -- protocol plumbing ---------------------------------------------
    def _send(self, handle: _WorkerHandle, message: Tuple,
              region_index: Optional[int],
              window_end: Optional[float]) -> None:
        self._tally.message(message[0])
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                handle.worker_index, region_index, window_end,
                f"pipe closed while sending {message[0]!r} "
                f"(exitcode={handle.process.exitcode}): {exc}") from exc

    def _recv(self, handle: _WorkerHandle, region_index: Optional[int],
              window_end: Optional[float]) -> Any:
        try:
            status, value = handle.conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerError(
                handle.worker_index, region_index, window_end,
                f"worker process died "
                f"(exitcode={handle.process.exitcode})") from exc
        if status != "ok":
            raise ShardWorkerError(handle.worker_index, region_index,
                                   window_end, str(value))
        return value

    def _fan(self, make_message: Callable[[int], Tuple],
             window_end: Optional[float] = None) -> List[Any]:
        """Run one command per region through the wave schedule; returns
        replies in region order."""
        n_regions = sum(len(regions) for regions in self._regions_of)
        results: List[Any] = [None] * n_regions
        for wave in self._waves():
            for handle, region_index in wave:
                self._send(handle, make_message(region_index),
                           region_index, window_end)
            for handle, region_index in wave:
                results[region_index] = self._recv(handle, region_index,
                                                   window_end)
        return results

    # -- transport interface -------------------------------------------
    def build_regions(self) -> None:
        self._fan(lambda region_index: ("build", region_index))

    def load_regions(self, blobs: List[bytes]) -> None:
        for blob in blobs:
            self._tally.state_bytes["to_workers"] += len(blob)
        self._fan(lambda region_index: ("load", region_index,
                                        blobs[region_index]))

    def run_window(self, t_end: float,
                   pending: List[Dict[str, Any]]) -> List[Tuple]:
        return self._fan(
            lambda region_index: ("window", region_index, t_end,
                                  pending[region_index]),
            window_end=t_end)

    def checkpoint_regions(self) -> List[bytes]:
        blobs = self._fan(lambda region_index: ("checkpoint", region_index))
        for blob in blobs:
            self._tally.state_bytes["from_workers"] += len(blob)
        return blobs

    def collect_regions(self) -> List[Dict[str, Any]]:
        return self._fan(lambda region_index: ("collect", region_index))

    def worker_cpu_times(self) -> List[float]:
        times = []
        for handle in self.handles:
            self._send(handle, ("stats",), None, None)
            times.append(self._recv(handle, None, None)["cpu_time_s"])
        return times

    def close(self) -> None:
        for handle in self.handles:
            try:
                handle.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self.handles:
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
            handle.conn.close()


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------

def run_sharded(scenario: ShardScenario, n_regions: int, workers: int = 1,
                sync: str = "exact", window_s: Optional[float] = None,
                checkpoint_dir: Optional[Any] = None, resume: bool = False,
                exchange_packets: bool = False,
                checkpoint_every: int = 1) -> Dict[str, Any]:
    """Run ``scenario`` sharded into ``n_regions`` resident regions.

    Returns the stable result record — in ``exact`` sync mode,
    byte-identical (via ``json.dumps(..., sort_keys=True)``) to
    :func:`repro.shard.scenario.run_single` on the same scenario, for
    any ``n_regions`` and any ``workers``.  (The ``transport`` section
    is the exception: it reports wall/cpu accounting and is excluded
    from identity comparisons.)

    ``checkpoint_every`` checkpoints at every Nth barrier (and always at
    the horizon) when ``checkpoint_dir`` is set; state is serialized
    only when a checkpoint is actually due.
    """
    if sync not in ("exact", "local"):
        raise ValueError(f"unknown sync mode {sync!r}")
    if n_regions < 1:
        raise ValueError(f"n_regions must be >= 1, got {n_regions}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}")

    cpu_start = time.process_time()  # reprolint: disable=RPL002
    full = build_topology(scenario, Simulator(seed=scenario.seed))
    partition = partition_topology(full, n_regions, seed=scenario.seed)

    min_delay = partition.min_boundary_delay(full)
    if window_s is None:
        window_s = scenario.sample_period_s
        if exchange_packets and min_delay is not None:
            window_s = min(window_s, min_delay)
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    if exchange_packets and min_delay is not None and window_s > min_delay:
        raise ValueError(
            f"window_s={window_s} exceeds the minimum boundary-link "
            f"delay {min_delay}: packets sent in a window could arrive "
            f"before it ends, violating the conservative-sync contract. "
            f"Shrink window_s to at most {min_delay}.")

    pin_plan: Optional[PinPlan] = None
    plan_updates = 0
    plan_passes = 0
    if sync == "exact":
        pin_plan, plan_updates, plan_passes = plan_pins(scenario)

    checkpoint_path = (Path(checkpoint_dir)
                      if checkpoint_dir is not None else None)
    resumed = None
    if resume:
        if checkpoint_path is None:
            raise ValueError("resume=True needs a checkpoint_dir")
        resumed = _load_checkpoint(checkpoint_path, scenario, n_regions,
                                   sync, exchange_packets)

    blobs: Optional[List[bytes]] = None
    if resumed is not None:
        t, blobs, pending = resumed
    else:
        t = 0.0
        pending = _empty_pending(n_regions)

    # Fresh builds need paths and the flow-id offsets that reproduce the
    # sequential build's id assignment; resumed runs carry their ids in
    # the blobs.
    paths: List[Tuple[Tuple[str, str], ...]] = []
    offsets: List[int] = []
    if blobs is None:
        paths = compute_paths(full, scenario)
        counts = hosted_counts(scenario, partition, sync, paths)
        total = 0
        for count in counts:
            offsets.append(total)
            total += count
    init = WorkerInit(scenario=scenario, partition=partition, sync=sync,
                      paths=paths, pin_plan=pin_plan,
                      exchange_packets=exchange_packets,
                      base_sequences=capture_globals()["sequences"],
                      flow_id_offsets=offsets)

    tally = _Tally()
    if workers > 1 and n_regions > 1:
        transport: Any = _ProcessTransport(init, n_regions,
                                           min(workers, n_regions), tally)
    else:
        transport = _InlineTransport(init, n_regions, full, tally)

    record_lists: List[List[Any]] = [[] for _ in range(n_regions)]
    window_index = 0
    worker_cpu: List[float] = []
    collected: List[Dict[str, Any]] = []
    try:
        if blobs is None:
            transport.build_regions()
        else:
            transport.load_regions(blobs)

        while t < scenario.duration_s:
            t_end = min(t + window_s, scenario.duration_s)
            barrier_start = time.perf_counter()  # reprolint: disable=RPL002
            results = transport.run_window(t_end, pending)
            for index in range(n_regions):
                record_lists[index].extend(results[index][2])

            # Barrier: route boundary packets, re-pin crossing flows.
            pending = _empty_pending(n_regions)
            for outbox, _report, _records in results:
                for arrival, node_name, packet in outbox:
                    dest = partition.assignment[node_name]
                    pending[dest]["packets"].append(
                        (arrival, node_name, packet))
            if sync == "local":
                pins = _consensus_pins([report for _, report, _ in results])
                for entry in pending:
                    entry["pins"] = pins
            tally.barrier_seconds.append(
                time.perf_counter()  # reprolint: disable=RPL002
                - barrier_start)
            t = t_end
            window_index += 1

            if checkpoint_path is not None and (
                    window_index % checkpoint_every == 0
                    or t >= scenario.duration_s):
                _write_checkpoint(checkpoint_path, scenario, n_regions,
                                  sync, workers, window_s,
                                  exchange_packets, t,
                                  transport.checkpoint_regions(), pending)
                tally.checkpoints_written += 1
            if _barrier_hook is not None:
                _barrier_hook(window_index, transport.handles)

        collected = transport.collect_regions()
        worker_cpu = transport.worker_cpu_times()
    finally:
        transport.close()

    # Fold the per-region collections: sampler records were streamed in
    # per-window slices; finals, counters, and telemetry come once.
    finals: Dict[int, List[float]] = {}
    snapshots = []
    region_updates = 0
    region_passes = 0
    for region_index, entry in enumerate(collected):
        snapshots.append(entry["metrics"])
        record_lists[region_index].extend(entry["records"])
        for idx, final in entry["finals"]:
            finals[idx] = final
        region_updates = max(region_updates, entry["updates"])
        region_passes += entry["allocation_passes"]
    merged = MetricsRegistry().merge(*snapshots).snapshot()

    missing = [idx for idx in range(len(scenario.flows))
               if idx not in finals]
    if missing:
        raise RuntimeError(
            f"flows {missing} were homed in no region - partition and "
            f"region construction disagree")

    tally.flush()
    return {
        "mode": f"sharded-{sync}",
        "seed": scenario.seed,
        "samples": aggregate_samples(record_lists),
        "flows": [finals[idx] for idx in range(len(scenario.flows))],
        "updates": plan_updates if sync == "exact" else region_updates,
        "allocation_passes": (plan_passes if sync == "exact"
                              else region_passes),
        "n_regions": n_regions,
        "workers": workers,
        "window_s": window_s,
        "cut_edges": partition.cut_edges,
        "merged_stable_metrics": stable_metrics(merged),
        # Wall/cpu transport accounting: informative, NOT part of any
        # byte-identity contract (tests pop it before comparing).
        "transport": {
            "resident": True,
            "windows": window_index,
            "barrier_seconds_total": math.fsum(tally.barrier_seconds),
            "messages": {kind: tally.messages[kind]
                         for kind in sorted(tally.messages)},
            "state_bytes": dict(sorted(tally.state_bytes.items())),
            "checkpoints_written": tally.checkpoints_written,
            "cpu_time_s": {
                "coordinator": (
                    time.process_time()  # reprolint: disable=RPL002
                    - cpu_start),
                "workers": worker_cpu,
            },
        },
    }
