"""Resident region workers: live region state, message-sized windows.

The original sharded transport shipped every region as a
:func:`~repro.checkpoint.core.pack_state` blob to a stateless pool task
each window and shipped the re-packed blob back — two full state
serializations per region per window, dominating the coordinator's
critical path.  This module replaces it with *resident* workers:

* Each worker is one long-lived ``multiprocessing.Process`` connected by
  a duplex pipe, with a **sticky assignment** of regions (region ``r``
  lives in worker ``r % workers`` for the whole run — state never
  migrates).
* A region is built **fresh inside its worker** (or unpacked exactly
  once, on resume) and stays live between windows.  Per window the wire
  carries only ``("window", region, t_end, inject)`` in and
  ``(outbox, boundary report, new sample records)`` out — kilobytes,
  not the multi-megabyte world.
* State is serialized only on demand: ``("checkpoint", region)`` returns
  a pack_state blob for the coordinator's checkpoint file, and
  ``("collect", region)`` returns the final observables and telemetry
  snapshot at end of run.

Determinism is carried by two disciplines:

* **Per-region globals bundles.** A worker hosting several regions swaps
  the process-wide telemetry/sequence state around every window
  (:func:`~repro.checkpoint.core.restore_globals` before,
  :func:`~repro.checkpoint.core.capture_globals` after), so each
  region's metrics and ID sequences evolve exactly as if it ran alone —
  worker count cannot leak into results.
* **Explicit sequence installation.** Region builds consume global flow
  ids (allocator tie-breakers).  Each build first installs the
  coordinator's base sequences plus the :func:`hosted_counts` prefix sum
  of earlier regions, reproducing the id assignment a sequential inline
  build yields — so ``workers=K`` is byte-identical to ``workers=1`` and
  to the legacy blob transport.

The coordinator (:mod:`repro.shard.coordinator`) drives workers in
waves — at most one outstanding command per pipe — and reuses the same
:class:`ResidentRegionHost` objects inline when ``workers == 1``, where
the transport cost drops to zero.
"""

from __future__ import annotations

import itertools
import time
import traceback
from dataclasses import dataclass, field
from importlib import import_module
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry
from ..checkpoint import capture_globals, pack_state, restore_globals
from ..checkpoint.core import unpack_state
from ..netsim.engine import Simulator
from ..netsim.packet import Packet
from .partition import Partition
from .region import RegionWorld, build_region
from .scenario import ShardScenario, build_topology

LinkKey = Tuple[str, str]

#: The sequence a region build consumes (one id per created flow).
_FLOW_SEQUENCE = "repro.netsim.flows:_flow_ids"

_MET = telemetry.metrics()
#: Wall-clock time per window barrier (dispatch of the first window
#: command until every region's result is folded in).  Excluded from
#: stable metrics — see ``repro.telemetry.WALL_CLOCK_METRICS``.
H_BARRIER = _MET.histogram(
    "shard_barrier_seconds",
    "wall-clock seconds per sharded window barrier",
    buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0))
C_STATE_BYTES = _MET.counter(
    "shard_state_bytes_total",
    "serialized region-state bytes moved between coordinator and workers",
    labelnames=("direction",))
C_MESSAGES = _MET.counter(
    "shard_messages_total",
    "coordinator<->worker protocol commands, by kind",
    labelnames=("kind",))


class ShardWorkerError(RuntimeError):
    """A resident shard worker died or failed; names region and window."""

    def __init__(self, worker_index: int, region_index: Optional[int],
                 window_end: Optional[float], detail: str):
        self.worker_index = worker_index
        self.region_index = region_index
        self.window_end = window_end
        where = (f"region {region_index}" if region_index is not None
                 else "control channel")
        when = (f" during the window ending at t={window_end}s"
                if window_end is not None else "")
        super().__init__(
            f"shard worker {worker_index} ({where}){when}: {detail}")


@dataclass
class WorkerInit:
    """Everything a worker needs to build its regions fresh.

    Plain-picklable by construction (no Topology, no live worlds): under
    the default ``fork`` start method it is inherited by reference for
    free, and under ``spawn`` it pickles in milliseconds.  Workers
    rebuild the full topology from the scenario themselves — cheaper
    than shipping a packed region, and the rebuild is discarded from
    telemetry by the per-region reset (matching the inline build, which
    also resets after the coordinator's own full-topology build).
    """

    scenario: ShardScenario
    partition: Partition
    sync: str
    paths: List[Tuple[LinkKey, ...]]
    pin_plan: Optional[List[Tuple[float, List[float],
                                  List[Tuple[float, ...]]]]]
    exchange_packets: bool
    #: ``capture_globals()["sequences"]`` at the coordinator's pre-build
    #: point: the common base every region's id sequences start from.
    base_sequences: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    #: Per-region flow-id offset: prefix sums of ``hosted_counts``.
    flow_id_offsets: List[int] = field(default_factory=list)


def install_sequences(base_sequences: Dict[str, Tuple[int, ...]],
                      flow_id_offset: int) -> None:
    """Set every global ID sequence to the coordinator's base, with the
    flow-id sequence advanced by ``flow_id_offset`` — the position a
    sequential inline build would have reached before this region."""
    for key, args in sorted(base_sequences.items()):
        module_name, attr = key.split(":")
        if key == _FLOW_SEQUENCE and flow_id_offset:
            args = (args[0] + flow_id_offset,) + tuple(args[1:])
        setattr(import_module(module_name), attr, itertools.count(*args))


class ResidentRegionHost:
    """One live region plus its private globals bundle.

    All mutating entry points obey the swap discipline: restore this
    region's bundle, run, capture the bundle back.  The caller (worker
    main loop or inline coordinator) is responsible for the *outer*
    isolation — it must not expect the process-wide telemetry to mean
    anything while hosts are alive.
    """

    def __init__(self, region_index: int, region: RegionWorld,
                 bundle: Dict[str, Any]):
        self.region_index = region_index
        self.region = region
        #: capture_globals() as of this region's last quiescent point.
        self.bundle = bundle
        #: Sampler records already shipped to the coordinator.
        self._record_cursor = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, init: WorkerInit, region_index: int,
              full: Any) -> "ResidentRegionHost":
        """Build the region fresh (the fast path: no blob anywhere).

        ``full`` is the worker's full-topology rebuild, shared across
        the regions it hosts.  The reset + sequence install reproduce
        the exact context the sequential inline build gives each region.
        """
        telemetry.reset()
        offset = (init.flow_id_offsets[region_index]
                  if init.flow_id_offsets else 0)
        install_sequences(init.base_sequences, offset)
        region = build_region(full, init.scenario, init.partition,
                              region_index, init.sync, init.paths,
                              pin_plan=init.pin_plan,
                              exchange_packets=init.exchange_packets)
        return cls(region_index, region, capture_globals())

    @classmethod
    def from_blob(cls, region_index: int, blob: bytes
                  ) -> "ResidentRegionHost":
        """Unpack a checkpointed region — once, at resume (the only time
        the resident transport ever deserializes state)."""
        telemetry.reset()
        bundle: Dict[str, Any] = {}
        region = unpack_state(blob, globals_out=bundle)
        return cls(region_index, region, bundle)

    # -- per-window -----------------------------------------------------
    def window(self, t_end: float, inject: Optional[Dict[str, Any]]
               ) -> Tuple[List[Tuple[float, str, Packet]],
                          Dict[int, float],
                          List[Any]]:
        """Advance to ``t_end``; returns (outbox, boundary report, new
        sample records since the last window)."""
        restore_globals(self.bundle)
        region = self.region
        region.inject(inject)
        region.run_window(t_end)
        outbox = region.drain_outbox()
        report = region.boundary_report()
        self.bundle = capture_globals()
        records = region.sampler.records
        new_records = records[self._record_cursor:]
        self._record_cursor = len(records)
        return outbox, report, new_records

    # -- on demand ------------------------------------------------------
    def checkpoint(self) -> bytes:
        """Serialize the region with its own bundle — identical bytes to
        what the legacy per-window transport produced at this point."""
        return pack_state(self.region, globals_bundle=self.bundle)

    def collect(self) -> Dict[str, Any]:
        """Final observables: homed-flow finals, fluid counters, the
        region's telemetry snapshot (its bundle's — equal to what
        unpacking a checkpoint blob into a fresh registry would show),
        and any sample records not yet streamed through a window reply
        (a resumed-at-horizon region runs zero windows, so its blob's
        record history ships here)."""
        region = self.region
        records = region.sampler.records
        remaining = records[self._record_cursor:]
        self._record_cursor = len(records)
        return {
            "finals": region.home_finals(),
            "updates": region.fluid.updates,
            "allocation_passes": region.fluid.allocation_passes,
            "metrics": self.bundle["metrics"],
            "records": remaining,
        }


def region_worker_main(conn: Connection, worker_index: int,
                       init: WorkerInit) -> None:
    """A resident worker's entry point: serve protocol commands forever.

    One command is in flight per pipe at a time (the coordinator's wave
    discipline), so a plain recv/dispatch/send loop suffices.  Failures
    are reported as ``("error", traceback)`` replies; the loop keeps
    serving (its other regions are still healthy) and the coordinator
    decides whether to abort.
    """
    full = build_topology(init.scenario, Simulator(seed=init.scenario.seed))
    hosts: Dict[int, ResidentRegionHost] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # coordinator went away; nothing left to serve
        kind = message[0]
        if kind == "exit":
            return
        try:
            if kind == "build":
                region_index = message[1]
                hosts[region_index] = ResidentRegionHost.build(
                    init, region_index, full)
                reply: Any = ("ok", None)
            elif kind == "load":
                region_index, blob = message[1], message[2]
                hosts[region_index] = ResidentRegionHost.from_blob(
                    region_index, blob)
                reply = ("ok", None)
            elif kind == "window":
                _, region_index, t_end, inject = message
                reply = ("ok", hosts[region_index].window(t_end, inject))
            elif kind == "checkpoint":
                reply = ("ok", hosts[message[1]].checkpoint())
            elif kind == "collect":
                reply = ("ok", hosts[message[1]].collect())
            elif kind == "stats":
                # Wall-independent accounting for the bench record; the
                # coordinator stores it under the (non-stable) transport
                # section only.
                cpu = time.process_time()  # reprolint: disable=RPL002
                reply = ("ok", {"cpu_time_s": cpu})
            else:
                reply = ("error", f"unknown command {kind!r}")
        except Exception:  # surfaced coordinator-side as ShardWorkerError
            reply = ("error", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
