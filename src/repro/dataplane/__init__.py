"""Programmable data-plane primitives.

The building blocks boosters are made of: resource vectors and ledgers,
register arrays, probabilistic structures (count-min sketch, bloom
filter, HashPipe), per-flow tables with TCP tracking, declarative
parsers, match-action tables with stage layout, and the XOR-parity FEC
codec used by state transfer.
"""

from .batch import HAVE_NUMPY, PacketBatch
from .bloom import BloomFilter
from .fec import (FecDecoder, FecEncoder, FecSymbol,
                  loss_survival_probability)
from .flow_table import FlowEntry, FlowTable, TcpState
from .hashpipe import HashPipe
from .parser import BASE_FIELDS, ROUTING_PARSER, HeaderParser
from .pipeline import (MatchActionTable, MatchKind, PipelineLayoutError,
                       StageLayout, TableEntry, layout_tables)
from .registers import (RegisterArray, encode_keys, hash_batch, salt_seed,
                        stable_hash)
from .resources import (DIMENSIONS, EDGE_SWITCH, TOFINO_LIKE,
                        ResourceExhausted, ResourceLedger, ResourceVector)
from .sketch import CountMinSketch

__all__ = [
    "BASE_FIELDS", "BloomFilter", "CountMinSketch", "DIMENSIONS",
    "EDGE_SWITCH", "FecDecoder", "FecEncoder", "FecSymbol", "FlowEntry",
    "FlowTable", "HAVE_NUMPY", "HashPipe", "HeaderParser",
    "MatchActionTable", "MatchKind", "PacketBatch", "PipelineLayoutError",
    "ROUTING_PARSER", "RegisterArray", "ResourceExhausted",
    "ResourceLedger", "ResourceVector", "StageLayout", "TOFINO_LIKE",
    "TableEntry", "TcpState", "encode_keys", "hash_batch",
    "layout_tables", "loss_survival_probability", "salt_seed",
    "stable_hash",
]
