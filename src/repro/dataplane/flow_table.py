"""Per-flow state tables with TCP connection tracking.

Section 4.1's LFA detector needs "persistent, low-rate flows to a
destination prefix", detected by "adapting algorithms that monitor
per-flow TCP state in the data plane" (Dapper / Blink style).  The
:class:`FlowTable` here maintains bounded per-flow entries — first/last
seen, packet and byte counts, an EWMA rate, and a small TCP state
machine — with LRU eviction to respect SRAM limits.
"""

from __future__ import annotations

import enum
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence

from .resources import ResourceVector


class TcpState(enum.Enum):
    """Simplified per-flow TCP state machine."""

    NEW = "new"
    SYN_SEEN = "syn_seen"
    ESTABLISHED = "established"
    CLOSED = "closed"


@dataclass
class FlowEntry:
    """State tracked per flow."""

    key: Hashable
    first_seen: float
    last_seen: float
    packets: int = 0
    bytes: int = 0
    tcp_state: TcpState = TcpState.NEW
    #: EWMA of the instantaneous rate (bits/second).
    rate_bps: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def age(self) -> float:
        return self.last_seen - self.first_seen

    def is_persistent(self, min_age_s: float) -> bool:
        return self.age >= min_age_s

    def is_low_rate(self, max_rate_bps: float) -> bool:
        return self.rate_bps <= max_rate_bps


class FlowTable:
    """A bounded LRU table of :class:`FlowEntry` records."""

    def __init__(self, name: str, capacity: int = 4096,
                 rate_ewma_alpha: float = 0.3):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 < rate_ewma_alpha <= 1:
            raise ValueError("rate_ewma_alpha must be in (0, 1]")
        self.name = name
        self.capacity = capacity
        self.rate_ewma_alpha = rate_ewma_alpha
        self._entries: "OrderedDict[Hashable, FlowEntry]" = OrderedDict()
        self.evictions = 0

    # ------------------------------------------------------------------
    def observe(self, key: Hashable, now: float, size_bytes: int = 0,
                syn: bool = False, ack: bool = False,
                fin: bool = False, rst: bool = False) -> FlowEntry:
        """Record one packet of ``key``; creates/evicts as needed."""
        entry = self._entries.get(key)
        if entry is None:
            entry = FlowEntry(key=key, first_seen=now, last_seen=now)
            self._entries[key] = entry
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        else:
            dt = now - entry.last_seen
            if dt > 0:
                instant = size_bytes * 8 / dt
                entry.rate_bps += (instant - entry.rate_bps) * self.rate_ewma_alpha
            entry.last_seen = now
        self._entries.move_to_end(key)

        entry.packets += 1
        entry.bytes += size_bytes
        self._advance_tcp(entry, syn=syn, ack=ack, fin=fin, rst=rst)
        return entry

    @staticmethod
    def _advance_tcp(entry: FlowEntry, *, syn: bool, ack: bool,
                     fin: bool, rst: bool) -> None:
        if rst or fin:
            entry.tcp_state = TcpState.CLOSED
            return
        if entry.tcp_state == TcpState.NEW and syn:
            entry.tcp_state = TcpState.SYN_SEEN
        elif entry.tcp_state == TcpState.SYN_SEEN and ack:
            entry.tcp_state = TcpState.ESTABLISHED
        elif entry.tcp_state == TcpState.CLOSED and syn and not ack:
            # A fresh SYN (no ACK — not a straggler from the old
            # connection) on a closed flow is a new handshake on a
            # reused port; without the reopen, the flow would stay
            # CLOSED forever and evade the LFA persistent-flow query.
            entry.tcp_state = TcpState.SYN_SEEN

    # ------------------------------------------------------------------
    # Batch path (see DESIGN.md "Batch data plane").  LRU eviction, the
    # rate EWMA, and the TCP machine are all order-dependent, so packets
    # replay in order — the win is one tight loop with hoisted lookups
    # instead of a Python call stack per packet.
    # ------------------------------------------------------------------
    def observe_batch(self, keys: Sequence[Hashable], now: float,
                      sizes: Sequence[int],
                      syn: Optional[Sequence[bool]] = None,
                      ack: Optional[Sequence[bool]] = None,
                      fin: Optional[Sequence[bool]] = None,
                      rst: Optional[Sequence[bool]] = None) -> None:
        """Vectorized :meth:`observe` for one coalesced window.

        All packets share the window timestamp ``now`` (the contract the
        batch engine provides); flag columns default to all-false.  End
        state is byte-identical to the equivalent sequential loop.
        """
        n = len(keys)
        if len(sizes) != n:
            raise ValueError(
                f"{self.name}: key/size column length mismatch "
                f"({n} vs {len(sizes)})")
        entries = self._entries
        get = entries.get
        move_to_end = entries.move_to_end
        popitem = entries.popitem
        capacity = self.capacity
        alpha = self.rate_ewma_alpha
        has_flags = (syn is not None or ack is not None
                     or fin is not None or rst is not None)
        advance = self._advance_tcp
        flags_active = has_flags and (
            (syn is not None and any(syn)) or (ack is not None and any(ack))
            or (fin is not None and any(fin))
            or (rst is not None and any(rst)))
        if not flags_active:
            # Coalesced fast path.  Every packet in the window shares
            # ``now``, so for each key only its *first* occurrence can
            # move the EWMA (later ones see dt == 0) and the final LRU
            # position is its *last* occurrence.  When no eviction can
            # fire, the whole window folds to one pass over unique keys.
            #
            # The O(n) passes run over C-hashable id() tokens instead of
            # the keys themselves: batch callers share one key object
            # per flow, so hashing the key (a Python-level __hash__)
            # happens once per *unique* flow only.  With unshared but
            # equal key objects the grouping merely splits a flow into
            # several groups — the accumulations below are associative,
            # only the first processed group sees dt > 0 (the others
            # find last_seen == now), and the final LRU move of a flow
            # is still its globally last occurrence, so the end state is
            # unchanged (just less is deduplicated).
            ids = list(map(id, keys))
            id2key = dict(zip(ids, keys))
            unique = dict.fromkeys(ids)
            n_new = sum(1 for t in unique if id2key[t] not in entries)
            if len(entries) + n_new <= capacity:
                pkt_tot: Dict[int, int] = {}
                byte_tot: Dict[int, int] = {}
                pget = pkt_tot.get
                bget = byte_tot.get
                for (t, size), mult in Counter(zip(ids, sizes)).items():
                    pkt_tot[t] = pget(t, 0) + mult
                    byte_tot[t] = bget(t, 0) + size * mult
                # dict(zip(reversed, reversed)): last assignment wins, so
                # each token maps to its first-occurrence size.
                first_size = dict(zip(reversed(ids), reversed(sizes)))
                for t in unique:
                    key = id2key[t]
                    entry = get(key)
                    if entry is None:
                        entry = FlowEntry(key=key, first_seen=now,
                                          last_seen=now)
                        entries[key] = entry
                    else:
                        dt = now - entry.last_seen
                        if dt > 0:
                            instant = first_size[t] * 8 / dt
                            entry.rate_bps += (instant
                                               - entry.rate_bps) * alpha
                        entry.last_seen = now
                    entry.packets += pkt_tot[t]
                    entry.bytes += byte_tot[t]
                # Reorder to the sequential end state: window keys move
                # to the back in last-occurrence order.
                for t in reversed(dict.fromkeys(reversed(ids))):
                    move_to_end(id2key[t])
                return
        for i in range(n):
            key = keys[i]
            size = sizes[i]
            entry = get(key)
            if entry is None:
                entry = FlowEntry(key=key, first_seen=now, last_seen=now)
                entries[key] = entry
                if len(entries) > capacity:
                    popitem(last=False)
                    self.evictions += 1
            else:
                dt = now - entry.last_seen
                if dt > 0:
                    instant = size * 8 / dt
                    entry.rate_bps += (instant - entry.rate_bps) * alpha
                entry.last_seen = now
            move_to_end(key)
            entry.packets += 1
            entry.bytes += size
            if has_flags:
                s = bool(syn[i]) if syn is not None else False
                a = bool(ack[i]) if ack is not None else False
                f = bool(fin[i]) if fin is not None else False
                r = bool(rst[i]) if rst is not None else False
                if s or a or f or r:
                    advance(entry, syn=s, ack=a, fin=f, rst=r)

    def observe_batch_reference(self, keys: Sequence[Hashable], now: float,
                                sizes: Sequence[int],
                                syn: Optional[Sequence[bool]] = None,
                                ack: Optional[Sequence[bool]] = None,
                                fin: Optional[Sequence[bool]] = None,
                                rst: Optional[Sequence[bool]] = None) -> None:
        """Sequential twin of :meth:`observe_batch` (property-test oracle)."""
        n = len(keys)
        for i in range(n):
            self.observe(
                keys[i], now, size_bytes=sizes[i],
                syn=bool(syn[i]) if syn is not None else False,
                ack=bool(ack[i]) if ack is not None else False,
                fin=bool(fin[i]) if fin is not None else False,
                rst=bool(rst[i]) if rst is not None else False)

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[FlowEntry]:
        return self._entries.get(key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[FlowEntry]:
        return list(self._entries.values())

    def expire_idle(self, now: float, idle_timeout_s: float) -> int:
        """Drop entries idle longer than the timeout; returns the count."""
        stale = [k for k, e in self._entries.items()
                 if now - e.last_seen > idle_timeout_s]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def persistent_low_rate(self, min_age_s: float,
                            max_rate_bps: float) -> List[FlowEntry]:
        """The LFA-suspicion query: long-lived, low-rate, established."""
        return [e for e in self._entries.values()
                if e.is_persistent(min_age_s) and e.is_low_rate(max_rate_bps)
                and e.tcp_state in (TcpState.ESTABLISHED, TcpState.SYN_SEEN)]

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {
            "evictions": self.evictions,
            "entries": [
                {
                    "key": entry.key,
                    "first_seen": entry.first_seen,
                    "last_seen": entry.last_seen,
                    "packets": entry.packets,
                    "bytes": entry.bytes,
                    "tcp_state": entry.tcp_state.value,
                    "rate_bps": entry.rate_bps,
                    # Booster-attached per-flow state (suspicion scores,
                    # sync digests, ...) must survive Section-3.4 state
                    # transfer with the rest of the entry.
                    "extra": dict(entry.extra),
                }
                for entry in self._entries.values()
            ],
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        self.clear()
        # Snapshots from before the eviction counter was exported carry
        # no "evictions" key; treat them as a fresh counter.
        self.evictions = state.get("evictions", 0)
        for record in state["entries"]:
            entry = FlowEntry(
                key=record["key"], first_seen=record["first_seen"],
                last_seen=record["last_seen"], packets=record["packets"],
                bytes=record["bytes"],
                tcp_state=TcpState(record["tcp_state"]),
                rate_bps=record["rate_bps"],
                extra=dict(record.get("extra", {})))
            self._entries[entry.key] = entry

    def resource_requirement(self) -> ResourceVector:
        # ~64B of SRAM per entry for key + counters + timestamps.
        return ResourceVector(stages=2, sram_mb=self.capacity * 64 / 1e6,
                              tcam_kb=0, alus=4)

    def __repr__(self) -> str:
        return (f"FlowTable({self.name!r}, {len(self)}/{self.capacity}, "
                f"evictions={self.evictions})")
