"""Per-flow state tables with TCP connection tracking.

Section 4.1's LFA detector needs "persistent, low-rate flows to a
destination prefix", detected by "adapting algorithms that monitor
per-flow TCP state in the data plane" (Dapper / Blink style).  The
:class:`FlowTable` here maintains bounded per-flow entries — first/last
seen, packet and byte counts, an EWMA rate, and a small TCP state
machine — with LRU eviction to respect SRAM limits.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from .resources import ResourceVector


class TcpState(enum.Enum):
    """Simplified per-flow TCP state machine."""

    NEW = "new"
    SYN_SEEN = "syn_seen"
    ESTABLISHED = "established"
    CLOSED = "closed"


@dataclass
class FlowEntry:
    """State tracked per flow."""

    key: Hashable
    first_seen: float
    last_seen: float
    packets: int = 0
    bytes: int = 0
    tcp_state: TcpState = TcpState.NEW
    #: EWMA of the instantaneous rate (bits/second).
    rate_bps: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def age(self) -> float:
        return self.last_seen - self.first_seen

    def is_persistent(self, min_age_s: float) -> bool:
        return self.age >= min_age_s

    def is_low_rate(self, max_rate_bps: float) -> bool:
        return self.rate_bps <= max_rate_bps


class FlowTable:
    """A bounded LRU table of :class:`FlowEntry` records."""

    def __init__(self, name: str, capacity: int = 4096,
                 rate_ewma_alpha: float = 0.3):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 < rate_ewma_alpha <= 1:
            raise ValueError("rate_ewma_alpha must be in (0, 1]")
        self.name = name
        self.capacity = capacity
        self.rate_ewma_alpha = rate_ewma_alpha
        self._entries: "OrderedDict[Hashable, FlowEntry]" = OrderedDict()
        self.evictions = 0

    # ------------------------------------------------------------------
    def observe(self, key: Hashable, now: float, size_bytes: int = 0,
                syn: bool = False, ack: bool = False,
                fin: bool = False, rst: bool = False) -> FlowEntry:
        """Record one packet of ``key``; creates/evicts as needed."""
        entry = self._entries.get(key)
        if entry is None:
            entry = FlowEntry(key=key, first_seen=now, last_seen=now)
            self._entries[key] = entry
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        else:
            dt = now - entry.last_seen
            if dt > 0:
                instant = size_bytes * 8 / dt
                entry.rate_bps += (instant - entry.rate_bps) * self.rate_ewma_alpha
            entry.last_seen = now
        self._entries.move_to_end(key)

        entry.packets += 1
        entry.bytes += size_bytes
        self._advance_tcp(entry, syn=syn, ack=ack, fin=fin, rst=rst)
        return entry

    @staticmethod
    def _advance_tcp(entry: FlowEntry, *, syn: bool, ack: bool,
                     fin: bool, rst: bool) -> None:
        if rst or fin:
            entry.tcp_state = TcpState.CLOSED
            return
        if entry.tcp_state == TcpState.NEW and syn:
            entry.tcp_state = TcpState.SYN_SEEN
        elif entry.tcp_state == TcpState.SYN_SEEN and ack:
            entry.tcp_state = TcpState.ESTABLISHED

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[FlowEntry]:
        return self._entries.get(key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[FlowEntry]:
        return list(self._entries.values())

    def expire_idle(self, now: float, idle_timeout_s: float) -> int:
        """Drop entries idle longer than the timeout; returns the count."""
        stale = [k for k, e in self._entries.items()
                 if now - e.last_seen > idle_timeout_s]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def persistent_low_rate(self, min_age_s: float,
                            max_rate_bps: float) -> List[FlowEntry]:
        """The LFA-suspicion query: long-lived, low-rate, established."""
        return [e for e in self._entries.values()
                if e.is_persistent(min_age_s) and e.is_low_rate(max_rate_bps)
                and e.tcp_state in (TcpState.ESTABLISHED, TcpState.SYN_SEEN)]

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {
            "entries": [
                {
                    "key": entry.key,
                    "first_seen": entry.first_seen,
                    "last_seen": entry.last_seen,
                    "packets": entry.packets,
                    "bytes": entry.bytes,
                    "tcp_state": entry.tcp_state.value,
                    "rate_bps": entry.rate_bps,
                }
                for entry in self._entries.values()
            ]
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        self.clear()
        for record in state["entries"]:
            entry = FlowEntry(
                key=record["key"], first_seen=record["first_seen"],
                last_seen=record["last_seen"], packets=record["packets"],
                bytes=record["bytes"],
                tcp_state=TcpState(record["tcp_state"]),
                rate_bps=record["rate_bps"])
            self._entries[entry.key] = entry

    def resource_requirement(self) -> ResourceVector:
        # ~64B of SRAM per entry for key + counters + timestamps.
        return ResourceVector(stages=2, sram_mb=self.capacity * 64 / 1e6,
                              tcam_kb=0, alus=4)

    def __repr__(self) -> str:
        return (f"FlowTable({self.name!r}, {len(self)}/{self.capacity}, "
                f"evictions={self.evictions})")
