"""Packet parsers and deparsers as shareable pipeline components.

Parsers/deparsers are the third class of shareable modules Section 3.1
names.  A :class:`HeaderParser` declares which fields a booster needs off
the wire; two boosters whose field sets are compatible can share one
parser instance, and the analyzer merges them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable

from ..netsim.packet import Packet
from .resources import ResourceVector

#: Fields extractable from the base packet (everything else must live in
#: the custom header mapping).
BASE_FIELDS: FrozenSet[str] = frozenset({
    "src", "dst", "proto", "sport", "dport", "ttl", "size_bytes",
    "tcp_flags", "kind",
})


@dataclass(frozen=True)
class HeaderParser:
    """A declarative parser over base fields plus custom headers."""

    name: str
    base_fields: FrozenSet[str]
    custom_fields: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        unknown = self.base_fields - BASE_FIELDS
        if unknown:
            raise ValueError(
                f"parser {self.name!r} requests unknown base fields: "
                f"{sorted(unknown)}")

    @classmethod
    def of(cls, name: str, base: Iterable[str] = (),
           custom: Iterable[str] = ()) -> "HeaderParser":
        return cls(name, frozenset(base), frozenset(custom))

    # ------------------------------------------------------------------
    def parse(self, packet: Packet) -> Dict[str, Any]:
        """Extract the declared fields from a packet."""
        values: Dict[str, Any] = {}
        for field_name in self.base_fields:
            values[field_name] = getattr(packet, field_name)
        for field_name in self.custom_fields:
            values[field_name] = packet.headers.get(field_name)
        return values

    def deparse(self, packet: Packet, values: Dict[str, Any]) -> None:
        """Write custom-field values back onto the packet."""
        for field_name, value in values.items():
            if field_name in self.base_fields:
                setattr(packet, field_name, value)
            else:
                packet.headers[field_name] = value

    # ------------------------------------------------------------------
    def covers(self, other: "HeaderParser") -> bool:
        """True iff this parser extracts everything ``other`` needs."""
        return (other.base_fields <= self.base_fields
                and other.custom_fields <= self.custom_fields)

    def merged_with(self, other: "HeaderParser",
                    name: str = "") -> "HeaderParser":
        """The union parser serving both field sets (what sharing installs)."""
        return HeaderParser(
            name or f"{self.name}+{other.name}",
            self.base_fields | other.base_fields,
            self.custom_fields | other.custom_fields)

    def resource_requirement(self) -> ResourceVector:
        # Parsers run in the dedicated parser block of RMT hardware, not
        # in match-action stages; they cost only state memory.
        n_fields = len(self.base_fields) + len(self.custom_fields)
        return ResourceVector(stages=0, sram_mb=0.01 * n_fields,
                              tcam_kb=0, alus=0)

    def __str__(self) -> str:
        return (f"HeaderParser({self.name!r}, "
                f"base={sorted(self.base_fields)}, "
                f"custom={sorted(self.custom_fields)})")


#: The parser every routing program already needs; boosters whose parsers
#: are covered by it are free.
ROUTING_PARSER = HeaderParser.of(
    "routing", base=("src", "dst", "proto", "sport", "dport", "ttl"))
