"""Structure-of-arrays packet batches: the vectorized data-plane substrate.

Real fast paths never touch packets one Python call at a time — the XDP
lesson is to run cheap discriminating checks over a whole *batch* at the
driver layer and only drop to per-packet logic for the survivors.  This
module provides the batch currency the rest of the repo speaks:

* :class:`PacketBatch` — a window of packets exposed as parallel columns
  (``src``, ``dst``, ``sport``, ``size_bytes``, ``ts``, ...).  Numeric
  columns are :mod:`array` arrays; with numpy installed they can be
  viewed zero-ish-copy via :meth:`PacketBatch.as_numpy`.  Columns are
  built lazily and cached, so a batch that only ever needs ``src`` never
  pays for the rest.
* an alive/drop mask so pipeline stages can pre-filter vectorized
  (flagged-source masks, bloom membership masks) before any per-packet
  program logic runs — see ``ProgrammableSwitch.receive_batch``.
* re-exports of the salt-folded CRC hash kernels
  (:func:`~repro.dataplane.registers.hash_batch`) that the batched
  sketch / bloom / HashPipe update paths share.

Batch kernels are contractually byte-identical to their sequential
twins (the ``*_batch_reference`` methods); the property tests in
``tests/dataplane/test_batch.py`` enforce this over 50 seeds.
"""

from __future__ import annotations

from array import array
from itertools import repeat
from operator import is_
from typing import (TYPE_CHECKING, Any, Dict, Iterator, List, Optional,
                    Sequence, Tuple)

from .registers import encode_keys, hash_batch, salt_seed, stable_hash

try:  # numpy is an acceleration, not a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

HAVE_NUMPY = _np is not None

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.packet import Packet

__all__ = [
    "HAVE_NUMPY", "PacketBatch", "encode_keys", "hash_batch",
    "salt_seed", "stable_hash",
]

#: Column name -> array typecode for the numeric columns.
_NUMERIC_COLUMNS = {
    "sport": "l",
    "dport": "l",
    "ttl": "l",
    "tcp_flags": "l",
    "size_bytes": "q",
    "ts": "d",
}

#: Dedicated builders for the hot columns: a direct-attribute list
#: comprehension is ~2x faster than the generic getattr path, and these
#: run once per column per batch on the fast path.
_COLUMN_BUILDERS = {
    "src": lambda ps: [p.src for p in ps],
    "dst": lambda ps: [p.dst for p in ps],
    "kind": lambda ps: [p.kind for p in ps],
    "proto": lambda ps: [p.proto for p in ps],
    "sport": lambda ps: array("l", [p.sport for p in ps]),
    "dport": lambda ps: array("l", [p.dport for p in ps]),
    "ttl": lambda ps: array("l", [p.ttl for p in ps]),
    "tcp_flags": lambda ps: array("l", [p.tcp_flags for p in ps]),
    "size_bytes": lambda ps: array("q", [p.size_bytes for p in ps]),
    "ts": lambda ps: array("d", [p.created_at for p in ps]),
}

_DATA_KIND: Any = None


def _data_kind() -> Any:
    """The ``PacketKind.DATA`` sentinel, imported lazily to keep this
    module free of netsim imports at import time (netsim's switch layer
    imports us)."""
    global _DATA_KIND
    if _DATA_KIND is None:
        from ..netsim.packet import PacketKind
        _DATA_KIND = PacketKind.DATA
    return _DATA_KIND


class PacketBatch:
    """A window of packets viewed as parallel columns plus a live mask.

    The batch wraps the underlying :class:`~repro.netsim.packet.Packet`
    objects (the simulator still delivers real packets end-to-end) and
    materializes structure-of-arrays columns on first access.  Pipeline
    stages communicate through the ``alive`` mask: a stage drops packet
    ``i`` with :meth:`drop`, and later stages only see survivors.
    """

    __slots__ = ("packets", "alive", "overrides", "dropped", "consumed",
                 "_columns", "_data_mask", "_data_alive", "_alive_n")

    def __init__(self, packets: Sequence["Packet"]):
        self.packets: List["Packet"] = list(packets)
        #: 1 = still in the pipeline, 0 = dropped/consumed.  Mutate only
        #: through drop()/consume()/kill() so the cached counts and the
        #: data mask stay in sync.
        self.alive = bytearray([1]) * len(self.packets)
        self._alive_n = len(self.packets)
        #: Per-packet Forward overrides set by fallback program results.
        self.overrides: Dict[int, str] = {}
        self.dropped = 0
        self.consumed = 0
        self._columns: Dict[str, Any] = {}
        self._data_mask: Optional[bytearray] = None
        self._data_alive = 0

    @classmethod
    def from_packets(cls, packets: Sequence["Packet"]) -> "PacketBatch":
        return cls(packets)

    # ------------------------------------------------------------------
    # Columns (lazy, cached)
    # ------------------------------------------------------------------
    def column(self, name: str) -> Sequence[Any]:
        """The named column as a parallel array (cached after first use)."""
        col = self._columns.get(name)
        if col is None:
            builder = _COLUMN_BUILDERS.get(name)
            if builder is not None:
                col = builder(self.packets)
            elif name == "flow_tuple":
                col = list(zip(self.column("src"), self.column("dst"),
                               self.column("proto"), self.column("sport"),
                               self.column("dport")))
            elif name == "flow_key":
                # One FlowKey object per *unique* 5-tuple: flow keys are
                # value objects, so sharing them across packets of the
                # same flow is observationally identical and skips the
                # per-packet dataclass construction.  Two C-speed passes
                # (dedupe, then gather) instead of a per-packet Python
                # loop; dict(zip(...)) keeps first-occurrence key order.
                tups = self.column("flow_tuple")
                mapping = {tup: packet.flow_key for tup, packet
                           in dict(zip(tups, self.packets)).items()}
                self._columns["_unique_flow_keys"] = list(mapping.values())
                col = list(map(mapping.__getitem__, tups))
            else:
                col = [getattr(p, name) for p in self.packets]
            self._columns[name] = col
        return col

    @property
    def src(self) -> List[str]:
        return self.column("src")  # type: ignore[return-value]

    @property
    def dst(self) -> List[str]:
        return self.column("dst")  # type: ignore[return-value]

    @property
    def sport(self) -> Sequence[int]:
        return self.column("sport")

    @property
    def size_bytes(self) -> Sequence[int]:
        return self.column("size_bytes")

    @property
    def ts(self) -> Sequence[float]:
        """Creation timestamps (the coalesced window stamp)."""
        return self.column("ts")

    @property
    def flow_keys(self) -> Sequence[Any]:
        return self.column("flow_key")

    def unique_flow_keys(self) -> List[Any]:
        """Unique flow keys in first-occurrence order, over *all*
        packets of the batch regardless of liveness (callers gating on
        the alive mask must still apply it per index)."""
        col = self._columns.get("_unique_flow_keys")
        if col is None:
            self.column("flow_key")
            col = self._columns["_unique_flow_keys"]
        return col

    def as_numpy(self, name: str) -> Any:
        """The named numeric column as a numpy array (requires numpy)."""
        if _np is None:
            raise RuntimeError(
                "numpy is not available; install it or use column()")
        return _np.asarray(self.column(name))

    def data_mask(self) -> bytearray:
        """``1`` where the packet is DATA *and* still alive — the kind
        gate every booster kernel applies before touching its state.

        Built once and maintained incrementally by :meth:`drop`,
        :meth:`consume`, and :meth:`kill` (packet kinds never change
        mid-batch), so repeated calls from successive pipeline stages
        are O(1)."""
        mask = self._data_mask
        if mask is None:
            data = _data_kind()
            kinds = self.column("kind")
            if self._alive_n == len(self.packets):
                # No stage has removed a packet yet: identity-compare
                # the kind column at C speed.
                mask = bytearray(map(is_, kinds, repeat(data)))
            else:
                alive = self.alive
                mask = bytearray(
                    1 if (alive[i] and k is data) else 0
                    for i, k in enumerate(kinds))
            self._data_mask = mask
            self._data_alive = sum(mask)
        return mask

    @property
    def all_data(self) -> bool:
        """True when every packet in the batch is a still-alive DATA
        packet (only meaningful after :meth:`data_mask` has been built) —
        the condition under which kernels may consume whole columns
        without gather loops."""
        return (self._data_mask is not None
                and self._data_alive == len(self.packets))

    # ------------------------------------------------------------------
    # Live-mask bookkeeping
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.packets)

    def alive_indices(self) -> List[int]:
        alive = self.alive
        return [i for i in range(len(alive)) if alive[i]]

    def alive_count(self) -> int:
        return self._alive_n

    def drop(self, index: int, reason: str) -> None:
        """Drop packet ``index`` (first reason wins, as on the
        per-packet path)."""
        if self.alive[index]:
            self.alive[index] = 0
            self._alive_n -= 1
            self.dropped += 1
            self.packets[index].mark_dropped(reason)
            mask = self._data_mask
            if mask is not None and mask[index]:
                mask[index] = 0
                self._data_alive -= 1

    def consume(self, index: int) -> None:
        """Absorb packet ``index`` (probe terminating here)."""
        if self.alive[index]:
            self.alive[index] = 0
            self._alive_n -= 1
            self.consumed += 1
            mask = self._data_mask
            if mask is not None and mask[index]:
                mask[index] = 0
                self._data_alive -= 1

    def kill(self, index: int) -> None:
        """Remove packet ``index`` from the pipeline *silently* — no drop
        or consume bookkeeping.  Used when another mechanism takes over
        the packet (e.g. TTL expiry hands it to the ICMP reply path)."""
        if self.alive[index]:
            self.alive[index] = 0
            self._alive_n -= 1
            mask = self._data_mask
            if mask is not None and mask[index]:
                mask[index] = 0
                self._data_alive -= 1

    def survivors(self) -> Iterator[Tuple[int, "Packet"]]:
        """(index, packet) pairs still alive, in arrival order."""
        alive = self.alive
        packets = self.packets
        for i in range(len(packets)):
            if alive[i]:
                yield i, packets[i]

    def __repr__(self) -> str:
        return (f"PacketBatch({len(self.packets)} pkts, "
                f"alive={self.alive_count()}, dropped={self.dropped}, "
                f"consumed={self.consumed})")
