"""Switch resource model: vectors of constrained hardware resources.

Section 3.1 of the paper models each switch as a vector of resource
constraints ``<Θ1, Θ2, ... Θk>`` and each program as a requirement vector
``<θj1, θj2, ... θjk>``; a set of programs fits on a switch iff the sum of
their requirements stays within the constraints in every dimension.

We use four dimensions, mirroring RMT-style hardware (Bosshart et al.):

* ``stages`` — physical match-action stages (typically 10-20),
* ``sram_mb`` — SRAM for exact-match tables, registers, sketches,
* ``tcam_kb`` — TCAM for ternary/longest-prefix matches,
* ``alus`` — stateful ALUs for register updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

#: Canonical ordering of resource dimensions.
DIMENSIONS: Tuple[str, ...] = ("stages", "sram_mb", "tcam_kb", "alus")


@dataclass(frozen=True)
class ResourceVector:
    """An immutable vector over the four resource dimensions.

    Supports addition, subtraction, scaling, and component-wise comparison
    (``fits_within``), which is all the scheduler's bin packing needs.
    """

    stages: float = 0.0
    sram_mb: float = 0.0
    tcam_kb: float = 0.0
    alus: float = 0.0

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, float]:
        return {dim: getattr(self, dim) for dim in DIMENSIONS}

    def as_tuple(self) -> Tuple[float, ...]:
        return tuple(getattr(self, dim) for dim in DIMENSIONS)

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "ResourceVector":
        unknown = set(values) - set(DIMENSIONS)
        if unknown:
            raise ValueError(f"unknown resource dimensions: {sorted(unknown)}")
        return cls(**{dim: float(values.get(dim, 0.0)) for dim in DIMENSIONS})

    @classmethod
    def zero(cls) -> "ResourceVector":
        return cls()

    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(*(a + b for a, b in
                                zip(self.as_tuple(), other.as_tuple())))

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(*(a - b for a, b in
                                zip(self.as_tuple(), other.as_tuple())))

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector(*(a * factor for a in self.as_tuple()))

    def fits_within(self, budget: "ResourceVector",
                    epsilon: float = 1e-9) -> bool:
        """True iff every component is within the budget (with tolerance)."""
        return all(a <= b + epsilon
                   for a, b in zip(self.as_tuple(), budget.as_tuple()))

    def is_nonnegative(self, epsilon: float = 1e-9) -> bool:
        return all(a >= -epsilon for a in self.as_tuple())

    def dominating_fraction(self, budget: "ResourceVector") -> float:
        """Largest per-dimension fraction of the budget this vector uses.

        Used as the scalar "size" of a program in first-fit-decreasing
        packing heuristics.  Dimensions with a zero budget only count when
        the requirement is non-zero (then the fraction is infinite).
        """
        worst = 0.0
        for need, have in zip(self.as_tuple(), budget.as_tuple()):
            if have <= 0:
                if need > 0:
                    return float("inf")
                continue
            worst = max(worst, need / have)
        return worst

    @staticmethod
    def total(vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        result = ResourceVector.zero()
        for vec in vectors:
            result = result + vec
        return result

    def __str__(self) -> str:
        return (f"<stages={self.stages:g}, sram={self.sram_mb:g}MB, "
                f"tcam={self.tcam_kb:g}KB, alus={self.alus:g}>")


#: A Tofino-like profile: 12 usable stages after routing baseline,
#: generous SRAM, modest TCAM (values are per-switch aggregates).
TOFINO_LIKE = ResourceVector(stages=12, sram_mb=12.0, tcam_kb=1024, alus=48)

#: A smaller edge-switch profile.
EDGE_SWITCH = ResourceVector(stages=8, sram_mb=6.0, tcam_kb=512, alus=24)


class ResourceLedger:
    """Tracks allocations against a switch's resource budget.

    The ledger enforces the paper's feasibility constraint: at any moment
    the sum of installed programs' requirement vectors stays within the
    switch's constraint vector in every dimension.
    """

    def __init__(self, budget: ResourceVector):
        self.budget = budget
        self._allocations: Dict[str, ResourceVector] = {}

    @property
    def used(self) -> ResourceVector:
        return ResourceVector.total(self._allocations.values())

    @property
    def free(self) -> ResourceVector:
        return self.budget - self.used

    def can_allocate(self, requirement: ResourceVector) -> bool:
        return (self.used + requirement).fits_within(self.budget)

    def allocate(self, name: str, requirement: ResourceVector) -> None:
        """Reserve resources under ``name``; raises if infeasible."""
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if not self.can_allocate(requirement):
            raise ResourceExhausted(
                f"cannot allocate {requirement} under {name!r}: "
                f"used={self.used}, budget={self.budget}")
        self._allocations[name] = requirement

    def release(self, name: str) -> ResourceVector:
        try:
            return self._allocations.pop(name)
        except KeyError:
            raise KeyError(f"no allocation named {name!r}") from None

    def allocations(self) -> Dict[str, ResourceVector]:
        return dict(self._allocations)

    def utilization(self) -> Dict[str, float]:
        """Per-dimension used/budget fractions (0 for zero-budget dims)."""
        used = self.used
        result = {}
        for dim in DIMENSIONS:
            have = getattr(self.budget, dim)
            result[dim] = getattr(used, dim) / have if have > 0 else 0.0
        return result


class ResourceExhausted(RuntimeError):
    """Raised when an allocation would exceed the switch's budget."""
