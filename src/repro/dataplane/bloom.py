"""Bloom filter: shareable membership structure for boosters.

Used by the hop-count filter (has this source been validated?) and the
packet-dropping booster (is this flow on the blocklist?).  No false
negatives, tunable false-positive rate.
"""

from __future__ import annotations

import math
import zlib
from typing import Any, Dict, List, Sequence

from .registers import RegisterArray, salt_seed, stable_hash
from .resources import ResourceVector


class BloomFilter:
    """A standard Bloom filter over one bit-per-cell register array."""

    def __init__(self, name: str, size_bits: int = 8192, n_hashes: int = 4):
        if n_hashes <= 0:
            raise ValueError(f"n_hashes must be positive, got {n_hashes}")
        self.name = name
        self.size_bits = size_bits
        self.n_hashes = n_hashes
        self.bits = RegisterArray(f"{name}.bits", size_bits, width_bits=1)
        self.inserted = 0
        #: Bumped on every write (add/add_batch/clear/import_state) so
        #: callers can cache membership verdicts between writes: a bloom
        #: only changes answers when its bits change.
        self.mutations = 0

    @classmethod
    def for_capacity(cls, name: str, capacity: int,
                     fp_rate: float = 0.01) -> "BloomFilter":
        """Size the filter for ``capacity`` items at the target FP rate."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < fp_rate < 1:
            raise ValueError("fp_rate must be in (0, 1)")
        size = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
        hashes = max(1, round(size / capacity * math.log(2)))
        return cls(name, size_bits=size, n_hashes=hashes)

    # ------------------------------------------------------------------
    def add(self, key: Any) -> None:
        for salt in range(self.n_hashes):
            self.bits.write(self._index(key, salt), 1)
        self.inserted += 1
        self.mutations += 1

    def __contains__(self, key: Any) -> bool:
        return all(self.bits.read(self._index(key, salt))
                   for salt in range(self.n_hashes))

    def _index(self, key: Any, salt: int) -> int:
        return stable_hash(key, salt) % self.size_bits

    # ------------------------------------------------------------------
    # Batch kernels (see DESIGN.md "Batch data plane"): bit writes are
    # idempotent, so each unique key is encoded and hashed exactly once
    # per salt; end state is byte-identical to the sequential loop.
    # ------------------------------------------------------------------
    def add_batch(self, keys: Sequence[Any]) -> None:
        """Vectorized :meth:`add` over a key column."""
        unique: Dict[Any, None] = dict.fromkeys(keys)
        encoded = [repr(key).encode() for key in unique]
        crc = zlib.crc32
        size = self.size_bits
        cells = self.bits._cells
        for salt in range(self.n_hashes):
            seed = salt_seed(salt)
            for kb in encoded:
                cells[crc(kb, seed) % size] = 1
        self.inserted += len(keys)
        self.mutations += 1

    def contains_batch(self, keys: Sequence[Any]) -> List[bool]:
        """Vectorized membership test; unique keys are hashed once."""
        crc = zlib.crc32
        size = self.size_bits
        cells = self.bits._cells
        seeds = [salt_seed(salt) for salt in range(self.n_hashes)]
        cache: Dict[Any, bool] = {}
        for key in dict.fromkeys(keys):
            kb = repr(key).encode()
            cache[key] = all(cells[crc(kb, seed) % size] for seed in seeds)
        return [cache[key] for key in keys]

    def add_batch_reference(self, keys: Sequence[Any]) -> None:
        """Sequential twin of :meth:`add_batch` (property-test oracle)."""
        for key in keys:
            self.add(key)

    def contains_batch_reference(self, keys: Sequence[Any]) -> List[bool]:
        """Sequential twin of :meth:`contains_batch`."""
        return [key in self for key in keys]

    def clear(self) -> None:
        self.bits.clear()
        self.inserted = 0
        self.mutations += 1

    def expected_fp_rate(self) -> float:
        """The FP rate implied by the current fill level."""
        if self.inserted == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.n_hashes * self.inserted / self.size_bits)
        return fill ** self.n_hashes

    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {"inserted": self.inserted,
                "bits": self.bits.export_state()}

    def import_state(self, state: Dict[str, Any]) -> None:
        self.inserted = state["inserted"]
        self.bits.import_state(state["bits"])
        self.mutations += 1

    def resource_requirement(self) -> ResourceVector:
        return ResourceVector(stages=1, sram_mb=self.bits.sram_cost_mb(),
                              tcam_kb=0, alus=self.n_hashes)

    def __repr__(self) -> str:
        return (f"BloomFilter({self.name!r}, {self.size_bits}b, "
                f"k={self.n_hashes}, n={self.inserted})")
