"""Forward error correction for state-carrying packets.

Section 3.4: "to tolerate packet drops, we should be able to temporarily
increase the reliability of state-carrying packets, e.g., using FEC
(forward error correction) codes and redundancy.  FEC encoding and
decoding are bitwise operations over special header fields, therefore
implementable in data plane."

We implement XOR-parity FEC over groups of data words: every group of
``group_size`` payload words gets one parity word that is the bitwise XOR
of the group.  Any single loss within a group is recoverable — the
standard 1-erasure code used by in-network telemetry systems, and exactly
the "bitwise operations over special header fields" the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class FecSymbol:
    """One encoded symbol: either a data word or a group parity word."""

    group: int
    index: int          # position within the group; -1 for parity
    value: int

    @property
    def is_parity(self) -> bool:
        return self.index == -1


class FecEncoder:
    """Encodes a sequence of non-negative integer words into FEC symbols."""

    def __init__(self, group_size: int = 4):
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self.group_size = group_size

    def encode(self, words: Sequence[int]) -> List[FecSymbol]:
        """Emit data symbols plus one parity symbol per (partial) group."""
        for word in words:
            if word < 0:
                raise ValueError("FEC words must be non-negative integers")
        symbols: List[FecSymbol] = []
        for group_index in range(0, len(words), self.group_size):
            group = words[group_index:group_index + self.group_size]
            gid = group_index // self.group_size
            for offset, word in enumerate(group):
                symbols.append(FecSymbol(gid, offset, word))
            parity = reduce(lambda a, b: a ^ b, group, 0)
            symbols.append(FecSymbol(gid, -1, parity))
        return symbols

    def overhead_ratio(self, n_words: int) -> float:
        """Extra symbols sent per payload word."""
        if n_words == 0:
            return 0.0
        groups = (n_words + self.group_size - 1) // self.group_size
        return groups / n_words


class FecDecoder:
    """Reassembles the original words from (possibly lossy) symbols."""

    def __init__(self, group_size: int = 4):
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self.group_size = group_size

    def decode(self, symbols: Sequence[FecSymbol],
               n_words: int) -> Tuple[List[Optional[int]], int]:
        """Recover up to ``n_words`` original words.

        Returns ``(words, recovered)`` where ``words[i]`` is ``None`` for
        unrecoverable positions and ``recovered`` counts words restored
        *via parity* (i.e. that would have been lost without FEC).
        """
        by_group: Dict[int, Dict[int, int]] = {}
        parities: Dict[int, int] = {}
        for symbol in symbols:
            if symbol.is_parity:
                parities[symbol.group] = symbol.value
            else:
                by_group.setdefault(symbol.group, {})[symbol.index] = symbol.value

        words: List[Optional[int]] = [None] * n_words
        recovered = 0
        n_groups = (n_words + self.group_size - 1) // self.group_size
        for gid in range(n_groups):
            base = gid * self.group_size
            expected = min(self.group_size, n_words - base)
            have = by_group.get(gid, {})
            for offset, value in have.items():
                if 0 <= offset < expected:
                    words[base + offset] = value
            missing = [o for o in range(expected) if o not in have]
            if len(missing) == 1 and gid in parities:
                parity = parities[gid]
                value = reduce(lambda a, b: a ^ b, have.values(), parity)
                words[base + missing[0]] = value
                recovered += 1
        return words, recovered


def loss_survival_probability(loss_rate: float, group_size: int) -> float:
    """Probability one group decodes fully under i.i.d. symbol loss.

    A group of ``g`` data symbols plus one parity survives iff zero
    symbols are lost, or exactly one of the ``g+1`` is lost.  Useful for
    sizing the redundancy in the state-transfer ablation.
    """
    if not 0 <= loss_rate <= 1:
        raise ValueError("loss_rate must be in [0, 1]")
    n = group_size + 1
    p_none = (1 - loss_rate) ** n
    p_one = n * loss_rate * (1 - loss_rate) ** (n - 1)
    return p_none + p_one
