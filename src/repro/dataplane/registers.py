"""Register arrays: the stateful memory of a P4-style pipeline.

Hardware registers are fixed-size arrays of bounded integers updated by
stateful ALUs.  :class:`RegisterArray` models that: indices are hashed or
direct, values saturate at the cell width, and the whole array can be
exported/imported — which is what FastFlex's state transfer moves between
switches (Section 3.4).
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator, List, Optional, Sequence

from .resources import ResourceVector


def stable_hash(value: Any, salt: int = 0) -> int:
    """A deterministic, process-independent hash (CRC32 over repr+salt).

    Python's builtin ``hash`` is randomized per process for strings, which
    would make runs irreproducible; every data-plane structure hashes
    through this instead.
    """
    data = f"{salt}|{value!r}".encode()
    return zlib.crc32(data)


#: Memoized CRC states after consuming the ``f"{salt}|"`` prefix.  CRC32
#: composes — ``crc32(a + b) == crc32(b, crc32(a))`` — so folding the
#: salt prefix once lets a batch hash each key with a single CRC pass
#: per (column, salt) instead of re-encoding the prefix per packet.
_SALT_SEEDS: Dict[int, int] = {}


def salt_seed(salt: int) -> int:
    """CRC32 state with the salt prefix folded in (see :func:`hash_batch`)."""
    seed = _SALT_SEEDS.get(salt)
    if seed is None:
        seed = zlib.crc32(f"{salt}|".encode())
        _SALT_SEEDS[salt] = seed
    return seed


def encode_keys(values: Sequence[Any]) -> List[bytes]:
    """Encode each key once (``repr`` + UTF-8); reusable across salts."""
    return [repr(v).encode() for v in values]


def hash_batch(values: Sequence[Any], salt: int = 0,
               encoded: Optional[Sequence[bytes]] = None) -> List[int]:
    """Vectorized :func:`stable_hash`: bitwise-identical results, one
    CRC pass over the column with the salt prefix folded into the seed.

    Pass ``encoded`` (from :func:`encode_keys`) when hashing the same
    column under several salts so each key is encoded exactly once.
    """
    seed = salt_seed(salt)
    crc = zlib.crc32
    if encoded is None:
        return [crc(repr(v).encode(), seed) for v in values]
    return [crc(kb, seed) for kb in encoded]


class RegisterArray:
    """A bounded-width register array with saturating arithmetic."""

    def __init__(self, name: str, size: int, width_bits: int = 32):
        if size <= 0:
            raise ValueError(f"register array size must be positive, got {size}")
        if width_bits <= 0 or width_bits > 64:
            raise ValueError(f"width_bits must be in 1..64, got {width_bits}")
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self.max_value = (1 << width_bits) - 1
        self._cells: List[int] = [0] * size

    # ------------------------------------------------------------------
    def _check_index(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise IndexError(
                f"{self.name}: index {index} out of range [0, {self.size})")
        return index

    def index_for(self, key: Any, salt: int = 0) -> int:
        """Hash an arbitrary key to a cell index."""
        return stable_hash(key, salt) % self.size

    # ------------------------------------------------------------------
    def read(self, index: int) -> int:
        return self._cells[self._check_index(index)]

    def write(self, index: int, value: int) -> None:
        self._cells[self._check_index(index)] = max(
            0, min(int(value), self.max_value))

    def add(self, index: int, delta: int = 1) -> int:
        """Saturating add; returns the new value."""
        new = self.read(index) + delta
        self.write(index, new)
        return self.read(index)

    def maximum(self, index: int, value: int) -> int:
        """Write ``max(current, value)``; returns the new value."""
        new = max(self.read(index), int(value))
        self.write(index, new)
        return self.read(index)

    # ------------------------------------------------------------------
    # Batch kernels (see DESIGN.md "Batch data plane")
    # ------------------------------------------------------------------
    def index_batch(self, keys: Sequence[Any], salt: int = 0,
                    encoded: Optional[Sequence[bytes]] = None) -> List[int]:
        """Vectorized :meth:`index_for` over a key column."""
        size = self.size
        return [h % size for h in hash_batch(keys, salt, encoded)]

    def read_batch(self, indices: Sequence[int]) -> List[int]:
        cells = self._cells
        return [cells[self._check_index(i)] for i in indices]

    def add_batch(self, indices: Sequence[int],
                  deltas: Sequence[int]) -> None:
        """Saturating add of ``deltas[i]`` at ``indices[i]``.

        Requires non-negative deltas: saturating addition of non-negative
        increments is order-independent (the final cell value is
        ``min(max_value, current + sum)``), which is what lets the batch
        path accumulate per-cell totals and issue one write per touched
        cell while staying byte-identical to sequential :meth:`add` calls.
        """
        if len(indices) != len(deltas):
            raise ValueError(
                f"{self.name}: index/delta column length mismatch "
                f"({len(indices)} vs {len(deltas)})")
        totals: Dict[int, int] = {}
        get = totals.get
        for index, delta in zip(indices, deltas):
            if delta < 0:
                raise ValueError(
                    f"{self.name}: add_batch requires non-negative "
                    f"deltas, got {delta}")
            totals[index] = get(index, 0) + delta
        cells = self._cells
        max_value = self.max_value
        for index, delta in totals.items():
            self._check_index(index)
            new = cells[index] + delta
            cells[index] = max_value if new > max_value else new

    def write_batch(self, indices: Sequence[int],
                    values: Sequence[int]) -> None:
        """Clamped writes; the last write to a repeated index wins, as it
        would under sequential :meth:`write` calls."""
        if len(indices) != len(values):
            raise ValueError(
                f"{self.name}: index/value column length mismatch "
                f"({len(indices)} vs {len(values)})")
        cells = self._cells
        max_value = self.max_value
        for index, value in zip(indices, values):
            self._check_index(index)
            cells[index] = max(0, min(int(value), max_value))

    def clear(self) -> None:
        self._cells = [0] * self.size

    def nonzero(self) -> Iterator[int]:
        return (i for i, v in enumerate(self._cells) if v)

    # ------------------------------------------------------------------
    # State transfer support
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Sparse snapshot of nonzero cells (what gets piggybacked)."""
        return {
            "name": self.name,
            "size": self.size,
            "width_bits": self.width_bits,
            "cells": {i: self._cells[i] for i in self.nonzero()},
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        if state["size"] != self.size or state["width_bits"] != self.width_bits:
            raise ValueError(
                f"{self.name}: incompatible snapshot "
                f"(size {state['size']} vs {self.size})")
        self.clear()
        for index, value in state["cells"].items():
            self.write(int(index), value)

    # ------------------------------------------------------------------
    def sram_cost_mb(self) -> float:
        """Approximate SRAM footprint in MB."""
        return self.size * self.width_bits / 8 / 1e6

    def resource_requirement(self) -> ResourceVector:
        return ResourceVector(stages=0, sram_mb=self.sram_cost_mb(),
                              tcam_kb=0, alus=1)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (f"RegisterArray({self.name!r}, size={self.size}, "
                f"width={self.width_bits}b)")
