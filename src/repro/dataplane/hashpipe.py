"""HashPipe: heavy-hitter detection entirely in the data plane.

Implements the multi-stage pipelined heavy-hitter table of Sivaraman et
al. (SOSR '17), which the paper cites as a building-block defense against
volumetric DDoS ([69, 70]).  Each stage holds (key, count) slots; a packet
either increments its key's counter, claims an empty slot, or — in the
"always insert in the first stage" discipline — evicts the incumbent and
carries it to the next stage, where the smaller of the two survives
eviction.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from itertools import repeat
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from .registers import salt_seed, stable_hash
from .resources import ResourceVector


@dataclass(slots=True)
class _Slot:
    key: Optional[Hashable] = None
    count: int = 0


class HashPipe:
    """A d-stage HashPipe table tracking approximate per-key counts."""

    def __init__(self, name: str, stages: int = 4, slots_per_stage: int = 64):
        if stages <= 0:
            raise ValueError(f"stages must be positive, got {stages}")
        if slots_per_stage <= 0:
            raise ValueError(
                f"slots_per_stage must be positive, got {slots_per_stage}")
        self.name = name
        self.n_stages = stages
        self.slots_per_stage = slots_per_stage
        self._stages: List[List[_Slot]] = [
            [_Slot() for _ in range(slots_per_stage)] for _ in range(stages)]
        self.total = 0
        # key -> its slot object per stage.  Slot positions are fixed for
        # the table's lifetime (clear()/import_state() mutate slots in
        # place), so these memos never go stale; they are only bounded.
        self._slot_caches: List[Dict[Hashable, _Slot]] = [
            {} for _ in range(stages)]

    #: Per-stage key->slot memos are cleared past this many entries so an
    #: adversarial key stream cannot grow them without bound.
    _SLOT_CACHE_MAX = 1 << 16

    # ------------------------------------------------------------------
    def _slot(self, stage: int, key: Hashable) -> _Slot:
        index = stable_hash(key, salt=stage) % self.slots_per_stage
        return self._stages[stage][index]

    def update(self, key: Hashable, count: int = 1) -> None:
        """Process one packet of ``key`` through the pipeline."""
        if count < 0:
            raise ValueError("HashPipe does not support decrements")
        self.total += count

        # Stage 0: always insert.  If occupied by another key, evict it and
        # carry it (with its count) down the pipeline.
        slot = self._slot(0, key)
        if slot.key == key:
            slot.count += count
            return
        carried_key, carried_count = slot.key, slot.count
        slot.key, slot.count = key, count
        if carried_key is None:
            return

        # Later stages: keep the larger of (resident, carried).
        for stage in range(1, self.n_stages):
            slot = self._slot(stage, carried_key)
            if slot.key == carried_key:
                slot.count += carried_count
                return
            if slot.key is None:
                slot.key, slot.count = carried_key, carried_count
                return
            if slot.count < carried_count:
                slot.key, carried_key = carried_key, slot.key
                slot.count, carried_count = carried_count, slot.count
        # The final carried entry falls off the pipe (approximation error).

    # ------------------------------------------------------------------
    # Batch kernels (see DESIGN.md "Batch data plane").  The eviction
    # discipline is order-dependent, so the batch path replays packets in
    # order — the vectorization is in the hashing: each key resolves to
    # its per-stage slot object once *ever* (persistent memos; slot
    # positions are fixed for the table's lifetime), so the steady-state
    # per-packet cost is one dict probe plus one saturating add.
    # ------------------------------------------------------------------
    def update_batch(self, keys: Sequence[Hashable],
                     counts: Optional[Sequence[int]] = None) -> None:
        """Vectorized :meth:`update`; byte-identical end state."""
        n = len(keys)
        if counts is not None:
            if len(counts) != n:
                raise ValueError(
                    f"{self.name}: key/count column length mismatch "
                    f"({n} vs {len(counts)})")
            if n and min(counts) < 0:
                raise ValueError("HashPipe does not support decrements")
            batch_total = sum(counts)
            pairs = zip(keys, counts)
        else:
            batch_total = n
            pairs = zip(keys, repeat(1, n))
        caches = self._slot_caches
        if len(caches[0]) > self._SLOT_CACHE_MAX:
            for cache in caches:
                cache.clear()
        cache0 = caches[0]
        cache0_get = cache0.get
        stages = self._stages
        stage0 = stages[0]
        n_stages = self.n_stages
        slots = self.slots_per_stage
        crc = zlib.crc32
        seeds = [salt_seed(stage) for stage in range(n_stages)]
        seed0 = seeds[0]
        for key, count in pairs:
            slot = cache0_get(key)
            if slot is None:
                slot = stage0[crc(repr(key).encode(), seed0) % slots]
                cache0[key] = slot
            if slot.key == key:
                slot.count += count
                continue
            carried_key, carried_count = slot.key, slot.count
            slot.key, slot.count = key, count
            if carried_key is None:
                continue
            for stage in range(1, n_stages):
                cache = caches[stage]
                slot = cache.get(carried_key)
                if slot is None:
                    slot = stages[stage][
                        crc(repr(carried_key).encode(), seeds[stage])
                        % slots]
                    cache[carried_key] = slot
                if slot.key == carried_key:
                    slot.count += carried_count
                    carried_key = None
                    break
                if slot.key is None:
                    slot.key, slot.count = carried_key, carried_count
                    carried_key = None
                    break
                if slot.count < carried_count:
                    slot.key, carried_key = carried_key, slot.key
                    slot.count, carried_count = carried_count, slot.count
            # A still-carried entry falls off the pipe, as in update().
        self.total += batch_total

    def estimate_batch(self, keys: Sequence[Hashable]) -> List[int]:
        """Vectorized :meth:`estimate`; unique keys are hashed once."""
        cache: Dict[Hashable, int] = {}
        out: List[int] = []
        stages = self._stages
        slots = self.slots_per_stage
        crc = zlib.crc32
        seeds = [salt_seed(stage) for stage in range(self.n_stages)]
        for key in keys:
            value = cache.get(key)
            if value is None:
                kb = repr(key).encode()
                value = 0
                for seed, stage in zip(seeds, stages):
                    slot = stage[crc(kb, seed) % slots]
                    if slot.key == key:
                        value += slot.count
                cache[key] = value
            out.append(value)
        return out

    def update_batch_reference(self, keys: Sequence[Hashable],
                               counts: Optional[Sequence[int]] = None
                               ) -> None:
        """Sequential twin of :meth:`update_batch` (property-test oracle)."""
        if counts is None:
            for key in keys:
                self.update(key)
        else:
            for key, count in zip(keys, counts):
                self.update(key, count)

    def estimate_batch_reference(self,
                                 keys: Sequence[Hashable]) -> List[int]:
        """Sequential twin of :meth:`estimate_batch`."""
        return [self.estimate(key) for key in keys]

    def estimate(self, key: Hashable) -> int:
        """Sum of this key's counters across stages (never over-counts a
        key's true total by design; may under-count after evictions)."""
        return sum(self._slot(stage, key).count
                   for stage in range(self.n_stages)
                   if self._slot(stage, key).key == key)

    def heavy_hitters(self, threshold: int) -> Dict[Hashable, int]:
        """All tracked keys whose summed count meets the threshold."""
        totals: Dict[Hashable, int] = {}
        for stage in self._stages:
            for slot in stage:
                if slot.key is not None:
                    totals[slot.key] = totals.get(slot.key, 0) + slot.count
        return {k: v for k, v in totals.items() if v >= threshold}

    def top_k(self, k: int) -> List[Tuple[Hashable, int]]:
        totals = self.heavy_hitters(threshold=1)
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def clear(self) -> None:
        for stage in self._stages:
            for slot in stage:
                slot.key, slot.count = None, 0
        self.total = 0

    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "stages": [[(slot.key, slot.count) for slot in stage]
                       for stage in self._stages],
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        if len(state["stages"]) != self.n_stages:
            raise ValueError(f"{self.name}: stage-count mismatch in snapshot")
        self.total = state["total"]
        for stage, saved in zip(self._stages, state["stages"]):
            if len(saved) != self.slots_per_stage:
                raise ValueError(f"{self.name}: slot-count mismatch")
            for slot, (key, count) in zip(stage, saved):
                slot.key, slot.count = key, count

    def resource_requirement(self) -> ResourceVector:
        # Each slot stores a key (~8B) and a 32-bit count.
        sram = self.n_stages * self.slots_per_stage * 12 / 1e6
        return ResourceVector(stages=self.n_stages, sram_mb=sram,
                              tcam_kb=0, alus=2 * self.n_stages)

    def __repr__(self) -> str:
        return (f"HashPipe({self.name!r}, {self.n_stages}x"
                f"{self.slots_per_stage}, total={self.total})")
