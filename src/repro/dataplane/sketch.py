"""Count-min sketch: the shared probabilistic counter of many boosters.

Section 3.1 names "probabilistic data structures such as sketches and
bloom filters" as prime candidates for sharing across boosters; this
count-min sketch is the concrete instance our heavy-hitter, DDoS, and
rate-limiting boosters declare as a shareable PPM.
"""

from __future__ import annotations

import math
import zlib
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence

from .registers import RegisterArray, salt_seed
from .resources import ResourceVector


class CountMinSketch:
    """A standard count-min sketch over hashed keys.

    Guarantees: estimates never under-count, and with ``depth`` rows of
    ``width`` cells the over-count is at most ``total/width`` with
    probability ``1 - 2^-depth`` (up to saturation of the cell width).
    """

    def __init__(self, name: str, width: int = 1024, depth: int = 4,
                 width_bits: int = 32):
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.name = name
        self.width = width
        self.depth = depth
        self.rows = [RegisterArray(f"{name}.row{i}", width, width_bits)
                     for i in range(depth)]
        self.total = 0

    @classmethod
    def for_error(cls, name: str, epsilon: float, delta: float,
                  width_bits: int = 32) -> "CountMinSketch":
        """Size the sketch for error ``epsilon`` at confidence ``1-delta``."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("epsilon and delta must be in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1 / delta))
        return cls(name, width=width, depth=max(depth, 1),
                   width_bits=width_bits)

    # ------------------------------------------------------------------
    def update(self, key: Any, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count-min does not support decrements")
        for salt, row in enumerate(self.rows):
            row.add(row.index_for(key, salt), count)
        self.total += count

    def estimate(self, key: Any) -> int:
        return min(row.read(row.index_for(key, salt))
                   for salt, row in enumerate(self.rows))

    # ------------------------------------------------------------------
    # Batch kernels (see DESIGN.md "Batch data plane"): byte-identical
    # end state to the sequential loop, one key encode + one CRC pass
    # per (row, unique key), one saturating write per touched cell.
    # ------------------------------------------------------------------
    def update_batch(self, keys: Sequence[Any],
                     counts: Optional[Sequence[int]] = None) -> None:
        """Vectorized :meth:`update` over a key column.

        Counts default to 1 per key.  Saturating adds of non-negative
        increments commute, so per-key totals can be folded before any
        cell is touched without changing the final register state.
        """
        totals: Dict[Any, int]
        if counts is None:
            totals = Counter(keys)
            batch_total = len(keys)
        else:
            if len(keys) != len(counts):
                raise ValueError(
                    f"{self.name}: key/count column length mismatch "
                    f"({len(keys)} vs {len(counts)})")
            # Counter(zip(...)) folds duplicate (key, count) pairs at C
            # speed; the Python loop then runs over unique pairs only.
            totals = {}
            get = totals.get
            batch_total = 0
            for (key, count), mult in Counter(zip(keys, counts)).items():
                if count < 0:
                    raise ValueError(
                        "count-min does not support decrements")
                added = count * mult
                totals[key] = get(key, 0) + added
                batch_total += added
        encoded = [repr(key).encode() for key in totals]
        deltas = list(totals.values())
        crc = zlib.crc32
        for salt, row in enumerate(self.rows):
            seed = salt_seed(salt)
            width = row.size
            row.add_batch([crc(kb, seed) % width for kb in encoded],
                          deltas)
        self.total += batch_total

    def query_batch(self, keys: Sequence[Any]) -> List[int]:
        """Vectorized :meth:`estimate`; each unique key is hashed once."""
        cache: Dict[Any, int] = {}
        out: List[int] = []
        rows = self.rows
        crc = zlib.crc32
        seeds = [salt_seed(salt) for salt in range(self.depth)]
        for key in keys:
            value = cache.get(key)
            if value is None:
                kb = repr(key).encode()
                value = min(row.read(crc(kb, seed) % row.size)
                            for seed, row in zip(seeds, rows))
                cache[key] = value
            out.append(value)
        return out

    def update_batch_reference(self, keys: Sequence[Any],
                               counts: Optional[Sequence[int]] = None
                               ) -> None:
        """Sequential twin of :meth:`update_batch` (property-test oracle)."""
        if counts is None:
            for key in keys:
                self.update(key)
        else:
            for key, count in zip(keys, counts):
                self.update(key, count)

    def query_batch_reference(self, keys: Sequence[Any]) -> List[int]:
        """Sequential twin of :meth:`query_batch`."""
        return [self.estimate(key) for key in keys]

    def clear(self) -> None:
        for row in self.rows:
            row.clear()
        self.total = 0

    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {"total": self.total,
                "rows": [row.export_state() for row in self.rows]}

    def import_state(self, state: Dict[str, Any]) -> None:
        if len(state["rows"]) != self.depth:
            raise ValueError(f"{self.name}: depth mismatch in snapshot")
        self.total = state["total"]
        for row, snapshot in zip(self.rows, state["rows"]):
            row.import_state(snapshot)

    def resource_requirement(self) -> ResourceVector:
        sram = sum(row.sram_cost_mb() for row in self.rows)
        return ResourceVector(stages=self.depth, sram_mb=sram,
                              tcam_kb=0, alus=self.depth)

    def __repr__(self) -> str:
        return (f"CountMinSketch({self.name!r}, {self.depth}x{self.width}, "
                f"total={self.total})")
