"""Match-action tables and per-stage placement inside one switch.

The coarse feasibility check lives in
:class:`~repro.dataplane.resources.ResourceLedger`; this module models the
finer structure: a pipeline is a sequence of physical stages, each with
its own SRAM/TCAM slice, and match-action tables must be laid out onto
stages respecting both memory and the dependency order between tables
(a table reading a value another writes must sit in a later stage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .resources import ResourceVector


class MatchKind(enum.Enum):
    """How a table matches its key (determines SRAM vs TCAM)."""

    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"


@dataclass
class TableEntry:
    """One installed rule: match value -> action name + parameters."""

    match: Any
    action: str
    params: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0


class MatchActionTable:
    """A P4-style table: keys, entries, and a default action.

    Exact tables keep a hash index over their match values, so lookups
    are O(1) and inserting an already-present match *upserts* the entry
    in place (hardware exact tables have one slot per key — duplicate
    entries would make ``lookup`` return the stale first insert while
    ``delete`` removed both).  Ternary/LPM tables allow overlapping
    entries by design: ties break on priority (higher wins), then on
    insertion order (the earlier entry wins), matching hardware
    first-match-at-highest-priority semantics.
    """

    def __init__(self, name: str, match_kind: MatchKind = MatchKind.EXACT,
                 max_entries: int = 1024, entry_bytes: int = 16,
                 default_action: str = "no_op"):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.name = name
        self.match_kind = match_kind
        self.max_entries = max_entries
        self.entry_bytes = entry_bytes
        self.default_action = default_action
        self._entries: List[TableEntry] = []
        #: Exact-match fast path: match value -> entry.  Disabled (None)
        #: for ternary/LPM tables and for exact tables holding a match
        #: value that is callable or unhashable.
        self._exact_index: Optional[Dict[Any, TableEntry]] = (
            {} if match_kind == MatchKind.EXACT else None)

    def _index_entry(self, entry: TableEntry) -> Optional[TableEntry]:
        """Index ``entry``; returns the displaced duplicate, if any.
        Falls back to scan mode on unindexable match values."""
        if self._exact_index is None:
            return None
        if callable(entry.match):
            self._exact_index = None
            return None
        try:
            previous = self._exact_index.get(entry.match)
            self._exact_index[entry.match] = entry
        except TypeError:  # unhashable match value
            self._exact_index = None
            return None
        return previous

    # ------------------------------------------------------------------
    def insert(self, match: Any, action: str,
               params: Optional[Dict[str, Any]] = None,
               priority: int = 0) -> TableEntry:
        if self._exact_index is not None and not callable(match):
            try:
                existing = self._exact_index.get(match)
            except TypeError:
                existing = None
            if existing is not None:
                # Upsert: one slot per key in an exact table.
                existing.action = action
                existing.params = dict(params or {})
                existing.priority = priority
                return existing
        if len(self._entries) >= self.max_entries:
            raise OverflowError(
                f"table {self.name!r} is full ({self.max_entries} entries)")
        entry = TableEntry(match=match, action=action,
                           params=dict(params or {}), priority=priority)
        self._entries.append(entry)
        self._index_entry(entry)
        return entry

    def delete(self, match: Any) -> int:
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.match != match]
        removed = before - len(self._entries)
        if self._exact_index is not None and removed:
            try:
                self._exact_index.pop(match, None)
            except TypeError:
                pass
        return removed

    def lookup(self, key: Any) -> Tuple[str, Dict[str, Any]]:
        """Return (action, params) for the best-matching entry.

        Exact tables compare equality (O(1) via the hash index);
        ternary/LPM entries may provide a callable match predicate
        (``match(key) -> bool``); ties break on priority (higher wins),
        then insertion order (earlier entry wins).
        """
        if self._exact_index is not None:
            try:
                entry = self._exact_index.get(key)
            except TypeError:
                entry = None
            if entry is None:
                return self.default_action, {}
            return entry.action, entry.params
        best: Optional[TableEntry] = None
        for entry in self._entries:
            matched = (entry.match(key) if callable(entry.match)
                       else entry.match == key)
            if matched and (best is None or entry.priority > best.priority):
                best = entry
        if best is None:
            return self.default_action, {}
        return best.action, best.params

    def lookup_batch(self, keys: Sequence[Any]
                     ) -> List[Tuple[str, Dict[str, Any]]]:
        """Vectorized :meth:`lookup` over a key column.

        Exact tables resolve each key with one dict probe; scan-mode
        tables memoize per unique key so the entry list is walked once
        per distinct key rather than once per packet.
        """
        index = self._exact_index
        if index is not None:
            default = (self.default_action, {})
            out: List[Tuple[str, Dict[str, Any]]] = []
            for key in keys:
                try:
                    entry = index.get(key)
                except TypeError:
                    entry = None
                out.append(default if entry is None
                           else (entry.action, entry.params))
            return out
        cache: Dict[Any, Tuple[str, Dict[str, Any]]] = {}
        out = []
        for key in keys:
            try:
                result = cache.get(key)
            except TypeError:
                out.append(self.lookup(key))
                continue
            if result is None:
                result = self.lookup(key)
                cache[key] = result
            out.append(result)
        return out

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def memory_requirement(self) -> ResourceVector:
        total = self.max_entries * self.entry_bytes
        if self.match_kind == MatchKind.EXACT:
            return ResourceVector(sram_mb=total / 1e6)
        return ResourceVector(tcam_kb=total / 1e3)

    def __repr__(self) -> str:
        return (f"MatchActionTable({self.name!r}, {self.match_kind.value}, "
                f"{len(self)}/{self.max_entries})")


@dataclass
class StageLayout:
    """The result of laying tables out onto physical stages."""

    #: stage index -> table names placed there.
    assignment: Dict[int, List[str]] = field(default_factory=dict)
    stages_used: int = 0

    def stage_of(self, table: str) -> int:
        for stage, tables in self.assignment.items():
            if table in tables:
                return stage
        raise KeyError(f"table {table!r} is not in the layout")


class PipelineLayoutError(RuntimeError):
    """Raised when tables cannot be laid out within the stage budget."""


def layout_tables(tables: Sequence[MatchActionTable],
                  dependencies: Dict[str, List[str]],
                  n_stages: int,
                  stage_sram_mb: float,
                  stage_tcam_kb: float) -> StageLayout:
    """Greedy dependency-respecting stage assignment.

    ``dependencies[t]`` lists tables that must be placed in a *strictly
    earlier* stage than ``t`` (match dependencies, in RMT terminology).
    Tables are placed in topological order into the earliest stage that
    satisfies both the dependency depth and the per-stage memory budget.
    """
    by_name = {t.name: t for t in tables}
    for name, deps in dependencies.items():
        if name not in by_name:
            raise ValueError(f"dependency source {name!r} is not a table")
        for dep in deps:
            if dep not in by_name:
                raise ValueError(f"dependency target {dep!r} is not a table")

    order = _topological_order(list(by_name), dependencies)
    layout = StageLayout()
    sram_left = [stage_sram_mb] * n_stages
    tcam_left = [stage_tcam_kb] * n_stages
    placed_stage: Dict[str, int] = {}

    for name in order:
        table = by_name[name]
        need = table.memory_requirement()
        min_stage = 0
        for dep in dependencies.get(name, []):
            min_stage = max(min_stage, placed_stage[dep] + 1)
        stage = None
        for candidate in range(min_stage, n_stages):
            if (need.sram_mb <= sram_left[candidate] + 1e-12
                    and need.tcam_kb <= tcam_left[candidate] + 1e-12):
                stage = candidate
                break
        if stage is None:
            raise PipelineLayoutError(
                f"cannot place table {name!r}: needs stage >= {min_stage} "
                f"with {need}, but no stage has room")
        sram_left[stage] -= need.sram_mb
        tcam_left[stage] -= need.tcam_kb
        placed_stage[name] = stage
        layout.assignment.setdefault(stage, []).append(name)

    layout.stages_used = (max(placed_stage.values()) + 1
                          if placed_stage else 0)
    return layout


def _topological_order(names: List[str],
                       dependencies: Dict[str, List[str]]) -> List[str]:
    """Kahn's algorithm; raises on cycles."""
    indegree = {n: 0 for n in names}
    dependents: Dict[str, List[str]] = {n: [] for n in names}
    for name, deps in dependencies.items():
        for dep in deps:
            indegree[name] += 1
            dependents[dep].append(name)
    ready = sorted(n for n, d in indegree.items() if d == 0)
    order: List[str] = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        for succ in sorted(dependents[name]):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort()
    if len(order) != len(names):
        cyclic = sorted(set(names) - set(order))
        raise PipelineLayoutError(f"dependency cycle among {cyclic}")
    return order
