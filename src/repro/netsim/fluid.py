"""Fluid (flow-level) bandwidth allocation.

This is the heart of the ns3 substitution (see DESIGN.md): instead of
simulating every data packet of a multi-minute experiment, bulk traffic is
modeled as flow rates recomputed every ``update_interval`` seconds.

The allocator implements **weighted max-min fairness with demand caps**
via progressive filling:

1. Inelastic (UDP) flows charge their full demand to every link on their
   path — they do not back off.
2. Elastic (TCP) flows share the remaining capacity: all unfrozen flows'
   rates grow in proportion to their weights until either a link
   saturates (freezing every flow crossing it) or a flow reaches its
   demand (freezing just that flow).
3. Links whose total offered load exceeds capacity drop the excess; each
   flow's goodput is its rate times the product of survival probabilities
   along its path.

A first-order smoothing filter models TCP's ramping, so throughput
recovers over a few RTT-scale updates after a reroute rather than
instantly — visible as the short dips in the Figure 3 reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .engine import PeriodicProcess, Simulator
from .flows import Flow, FlowSet
from .topology import Topology

LinkKey = Tuple[str, str]


@dataclass
class AllocationResult:
    """The outcome of one allocation pass (rates before smoothing)."""

    rates: Dict[int, float] = field(default_factory=dict)
    link_load: Dict[LinkKey, float] = field(default_factory=dict)
    link_loss: Dict[LinkKey, float] = field(default_factory=dict)


def _link_capacities(topo: Topology) -> Dict[LinkKey, float]:
    return {key: link.capacity_bps for key, link in topo.links.items()}


def max_min_allocate(topo: Topology, flows: List[Flow]) -> AllocationResult:
    """One-shot weighted max-min allocation over the flows' current paths.

    Flows without a path are allocated zero.  Returns instantaneous
    (unsmoothed) rates plus per-link load and loss.
    """
    result = AllocationResult()
    capacities = _link_capacities(topo)
    load: Dict[LinkKey, float] = {key: 0.0 for key in capacities}

    routable = [f for f in flows if f.path is not None]
    for flow in flows:
        if flow.path is None:
            result.rates[flow.flow_id] = 0.0

    # Pass 1: inelastic flows charge their (policed) demand outright.
    for flow in routable:
        if not flow.elastic:
            result.rates[flow.flow_id] = flow.effective_demand_bps
            for key in flow.path.links():
                load[key] += flow.effective_demand_bps

    # Pass 2: progressive filling for elastic flows.
    elastic = [f for f in routable if f.elastic]
    rate = {f.flow_id: 0.0 for f in elastic}
    flows_on_link: Dict[LinkKey, List[Flow]] = {}
    for flow in elastic:
        for key in flow.path.links():
            flows_on_link.setdefault(key, []).append(flow)
    remaining = {key: max(0.0, capacities[key] - load[key])
                 for key in flows_on_link}
    unfrozen = {f.flow_id: f for f in elastic if f.effective_demand_bps > 0}
    for flow in elastic:
        if flow.effective_demand_bps <= 0:
            rate[flow.flow_id] = 0.0

    while unfrozen:
        # Largest uniform per-unit-weight increment before a constraint binds.
        delta = float("inf")
        for key, members in flows_on_link.items():
            weight_here = sum(f.weight for f in members
                              if f.flow_id in unfrozen)
            if weight_here > 0:
                delta = min(delta, remaining[key] / weight_here)
        for flow in unfrozen.values():
            headroom = ((flow.effective_demand_bps - rate[flow.flow_id])
                        / flow.weight)
            delta = min(delta, headroom)
        if delta == float("inf"):
            break
        if delta > 0:
            for flow in unfrozen.values():
                rate[flow.flow_id] += delta * flow.weight
            for key, members in flows_on_link.items():
                weight_here = sum(f.weight for f in members
                                  if f.flow_id in unfrozen)
                remaining[key] = max(0.0, remaining[key] - delta * weight_here)

        # Freeze flows that hit their demand or sit on a saturated link.
        saturated = {key for key, rem in remaining.items() if rem <= 1e-6}
        newly_frozen = []
        for fid, flow in unfrozen.items():
            if rate[fid] >= flow.effective_demand_bps - 1e-6:
                newly_frozen.append(fid)
                continue
            if any(key in saturated for key in flow.path.links()):
                newly_frozen.append(fid)
        if not newly_frozen:
            # Numerical stall guard: freeze everything touching the most
            # loaded link to guarantee termination.
            break
        for fid in newly_frozen:
            del unfrozen[fid]

    for flow in elastic:
        result.rates[flow.flow_id] = min(rate[flow.flow_id],
                                         flow.effective_demand_bps)
        for key in flow.path.links():
            load[key] += result.rates[flow.flow_id]

    result.link_load = load
    result.link_loss = {}
    for key, total in load.items():
        cap = capacities[key]
        result.link_loss[key] = (0.0 if total <= cap
                                 else 1.0 - cap / total)
    return result


class FluidNetwork:
    """Periodically reallocates flow rates and updates link/flow state.

    Parameters
    ----------
    update_interval:
        Seconds between allocation passes.  The Figure 3 experiment uses
        10 ms, two orders of magnitude finer than the baseline's 30 s TE
        period and comparable to the RTT-scale FastFlex mode changes.
    tcp_tau:
        Time constant of the first-order rate smoothing for elastic flows
        (models TCP ramping); inelastic flows change rate instantly.
    """

    def __init__(self, topo: Topology, flows: Optional[FlowSet] = None,
                 update_interval: float = 0.01, tcp_tau: float = 0.05):
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        self.topo = topo
        self.sim: Simulator = topo.sim
        self.flows = flows if flows is not None else FlowSet()
        self.update_interval = update_interval
        self.tcp_tau = tcp_tau
        self.last_result: Optional[AllocationResult] = None
        self._process: Optional[PeriodicProcess] = None
        self._last_update: Optional[float] = None
        #: Observers called after every update with (now, result).
        self.on_update: list = []

    # ------------------------------------------------------------------
    def start(self) -> "FluidNetwork":
        """Begin periodic updates (first one immediately)."""
        self._process = self.sim.every(self.update_interval, self.update)
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------------
    def update(self) -> AllocationResult:
        """Run one allocation pass and commit it to flows and links."""
        now = self.sim.now
        dt = (0.0 if self._last_update is None
              else now - self._last_update)
        self._last_update = now

        active = self.flows.active(now)
        result = max_min_allocate(self.topo, active)

        # Smooth elastic rates toward their allocation; account delivery.
        alpha = 1.0 if self.tcp_tau <= 0 or dt <= 0 else \
            1.0 - math.exp(-dt / self.tcp_tau)
        smoothed_load: Dict[LinkKey, float] = {
            key: 0.0 for key in self.topo.links}
        for flow in self.flows:
            if not flow.active(now):
                flow.rate_bps = 0.0
                flow.goodput_bps = 0.0
                flow.loss_rate = 0.0
                continue
            target = result.rates.get(flow.flow_id, 0.0)
            if flow.elastic:
                flow.rate_bps += (target - flow.rate_bps) * alpha
            else:
                flow.rate_bps = target
            survival = 1.0
            if flow.path is not None:
                for key in flow.path.links():
                    smoothed_load[key] += flow.rate_bps
                    survival *= 1.0 - result.link_loss.get(key, 0.0)
            flow.loss_rate = 1.0 - survival
            flow.goodput_bps = flow.rate_bps * survival
            flow.bytes_delivered += flow.goodput_bps * dt / 8.0

        # Publish loads so packet-level traffic sees congestion.
        for key, link in self.topo.links.items():
            link.fluid_load_bps = smoothed_load.get(key, 0.0)

        self.last_result = result
        for observer in self.on_update:
            observer(now, result)
        return result

    # ------------------------------------------------------------------
    # Queries used by detectors and experiments
    # ------------------------------------------------------------------
    def link_utilization(self, a: str, b: str) -> float:
        return self.topo.link(a, b).utilization

    def aggregate_goodput(self, flows: List[Flow]) -> float:
        return sum(f.goodput_bps for f in flows)

    def normal_goodput(self, now: Optional[float] = None) -> float:
        now = self.sim.now if now is None else now
        return sum(f.goodput_bps for f in self.flows.normal()
                   if f.active(now))
